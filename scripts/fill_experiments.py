#!/usr/bin/env python3
"""Fills EXPERIMENTS.md from bench_output.txt (Criterion output).

Parses benchmark ids followed by `time: [lo mid hi]` lines and substitutes
the {SLOT} placeholders in EXPERIMENTS.md.tmpl.
"""
import re

def parse(path):
    results = {}
    last_id = None
    for line in open(path):
        ls = line.strip()
        if ls.startswith("Benchmarking"):
            continue
        m = re.match(r"^([a-z0-9_]+(?:/[A-Za-z0-9_.\-]+)+)(?:\s+time:\s*\[\s*[\d.]+\s*\S+\s+([\d.]+\s*\S+))?", ls)
        if m:
            last_id = m.group(1)
            if m.group(2):
                results[last_id] = m.group(2)
                last_id = None
            continue
        t = re.match(r"^time:\s*\[\s*[\d.]+\s*\S+\s+([\d.]+\s*\S+)", ls)
        if t and last_id:
            results[last_id] = t.group(1)
            last_id = None
    return results

SLOTS = {
    "E1_RAW": ("e1_direct_connect/raw_fn", 0.01),
    "E1_TRAIT": ("e1_direct_connect/trait_object", 0.01),
    "E1_PORT": ("e1_direct_connect/port_cached", 0.01),
    "E1_GET": ("e1_direct_connect/port_get_each_call", 0.01),
    "E2_UNIT": ("e2_sidl_binding/call_unit", 0.01),
    "E2_DIRECT": ("e2_sidl_binding/direct_impl", 0.01),
    "E2_VTABLE": ("e2_sidl_binding/vtable", 0.01),
    "E2_STUB": ("e2_sidl_binding/sidl_stub", 0.01),
    "E3_DIRECT": ("e3_orb_baseline/direct_port", 1),
    "E3_DYN": ("e3_orb_baseline/dynamic_facade", 1),
    "E3_ORB": ("e3_orb_baseline/orb_loopback/scalar", 1),
    "E3_ORB1K": ("e3_orb_baseline/orb_loopback/array_doubles/128", 1),
    "E3_DIR1K": ("e3_orb_baseline/direct_port/array_doubles/128", 1),
    "E3_ORB64K": ("e3_orb_baseline/orb_loopback/array_doubles/8192", 1),
    "E3_DIR64K": ("e3_orb_baseline/direct_port/array_doubles/8192", 1),
    "E3_LAN": ("e3_orb_baseline_lan/orb_lan/scalar", 1),
    "E4_M_C": ("e4_transfer/matched_4to4/compiled", 1),
    "E4_M_I": ("e4_transfer/matched_4to4/interpreted", 1),
    "E4_S_C": ("e4_transfer/scatter_1to4/compiled", 1),
    "E4_S_I": ("e4_transfer/scatter_1to4/interpreted", 1),
    "E4_G_C": ("e4_transfer/gather_4to1/compiled", 1),
    "E4_G_I": ("e4_transfer/gather_4to1/interpreted", 1),
    "E4_X_C": ("e4_transfer/mxn_4to3_block_to_blockcyclic/compiled", 1),
    "E4_X_I": ("e4_transfer/mxn_4to3_block_to_blockcyclic/interpreted", 1),
    "E4_H_C": ("e4_transfer/shrink_8to2/compiled", 1),
    "E4_H_I": ("e4_transfer/shrink_8to2/interpreted", 1),
    "E4_SW1": ("e4_transfer_sweep_mxn_4to3/4096", 1),
    "E4_SW2": ("e4_transfer_sweep_mxn_4to3/16384", 1),
    "E4_SW3": ("e4_transfer_sweep_mxn_4to3/65536", 1),
    "E4_SW4": ("e4_transfer_sweep_mxn_4to3/262144", 1),
    "E4_B1": ("e4_plan_build/block_4to4/build", 1),
    "E4_B2": ("e4_plan_build/block_to_blockcyclic_4to3/build", 1),
    "E4_B2C": ("e4_plan_build/block_to_blockcyclic_4to3/compile", 1),
    "E4_B3": ("e4_plan_build/cyclic_to_cyclic_4to3_small/build", 1),
    "E5_STATIC": ("e5_reflection/static_stub", 1),
    "E5_DYN": ("e5_reflection/dynamic_invoke", 1),
    "E5_CHK": ("e5_reflection/dynamic_checked", 1),
    "E5_Q": ("e5_reflection/reflection_query", 1),
    "E5_COMPILE": ("e5_reflection/compile_and_reflect_esi_sidl", 1),
    "E6_M16": ("e6_hydro_timestep/monolithic/16", 1),
    "E6_C16": ("e6_hydro_timestep/componentized/16", 1),
    "E6_P16": ("e6_hydro_timestep/componentized_proxied/16", 1),
    "E6_M32": ("e6_hydro_timestep/monolithic/32", 1),
    "E6_C32": ("e6_hydro_timestep/componentized/32", 1),
    "E6_P32": ("e6_hydro_timestep/componentized_proxied/32", 1),
    "E6_M64": ("e6_hydro_timestep/monolithic/64", 1),
    "E6_C64": ("e6_hydro_timestep/componentized/64", 1),
    "E6_P64": ("e6_hydro_timestep/componentized_proxied/64", 1),
    "E6_F16": ("e6_hydro_timestep/monolithic_matrixfree/16", 1),
    "E6_F32": ("e6_hydro_timestep/monolithic_matrixfree/32", 1),
    "E6_F64": ("e6_hydro_timestep/monolithic_matrixfree/64", 1),
    "E6_SP1": ("e6_hydro_spmd_step/1", 1),
    "E6_SP2": ("e6_hydro_spmd_step/2", 1),
    "E6_SP4": ("e6_hydro_spmd_step/4", 1),
    "E7_0": ("e7_dynamic_attach/step_with_viz/0", 1),
    "E7_1": ("e7_dynamic_attach/step_with_viz/1", 1),
    "E7_R": ("e7_dynamic_attach/redirect_provider", 1),
    "E7_C": ("e7_dynamic_attach/attach_detach_cycle", 1),
    "E8_0C": ("e8_fanout/cached_listeners/0", 1),
    "E8_0R": ("e8_fanout/resolve_each_call/0", 1),
    "E8_1C": ("e8_fanout/cached_listeners/1", 1),
    "E8_1R": ("e8_fanout/resolve_each_call/1", 1),
    "E8_2C": ("e8_fanout/cached_listeners/2", 1),
    "E8_2R": ("e8_fanout/resolve_each_call/2", 1),
    "E8_4C": ("e8_fanout/cached_listeners/4", 1),
    "E8_4R": ("e8_fanout/resolve_each_call/4", 1),
    "E8_8C": ("e8_fanout/cached_listeners/8", 1),
    "E8_8R": ("e8_fanout/resolve_each_call/8", 1),
}

def scale(value, factor):
    m = re.match(r"([\d.]+)\s*(\S+)", value)
    if not m:
        return value
    num = float(m.group(1)) * factor
    unit = m.group(2)
    if factor != 1:
        conv = {"ns": ("ps", 1000), "µs": ("ns", 1000), "ms": ("µs", 1000), "s": ("ms", 1000)}
        if num < 1 and unit in conv:
            u2, mult = conv[unit]
            num *= mult
            unit = u2
    return f"{num:.3g} {unit}"

def main():
    r = parse("bench_output.txt")
    template = open("EXPERIMENTS.md.tmpl").read()
    missing = []
    for slot, (bench_id, factor) in SLOTS.items():
        if bench_id in r:
            template = template.replace("{" + slot + "}", scale(r[bench_id], factor))
        else:
            missing.append(f"{slot} <- {bench_id}")
            template = template.replace("{" + slot + "}", "n/a")
    open("EXPERIMENTS.md", "w").write(template)
    print("MISSING:\n  " + "\n  ".join(missing) if missing else "all slots filled")

if __name__ == "__main__":
    main()
