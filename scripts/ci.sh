#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from anywhere; operates on the repo root.
# The workspace vendors all external deps under vendor/, so this works fully
# offline (--offline keeps cargo from touching the network at all).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

# Quick-mode observability gate: asserts instrumentation-off stays ≤1.1x
# the pre-instrumentation call and counters-on ≤1.5x (see EXPERIMENTS.md
# E10). The committed-artifact JSON check runs with the test suite above
# (crates/bench/tests/bench_json.rs).
echo "==> E10 observability overhead gate (quick mode)"
CCA_BENCH_FAST=1 BENCH_OBS_OUT="$(pwd)/BENCH_obs.ci.json" \
    cargo bench --offline -p cca-bench --bench e10_obs_overhead
rm -f BENCH_obs.ci.json

echo "CI OK"
