#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from anywhere; operates on the repo root.
# The workspace vendors all external deps under vendor/, so this works fully
# offline (--offline keeps cargo from touching the network at all).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
