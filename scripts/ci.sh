#!/usr/bin/env bash
# Tier-1 gate: build, test, lint, format, perf gates. Run from anywhere;
# operates on the repo root. The workspace vendors all external deps under
# vendor/, so this works fully offline (--offline keeps cargo from touching
# the network at all).
#
# Usage: scripts/ci.sh [mode]
#   all        (default) every check below, in order
#   build-test release build + test suite
#   clippy     clippy with -D warnings
#   fmt        rustfmt --check
#   fault      the fault-injection suites under one CCA_FAULT_SEED
#   fleet      the multi-process kill-matrix under one CCA_FAULT_SEED
#   bench-gate quick-mode E10/E11/E13/E14/E15/E16/E17 perf gates
#
# The CI workflow fans these out as separate jobs; `all` keeps the
# one-command local story.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"

# The quick-mode perf gates write throwaway artifacts next to the committed
# ones; clean them up however the script exits so a failed gate can't leak
# a stale BENCH_*.ci.json for the committed-artifact check to trip over.
# The fleet scenarios re-exec the test binary as rank children, so the trap
# also reaps any orphaned rank (identified by CCA_FLEET_RANK in its
# environment) that a killed-mid-run supervisor failed to collect.
cleanup() {
    rm -f BENCH_obs.ci.json BENCH_obs.ci.json.tmp \
        BENCH_resilience.ci.json BENCH_resilience.ci.json.tmp \
        BENCH_rpc.ci.json BENCH_rpc.ci.json.tmp \
        BENCH_data.ci.json BENCH_data.ci.json.tmp \
        BENCH_fleet.ci.json BENCH_fleet.ci.json.tmp \
        BENCH_repo.ci.json BENCH_repo.ci.json.tmp
    reap_fleet_orphans
}
reap_fleet_orphans() {
    local pid
    for pid in $(ls /proc 2>/dev/null | grep -E '^[0-9]+$'); do
        [ "$pid" = "$$" ] && continue
        if tr '\0' '\n' 2>/dev/null < "/proc/$pid/environ" |
            grep -q '^CCA_FLEET_RANK='; then
            echo "reaping orphaned fleet rank pid $pid" >&2
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
}
trap cleanup EXIT

build_test() {
    echo "==> cargo build --release"
    cargo build --offline --release --workspace

    echo "==> cargo test"
    cargo test --offline --workspace -q
}

clippy() {
    echo "==> cargo clippy -D warnings"
    cargo clippy --offline --workspace --all-targets -- -D warnings
}

fmt() {
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
}

# One run of the failure-injection + resilience + remote-transport +
# wire-tracing suites under a fixed fault schedule. CI calls this once per
# seed in {1, 7, 42, 1999}; the suites are mock-clock driven (the remote
# ones use real sockets but a seeded server-side drop plan), so a seed
# fully determines every outcome. The flight recorder is armed at
# target/flight so a failing run leaves incident JSONL behind for the
# workflow to upload.
fault() {
    local seed="${CCA_FAULT_SEED:-1}"
    echo "==> fault matrix (CCA_FAULT_SEED=$seed)"
    mkdir -p target/flight
    CCA_FAULT_SEED="$seed" CCA_FLIGHT_DIR="$(pwd)/target/flight" cargo test --offline \
        --test failure_injection --test resilience --test remote_transport \
        --test wire_tracing --test bulk_redist --test repository_scale
}

# The supervised-fleet kill-matrix: 4 ranks as real child processes, a
# seed-chosen victim kill -9'd mid-run, convergence to the unkilled answer
# required (tests/fleet.rs). The hard timeout is the zombie backstop — a
# hung supervisor or an undetected rank death must fail the lane rather
# than park it forever; the EXIT trap then reaps whatever re-exec'd ranks
# the killed test left behind. Forensics (incident JSONL plus the
# supervisor event log) land in target/flight for the workflow to upload.
fleet() {
    local seed="${CCA_FAULT_SEED:-1}"
    echo "==> fleet kill-matrix (CCA_FAULT_SEED=$seed)"
    mkdir -p target/flight
    CCA_FAULT_SEED="$seed" CCA_FLIGHT_DIR="$(pwd)/target/flight" \
        timeout -k 30 420 cargo test --offline --test fleet
}

bench_gate() {
    # Quick-mode observability gate: asserts instrumentation-off stays
    # ≤1.1x the pre-instrumentation call and counters-on ≤1.5x (see
    # EXPERIMENTS.md E10). The committed-artifact JSON check runs with the
    # test suite (crates/bench/tests/bench_json.rs).
    echo "==> E10 observability overhead gate (quick mode)"
    CCA_BENCH_FAST=1 BENCH_OBS_OUT="$(pwd)/BENCH_obs.ci.json" \
        cargo bench --offline -p cca-bench --bench e10_obs_overhead

    # Quick-mode resilience gate: a closed circuit breaker on the
    # CachedPort fast path stays ≤1.1x the PR-1 cached call (E11).
    echo "==> E11 resilience overhead gate (quick mode)"
    CCA_BENCH_FAST=1 BENCH_RESILIENCE_OUT="$(pwd)/BENCH_resilience.ci.json" \
        cargo bench --offline -p cca-bench --bench e11_resilience

    # Quick-mode mux gate: 1,000 logical clients share ≤8 sockets and the
    # multiplexed transport outruns the thread-per-connection pool (E13).
    # Writes a throwaway artifact so the committed BENCH_rpc.json (full-run
    # numbers) is never clobbered by a fast-mode run.
    echo "==> E13 mux throughput gate (quick mode)"
    CCA_BENCH_FAST=1 BENCH_RPC_OUT="$(pwd)/BENCH_rpc.ci.json" \
        cargo bench --offline -p cca-bench --bench e13_mux_throughput

    # Quick-mode wire-tracing gate: the tracing-off v2 frame encode stays
    # ≤1.1x the PR-6 codec and tracing-on remote calls stay ≤1.5x
    # tracing-off (E14). Reuses the E10 throwaway artifact so the merge
    # path gets exercised too.
    echo "==> E14 wire tracing gate (quick mode)"
    CCA_BENCH_FAST=1 BENCH_OBS_OUT="$(pwd)/BENCH_obs.ci.json" \
        cargo bench --offline -p cca-bench --bench e14_wire_trace

    # Quick-mode bulk-data-plane gate: raw slabs beat the generic value
    # encoding at small payloads and sender memory stays window-bounded
    # (E15). Full-mode sweeps and the headline ratio run via bench.sh.
    echo "==> E15 bulk data plane gate (quick mode)"
    CCA_BENCH_FAST=1 BENCH_DATA_OUT="$(pwd)/BENCH_data.ci.json" \
        cargo bench --offline -p cca-bench --bench e15_bulk_data

    # Quick-mode fleet gate: the hub-routed wire allreduce stays well under
    # a hydro timestep and restart-to-rejoin beats the survivors' park
    # deadline (E16). Full-run numbers live in the committed
    # BENCH_fleet.json via bench.sh.
    echo "==> E16 worker fleet gate (quick mode)"
    CCA_BENCH_FAST=1 BENCH_FLEET_OUT="$(pwd)/BENCH_fleet.ci.json" \
        cargo bench --offline -p cca-bench --bench e16_fleet

    # Quick-mode repository gate: 100k-type catalog, exact lookup p50
    # under 5us, trigram fuzzy p50 under 5ms, and concurrent readers
    # don't collapse (E17). The committed BENCH_repo.json carries the
    # full 1M-type numbers via bench.sh.
    echo "==> E17 repository scale gate (quick mode)"
    CCA_BENCH_FAST=1 BENCH_REPO_OUT="$(pwd)/BENCH_repo.ci.json" \
        cargo bench --offline -p cca-bench --bench e17_repository
}

case "$MODE" in
all)
    build_test
    clippy
    fmt
    fault
    fleet
    bench_gate
    ;;
build-test) build_test ;;
clippy) clippy ;;
fmt) fmt ;;
fault) fault ;;
fleet) fleet ;;
bench-gate) bench_gate ;;
*)
    echo "unknown mode '$MODE' (want all|build-test|clippy|fmt|fault|fleet|bench-gate)" >&2
    exit 2
    ;;
esac

echo "CI OK ($MODE)"
