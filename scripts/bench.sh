#!/usr/bin/env bash
# Runs the direct-connect benchmark suite (E1 ladder, E8 fan-out, E9
# port-resolution) and leaves the machine-readable results in
# BENCH_ports.json at the repo root.
#
# Set CCA_BENCH_FAST=1 for a quick smoke run (fewer samples, shorter
# calibration) — used by CI, where absolute numbers are noise anyway and
# only the E9 acceptance assertions (cached ≤3x bare, one plan build per
# shape) matter.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

echo "==> E1 direct-connect ladder"
cargo bench --offline -p cca-bench --bench e1_direct_connect

echo "==> E8 fan-out"
cargo bench --offline -p cca-bench --bench e8_fanout

echo "==> E9 port resolution (writes BENCH_ports.json)"
BENCH_PORTS_OUT="$ROOT/BENCH_ports.json" \
    cargo bench --offline -p cca-bench --bench e9_port_resolution

echo "==> results"
cat "$ROOT/BENCH_ports.json"
