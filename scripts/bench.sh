#!/usr/bin/env bash
# Runs the direct-connect benchmark suite (E1 ladder, E8 fan-out, E9
# port-resolution, E10 observability overhead, E11 resilience overhead,
# E12 remote rpc, E13 mux throughput, E14 wire tracing, E15 bulk data
# plane) and leaves the machine-readable results in BENCH_ports.json,
# BENCH_obs.json, BENCH_resilience.json, BENCH_rpc.json, and
# BENCH_data.json at the repo root. All files are published atomically
# (write temp + rename), so a killed run never leaves a truncated
# artifact.
#
# Every bench runs even if an earlier one fails its acceptance gate; the
# script exits nonzero if ANY did, so one broken gate can't mask another's
# result (and CI still gets every artifact that was produced).
#
# Set CCA_BENCH_FAST=1 for a quick smoke run (fewer samples, shorter
# calibration) — used by CI, where absolute numbers are noise anyway and
# only the acceptance assertions (E9: cached ≤3x bare, one plan build per
# shape; E10: off ≤1.1x PR-1, counters on ≤1.5x; E11: closed breaker
# ≤1.1x PR-1; E12: loopback TCP round-trip median <100us; E13: the
# logical clients share ≤8 sockets and mux beats the pooled baseline;
# E14: tracing-off v2 encode ≤1.1x the PR-6 codec, tracing-on remote
# calls ≤1.5x tracing-off; E15: bulk slabs outrun the generic encoding
# and sender memory stays window-bounded; E17: exact lookup p50 <5us,
# fuzzy p50 <5ms, concurrent scaling per core budget) matter.
set -uo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

FAILED=()

run_bench() {
    local label="$1"
    shift
    echo "==> $label"
    if ! "$@"; then
        echo "!! $label FAILED"
        FAILED+=("$label")
    fi
}

run_bench "E1 direct-connect ladder" \
    cargo bench --offline -p cca-bench --bench e1_direct_connect

run_bench "E8 fan-out" \
    cargo bench --offline -p cca-bench --bench e8_fanout

run_bench "E9 port resolution (writes BENCH_ports.json)" \
    env BENCH_PORTS_OUT="$ROOT/BENCH_ports.json" \
    cargo bench --offline -p cca-bench --bench e9_port_resolution

run_bench "E10 observability overhead (writes BENCH_obs.json)" \
    env BENCH_OBS_OUT="$ROOT/BENCH_obs.json" \
    cargo bench --offline -p cca-bench --bench e10_obs_overhead

run_bench "E11 resilience overhead (writes BENCH_resilience.json)" \
    env BENCH_RESILIENCE_OUT="$ROOT/BENCH_resilience.json" \
    cargo bench --offline -p cca-bench --bench e11_resilience

run_bench "E12 remote rpc round-trip (writes BENCH_rpc.json)" \
    env BENCH_RPC_OUT="$ROOT/BENCH_rpc.json" \
    cargo bench --offline -p cca-bench --bench e12_remote_rpc

# E13 must run after E12: it merges the mux throughput quantities into the
# BENCH_rpc.json E12 just wrote (E12's keys are preserved).
run_bench "E13 mux throughput (merges into BENCH_rpc.json)" \
    env BENCH_RPC_OUT="$ROOT/BENCH_rpc.json" \
    cargo bench --offline -p cca-bench --bench e13_mux_throughput

# E14 must run after E10 for the same reason: it merges the wire-tracing
# quantities into BENCH_obs.json (E10's keys are preserved).
run_bench "E14 wire tracing (merges into BENCH_obs.json)" \
    env BENCH_OBS_OUT="$ROOT/BENCH_obs.json" \
    cargo bench --offline -p cca-bench --bench e14_wire_trace

run_bench "E15 bulk data plane (writes BENCH_data.json)" \
    env BENCH_DATA_OUT="$ROOT/BENCH_data.json" \
    cargo bench --offline -p cca-bench --bench e15_bulk_data

run_bench "E16 worker fleet (writes BENCH_fleet.json)" \
    env BENCH_FLEET_OUT="$ROOT/BENCH_fleet.json" \
    cargo bench --offline -p cca-bench --bench e16_fleet

run_bench "E17 repository scale (writes BENCH_repo.json)" \
    env BENCH_REPO_OUT="$ROOT/BENCH_repo.json" \
    cargo bench --offline -p cca-bench --bench e17_repository

echo "==> results"
for artifact in BENCH_ports.json BENCH_obs.json BENCH_resilience.json BENCH_rpc.json BENCH_data.json BENCH_fleet.json BENCH_repo.json; do
    [ -f "$ROOT/$artifact" ] && cat "$ROOT/$artifact"
done

if [ "${#FAILED[@]}" -gt 0 ]; then
    echo "benches failed: ${FAILED[*]}" >&2
    exit 1
fi
