#!/usr/bin/env bash
# Runs the direct-connect benchmark suite (E1 ladder, E8 fan-out, E9
# port-resolution, E10 observability overhead) and leaves the
# machine-readable results in BENCH_ports.json and BENCH_obs.json at the
# repo root. Both files are published atomically (write temp + rename),
# so a killed run never leaves a truncated artifact.
#
# Set CCA_BENCH_FAST=1 for a quick smoke run (fewer samples, shorter
# calibration) — used by CI, where absolute numbers are noise anyway and
# only the acceptance assertions (E9: cached ≤3x bare, one plan build per
# shape; E10: off ≤1.1x PR-1, counters on ≤1.5x) matter.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

echo "==> E1 direct-connect ladder"
cargo bench --offline -p cca-bench --bench e1_direct_connect

echo "==> E8 fan-out"
cargo bench --offline -p cca-bench --bench e8_fanout

echo "==> E9 port resolution (writes BENCH_ports.json)"
BENCH_PORTS_OUT="$ROOT/BENCH_ports.json" \
    cargo bench --offline -p cca-bench --bench e9_port_resolution

echo "==> E10 observability overhead (writes BENCH_obs.json)"
BENCH_OBS_OUT="$ROOT/BENCH_obs.json" \
    cargo bench --offline -p cca-bench --bench e10_obs_overhead

echo "==> results"
cat "$ROOT/BENCH_ports.json"
cat "$ROOT/BENCH_obs.json"
