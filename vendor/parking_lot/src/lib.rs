//! In-tree shim for the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched; this shim provides the subset the workspace uses — `Mutex`
//! (non-poisoning `lock()`) and `RwLock` (`read()`/`write()`) — with the
//! same guard semantics. Poisoned std locks are transparently recovered,
//! matching parking_lot's "no poisoning" contract.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual exclusion primitive (`parking_lot::Mutex` API, std-backed).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: poison.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock (`parking_lot::RwLock` API, std-backed).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdReadGuard<'a, T>,
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
