//! In-tree shim for the `bytes` API subset the workspace uses.
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched. `Bytes` is a cheaply-cloneable view (`Arc<[u8]>` + range) and
//! `BytesMut` is a growable buffer that freezes into one. The `Buf` /
//! `BufMut` traits carry the fixed-width little-endian accessors the RPC
//! wire format relies on.

use std::fmt;
use std::sync::Arc;

macro_rules! buf_le_getters {
    ($($get:ident: $ty:ty),+ $(,)?) => {
        $(
            /// Reads a little-endian value, advancing the cursor.
            fn $get(&mut self) -> $ty {
                let mut raw = [0u8; std::mem::size_of::<$ty>()];
                self.copy_to_slice(&mut raw);
                <$ty>::from_le_bytes(raw)
            }
        )+
    };
}

macro_rules! buf_le_putters {
    ($($put:ident: $ty:ty),+ $(,)?) => {
        $(
            /// Appends a value in little-endian byte order.
            fn $put(&mut self, v: $ty) {
                self.put_slice(&v.to_le_bytes());
            }
        )+
    };
}

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    buf_le_getters! {
        get_u16_le: u16,
        get_u32_le: u32,
        get_u64_le: u64,
        get_i16_le: i16,
        get_i32_le: i32,
        get_i64_le: i64,
        get_f32_le: f32,
        get_f64_le: f64,
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    buf_le_putters! {
        put_u16_le: u16,
        put_u32_le: u32,
        put_u64_le: u64,
        put_i16_le: i16,
        put_i32_le: i32,
        put_i64_le: i64,
        put_f32_le: f32,
        put_f64_le: f64,
    }
}

/// A cheaply-cloneable immutable byte buffer: shared storage + a range.
///
/// The storage is `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that
/// [`From<Vec<u8>>`](#impl-From<Vec<u8>>-for-Bytes) is a *move* — one
/// pointer-sized allocation for the `Arc`, no copy of the data. The bulk
/// data plane converts megabyte slabs to `Bytes` on every chunk; an
/// `Arc<[u8]>` would re-copy each one.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice (copied into shared storage; semantics,
    /// not the zero-copy optimization, are what callers rely on).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The bytes of the view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    /// Both views share the same storage. Panics if `at > len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Returns a sub-view sharing the same storage.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// True if this handle is the only one referencing the storage.
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }

    /// Recovers the backing `Vec` (whatever the view's range) if this is
    /// the only handle — buffer recycling for megabyte slab storage —
    /// otherwise returns `self` unchanged.
    pub fn try_unwrap(self) -> Result<Vec<u8>, Bytes> {
        let Bytes { data, start, end } = self;
        Arc::try_unwrap(data).map_err(|data| Bytes { data, start, end })
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    /// Zero-copy: the `Vec` moves behind the `Arc` as-is.
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The written bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Converts into an immutable shared [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.data.clone()), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_round_trip() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_i64_le(-42);
        buf.put_f64_le(2.5);
        buf.put_slice(b"tail");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xdead_beef);
        assert_eq!(bytes.get_i64_le(), -42);
        assert_eq!(bytes.get_f64_le(), 2.5);
        assert_eq!(bytes.as_slice(), b"tail");
        assert!(bytes.has_remaining());
        bytes.advance(4);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn split_to_shares_storage() {
        let mut b = Bytes::from(b"hello world".to_vec());
        let head = b.split_to(5);
        assert_eq!(head.as_slice(), b"hello");
        assert_eq!(b.as_slice(), b" world");
        assert_eq!(head.to_vec(), b"hello");
    }

    #[test]
    fn equality_and_from_static() {
        let a = Bytes::from_static(b"ping");
        let b = Bytes::from(b"ping".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, *b"ping");
    }
}
