//! In-tree shim for the `crossbeam` API subset the workspace uses.
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched. Only `crossbeam::channel::{unbounded, Sender, Receiver}` is
//! provided: an unbounded MPMC channel built on `Mutex<VecDeque>` +
//! `Condvar`, with crossbeam's disconnect semantics (`recv` errors once
//! every `Sender` is dropped and the queue has drained; `send` errors
//! once every `Receiver` is dropped).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message, like crossbeam's `SendError`.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty (but senders remain).
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Creates an unbounded channel, returning `(Sender, Receiver)`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one blocked receiver. Fails only when
        /// every `Receiver` has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            match state.items.pop_front() {
                Some(item) => Ok(item),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            handle.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
