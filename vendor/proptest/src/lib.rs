//! In-tree shim for the `proptest` API subset the workspace uses.
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched. This shim keeps the property-test modules compiling and
//! genuinely exercising random inputs: strategies generate values from a
//! deterministic per-test RNG (seeded from the test's module path, so
//! runs are reproducible), and `proptest!` expands each property into a
//! loop over `ProptestConfig::cases` generated cases. Shrinking of
//! failing inputs is intentionally not implemented — a failing case
//! reports the assertion as-is.
//!
//! Supported surface: `Strategy` (`prop_map`, `prop_flat_map`,
//! `prop_filter`), `Just`, `any::<T>()`, integer/float range strategies,
//! tuple strategies (arity 2–6), string-pattern strategies (`"[a-z]{1,6}"`
//! style character classes), `collection::{vec, btree_map}`,
//! `prop_oneof!`, `proptest!`, `prop_assert!`, `prop_assert_eq!`.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---- deterministic RNG -------------------------------------------------

/// A small deterministic RNG (splitmix64) seeded from a string.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (typically the test's path).
    pub fn deterministic(seed: &str) -> Self {
        // FNV-1a over the seed string.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in seed.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty choice");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---- Strategy core -----------------------------------------------------

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing the predicate (bounded retries).
    fn prop_filter<F>(self, label: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            label: label.into(),
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    label: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive values",
            self.label
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- any::<T>() --------------------------------------------------------

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over a type's whole domain. See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally an arbitrary scalar value.
        if rng.below(4) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0x11_0000).unwrap_or('\u{fffd}')
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(8) {
            0 => f64::from_bits(rng.next_u64()), // may be NaN/inf/subnormal
            1 => 0.0,
            _ => (rng.unit_f64() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

// ---- range strategies --------------------------------------------------

macro_rules! range_strategy_int {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = rng.next_u64() % span;
                    (self.start as i128 + off as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    let off = if span == 0 { rng.next_u64() } else { rng.next_u64() % span };
                    (lo as i128 + off as i128) as $ty
                }
            }
        )+
    };
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---- tuple strategies --------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---- string pattern strategies -----------------------------------------

/// One parsed element of a string pattern: a set of candidate chars plus
/// a repetition range.
struct PatternAtom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        set.push(char::from_u32(c).unwrap());
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                None => {
                    let n = body.parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!choices.is_empty(), "empty character class in {pattern:?}");
        atoms.push(PatternAtom { choices, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let reps = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..reps {
                out.push(atom.choices[rng.below(atom.choices.len())]);
            }
        }
        out
    }
}

// ---- prop_oneof support ------------------------------------------------

/// A uniform choice among same-valued strategies (built by `prop_oneof!`).
type ArmFn<V> = Rc<dyn Fn(&mut TestRng) -> V>;

pub struct Union<V> {
    arms: Vec<ArmFn<V>>,
}

impl<V> Union<V> {
    /// An empty union (invalid until `or` adds an arm).
    pub fn empty() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds an arm.
    pub fn or(mut self, strategy: impl Strategy<Value = V> + 'static) -> Self {
        self.arms.push(Rc::new(move |rng| strategy.generate(rng)));
        self
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        self.arms[rng.below(self.arms.len())](rng)
    }
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::empty()$(.or($arm))+
    };
}

// ---- collections -------------------------------------------------------

/// Collection strategies (`vec`, `btree_map`).
pub mod collection {
    use super::*;

    /// A size or size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below(self.max - self.min + 1)
        }
    }

    /// Strategy for `Vec<S::Value>`. See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K, V>`. See [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Key collisions shrink the map below the drawn size, matching
            // proptest's own semantics (size is an upper bound).
            let n = self.size.pick(rng);
            let mut map = BTreeMap::new();
            for _ in 0..n {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    /// Generates ordered maps with entry count bounded by `size`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

// ---- runner configuration + macros -------------------------------------

/// Per-property configuration (`cases` = generated inputs per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $( let $pat = $crate::Strategy::generate(&($strategy), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds (plain `assert!`; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality (plain `assert_eq!`; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality (plain `assert_ne!`; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The usual proptest imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Box(u32),
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop_oneof![Just(Shape::Dot), (1u32..=7).prop_map(Shape::Box),]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -5i64..5, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        /// Doc comments on property fns must parse.
        #[test]
        fn strings_match_class(s in "[a-z]{1,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn collections_and_unions(
            v in collection::vec(arb_shape(), 0..5),
            m in collection::btree_map("[a-z]{1,3}", 0u64..10, 0..6),
        ) {
            prop_assert!(v.len() < 5);
            prop_assert!(m.len() < 6);
            for s in &v {
                if let Shape::Box(n) = s {
                    prop_assert!((1..=7).contains(n));
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn flat_map_and_filter(
            (len, data) in (1usize..4).prop_flat_map(|n| {
                (Just(n), collection::vec(any::<i32>().prop_filter("even", |x| x % 2 == 0), n))
            }),
        ) {
            prop_assert_eq!(data.len(), len);
            for x in data {
                prop_assert_eq!(x.rem_euclid(2), 0);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
