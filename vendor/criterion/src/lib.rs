//! In-tree shim for the `criterion` API subset the workspace uses.
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched. This shim keeps the bench sources compiling unchanged and
//! produces honest wall-clock numbers: each benchmark is auto-calibrated
//! to a target batch duration, sampled repeatedly, and reported as the
//! median ns/iter on stdout. It intentionally skips criterion's
//! statistical machinery (outlier classification, regression, HTML
//! reports) — relative comparisons within a run are what the e-series
//! benches need.
//!
//! Set `CCA_BENCH_FAST=1` to shrink sample counts (used by CI smoke runs).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time per measured sample batch.
const TARGET_BATCH: Duration = Duration::from_millis(5);

/// How the measured element count relates to one iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched*` (ignored; one setup per iter).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Per-iteration state of unknown size.
    PerIteration,
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: default_sample_size(),
            throughput: None,
        }
    }
}

fn default_sample_size() -> usize {
    if std::env::var_os("CCA_BENCH_FAST").is_some() {
        3
    } else {
        15
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples (criterion semantics; the shim
    /// scales its own sample loop from it).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion's floor is 10 samples at ~100 batches each; the shim's
        // equivalent knob is small, so divide to keep slow benches fast.
        self.sample_size = n.clamp(3, 50);
        self
    }

    /// Declares per-iteration throughput (recorded in the report line).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchIdArg, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id_arg());
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report lines were already emitted).
    pub fn finish(self) {}
}

/// Accepts the id forms the benches use: `&str`, `String`, `BenchmarkId`.
pub trait IntoBenchIdArg {
    /// Converts to the printable id.
    fn into_bench_id_arg(self) -> String;
}
impl IntoBenchIdArg for BenchmarkId {
    fn into_bench_id_arg(self) -> String {
        self.id
    }
}
impl IntoBenchIdArg for String {
    fn into_bench_id_arg(self) -> String {
        self
    }
}
impl IntoBenchIdArg for &str {
    fn into_bench_id_arg(self) -> String {
        self.to_string()
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples_ns_per_iter: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let mut samples = bencher.samples_ns_per_iter;
    if samples.is_empty() {
        println!("{name:<56} <no measurement>");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 * 1e3 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  ({:.1} MB/s)", n as f64 * 1e3 / median)
        }
        _ => String::new(),
    };
    println!("{name:<56} {median:>12.1} ns/iter{rate}");
}

/// Measures closures: calibrates an iteration count to [`TARGET_BATCH`],
/// then records `sample_size` timed batches.
pub struct Bencher {
    samples_ns_per_iter: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Benchmarks `routine`, timing batches of auto-calibrated size.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it takes long enough to time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_BATCH || iters >= 1 << 28 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                let scale = TARGET_BATCH.as_secs_f64() / elapsed.as_secs_f64();
                ((iters as f64 * scale.clamp(1.2, 16.0)) as u64).max(iters + 1)
            };
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64;
            self.samples_ns_per_iter.push(ns / iters as f64);
        }
    }

    /// Benchmarks `routine` with per-iteration state from `setup`; setup
    /// time is excluded by timing each routine call individually.
    pub fn iter_batched_ref<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(&mut S) -> O,
    {
        // Calibrate a per-call estimate so cheap routines still get a
        // stable measurement by averaging many calls per sample.
        let mut state = setup();
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine(&mut state));
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_BATCH || iters >= 1 << 24 {
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                let scale = TARGET_BATCH.as_secs_f64() / elapsed.as_secs_f64();
                ((iters as f64 * scale.clamp(1.2, 16.0)) as u64).max(iters + 1)
            };
        }
        for _ in 0..self.sample_size {
            let mut state = setup();
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine(&mut state));
            }
            let ns = start.elapsed().as_nanos() as f64;
            self.samples_ns_per_iter.push(ns / iters as f64);
        }
    }
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| b.iter(|| std::hint::black_box(1u64) + 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| std::hint::black_box(n) * 2)
        });
        group.bench_function(format!("{}/owned", "id"), |b| {
            b.iter_batched_ref(Vec::<u8>::new, |v| v.push(1), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
