//! Umbrella crate for `cca-rs`. Re-exports the public API of every
//! subsystem crate; see README.md and DESIGN.md.
pub mod generated;

pub use cca_core as core;
pub use cca_data as data;
pub use cca_framework as framework;
pub use cca_obs as obs;
pub use cca_parallel as parallel;
pub use cca_repository as repository;
pub use cca_rpc as rpc;
pub use cca_sidl as sidl;
pub use cca_solvers as solvers;
pub use cca_viz as viz;
