//! Bindings generated at build time by the cca-sidl proxy generator from
//! `sidl/esi.sidl`. See `build.rs`. The module demonstrates — and its use
//! in tests and the E2 benchmark verifies — that the generator's output
//! compiles and behaves: one object-safe trait per interface/class, a
//! Babel-style `*Stub` per type (the 2-3-call binding layer of §6.2), and
//! a `*Skel` adapter onto the dynamic-invocation protocol.
include!(concat!(env!("OUT_DIR"), "/esi_generated.rs"));

/// Path to the generated C header (Babel-IOR style), for inspection.
pub const GENERATED_C_HEADER: &str = concat!(env!("OUT_DIR"), "/esi_generated.h");
