//! Figure 1, executable: a CHAD-style semi-implicit simulation distributed
//! over four SPMD ranks, with a differently distributed visualization
//! consumer attached through a collective M×N port.
//!
//! ```text
//! cargo run --example chad_semi_implicit
//! ```
//!
//! The upper half of the paper's Figure 1 — mesh, discretization,
//! preconditioner ⇄ Krylov solver, all tightly coupled over 4 ranks — is
//! `HydroSim::step` with a communicator. The lower half — the visualizer
//! with its own distribution — receives the field over an `MxNPort` and
//! renders ASCII frames.

use cca::data::{DimDist, DistArrayDesc, Distribution, ProcessGrid};
use cca::framework::MxNPort;
use cca::parallel::spmd;
use cca::solvers::precond::Identity;
use cca::solvers::{HydroConfig, HydroSim, KrylovKind};
use cca::viz::{render_ascii, FieldStats};

fn main() {
    let cfg = HydroConfig {
        nx: 48,
        ny: 48,
        dt: 1.5e-3,
        nu: 0.08,
        vx: 1.2,
        vy: 0.6,
        tol: 1e-9,
        max_iter: 800,
        kind: KrylovKind::Cg,
    };
    let sim_ranks = 4;
    let steps = 30;
    let frames_every = 10;

    // Simulation side: [1, 4] grid, block rows (matches Mesh2d).
    let sim_desc = DistArrayDesc::new(
        &[cfg.nx, cfg.ny],
        Distribution::new(
            ProcessGrid::new(&[1, sim_ranks]).unwrap(),
            &[DimDist::Block, DimDist::Block],
        )
        .unwrap(),
    )
    .unwrap();
    // Visualization side: serial (the "local workstation" of §2.2),
    // occupying world rank 4.
    let viz_desc = DistArrayDesc::new(&[cfg.nx, cfg.ny], Distribution::serial(2).unwrap()).unwrap();
    let port = MxNPort::new(&sim_desc, &viz_desc, vec![0, 1, 2, 3], vec![4], 400).unwrap();

    println!(
        "Figure 1 scenario: {} sim ranks ({}x{} mesh) -> 1 viz rank, {} steps",
        sim_ranks, cfg.nx, cfg.ny, steps
    );
    println!(
        "redistribution plan: {} transfers, {} elements/frame ({} cross-rank)",
        port.plan().transfers().len(),
        port.plan().total_elements(),
        port.plan().moved_elements()
    );

    spmd(sim_ranks + 1, |c| {
        if c.rank() < sim_ranks {
            // ---- numerical component (upper half of Figure 1) ----
            let sub = c.split(Some(0), c.rank() as i64).unwrap().unwrap();
            let mut sim = HydroSim::new(cfg, sim_ranks, c.rank());
            for step in 0..steps {
                let stats = sim.step(Some(&sub), &Identity).unwrap();
                if step % frames_every == 0 {
                    port.send(c, &sim.u).unwrap();
                    // mass() is collective — every sim rank must call it.
                    let mass = sim.mass(Some(&sub));
                    if c.rank() == 0 {
                        println!(
                            "step {step:3}: CG {} iters, residual {:.2e}, mass {mass:.5}",
                            stats.iterations, stats.residual
                        );
                    }
                }
            }
        } else {
            // ---- visualization component (lower half of Figure 1) ----
            let _ = c.split(None, 0).unwrap();
            let frames = steps / frames_every + usize::from(steps % frames_every != 0);
            let n = viz_desc.local_count(0).unwrap();
            for frame in 0..frames {
                let mut field = vec![0.0f64; n];
                port.recv(c, &mut field).unwrap();
                let stats = FieldStats::of(&field);
                println!(
                    "viz frame {frame}: min {:.4} max {:.4} mean {:.4}",
                    stats.min, stats.max, stats.mean
                );
                println!("{}", render_ascii(&field, cfg.nx, cfg.ny, 64, 20));
            }
        }
    });
    println!("done.");
}
