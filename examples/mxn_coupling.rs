//! Collective ports (§6.3) in all three regimes the paper describes:
//! matched n→n, serial↔parallel (broadcast/gather/scatter semantics), and
//! arbitrary M×N between different distributions.
//!
//! ```text
//! cargo run --example mxn_coupling
//! ```
//!
//! Prints, per configuration, the redistribution plan's shape: how many
//! point-to-point transfers it needs and how many elements stay put vs
//! cross ranks. This is the *data movement geometry* behind Figure 1's
//! arrows between the simulation and the differently distributed
//! visualization tools.

use cca::data::{DimDist, DistArrayDesc, Distribution, ProcessGrid, RedistPlan};
use cca::framework::MxNPort;
use cca::parallel::spmd;

fn block(n: usize, p: usize) -> DistArrayDesc {
    DistArrayDesc::new(&[n], Distribution::block_1d(p, 1).unwrap()).unwrap()
}

fn cyclic(n: usize, p: usize) -> DistArrayDesc {
    let dist = Distribution::new(ProcessGrid::linear(p).unwrap(), &[DimDist::Cyclic]).unwrap();
    DistArrayDesc::new(&[n], dist).unwrap()
}

fn block_cyclic(n: usize, p: usize, b: usize) -> DistArrayDesc {
    let dist = Distribution::new(
        ProcessGrid::linear(p).unwrap(),
        &[DimDist::BlockCyclic { block: b }],
    )
    .unwrap();
    DistArrayDesc::new(&[n], dist).unwrap()
}

fn describe(label: &str, src: &DistArrayDesc, dst: &DistArrayDesc) {
    let plan = RedistPlan::build(src, dst).unwrap();
    println!(
        "{label:<34} M={} N={} transfers={:<4} resident={:<6} moved={:<6} matched={}",
        src.nranks(),
        dst.nranks(),
        plan.transfers().len(),
        plan.resident_elements(),
        plan.moved_elements(),
        plan.is_matched()
    );
}

fn main() {
    let n = 4096;
    println!("global array: {n} elements\n");

    println!("-- the paper's three collective-port cases ----------------");
    describe(
        "matched 4 -> 4 (no redistribution)",
        &block(n, 4),
        &block(n, 4),
    );
    describe(
        "serial -> 4 (scatter semantics)",
        &block(n, 1),
        &block(n, 4),
    );
    describe("4 -> serial (gather semantics)", &block(n, 4), &block(n, 1));
    describe(
        "4 block -> 3 cyclic (arbitrary MxN)",
        &block(n, 4),
        &cyclic(n, 3),
    );
    describe("8 block -> 2 block (shrink)", &block(n, 8), &block(n, 2));
    describe(
        "4 cyclic(64) -> 4 cyclic(16)",
        &block_cyclic(n, 4, 64),
        &block_cyclic(n, 4, 16),
    );

    // Execute one of them over real SPMD ranks and verify delivery.
    println!("\n-- executing 4 block -> 3 cyclic over 4 world ranks -------");
    let src = block(n, 4);
    let dst = cyclic(n, 3);
    let port = MxNPort::new(&src, &dst, vec![0, 1, 2, 3], vec![0, 1, 2], 9).unwrap();
    let checks = spmd(4, |c| {
        // Source buffer tagged with global indices.
        let src_rank = port.my_src_rank(c).unwrap();
        let mut data = vec![0.0f64; src.local_count(src_rank).unwrap()];
        for region in src.owned_regions(src_rank).unwrap() {
            for idx in region.indices() {
                let off = RedistPlan::local_offset(&src, src_rank, &idx).unwrap();
                data[off] = idx[0] as f64;
            }
        }
        let out = port.exchange(c, &data).unwrap();
        // Verify every received element is the one the target descriptor
        // says this rank owns.
        let mut checked = 0usize;
        if let Some(dst_rank) = port.my_dst_rank(c) {
            for region in dst.owned_regions(dst_rank).unwrap() {
                for idx in region.indices() {
                    let off = RedistPlan::local_offset(&dst, dst_rank, &idx).unwrap();
                    assert_eq!(out[off], idx[0] as f64);
                    checked += 1;
                }
            }
        }
        checked
    });
    let total: usize = checks.iter().sum();
    println!("verified {total} elements delivered to their new owners");
    assert_eq!(total, n);
    println!("ok.");
}
