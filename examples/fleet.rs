//! Supervised worker fleet, live:
//!
//! ```text
//! cargo run --example fleet
//! ```
//!
//! The parent binds the fleet hub, launches 3 ranks as child processes
//! (re-execing this same binary), lets them iterate a distributed
//! allreduce with per-step checkpoints, then `kill -9`s rank 1
//! mid-run. Watch the supervisor detect the death via connection
//! teardown, quarantine the rank behind its circuit breaker, restart it
//! under decorrelated-jitter backoff, and the group roll back to the
//! last committed checkpoint and converge anyway — same answer, one
//! murder later.

use cca::core::resilience::SystemClock;
use cca::framework::fleet::{
    fleet_rank_env, ExecLauncher, FleetConfig, FleetRankEnv, FleetSupervisor, HubLink, RankLauncher,
};
use cca::parallel::SumOp;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};

const STEPS: u64 = 8;

/// Child mode: iterate `value += allreduce(rank-dependent term)` with a
/// checkpoint each step, rolling back on fleet interruption.
fn run_rank(env: FleetRankEnv) -> ! {
    let link = HubLink::connect(
        &env.addr,
        env.rank,
        env.incarnation,
        &[format!("tcp+mux://{}/demo.rank{}", env.addr, env.rank)],
        Duration::from_secs(20),
    )
    .expect("join fleet hub");
    let mut value: f64;
    let mut step: u64;
    loop {
        link.resync().expect("resync");
        match link.restore().expect("restore") {
            Some((s, blob)) => {
                step = s;
                value = f64::from_le_bytes(blob.as_slice().try_into().unwrap());
            }
            None => {
                step = 0;
                value = 0.0;
            }
        }
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let comm = link.comm();
            while step < STEPS {
                let term = (env.rank as f64 + 1.0) / (step as f64 + 1.0);
                value += comm.allreduce(term, &SumOp).expect("allreduce");
                step += 1;
                link.checkpoint(step, &value.to_le_bytes())
                    .expect("checkpoint");
                // Slow the loop down so the parent's kill lands mid-run.
                std::thread::sleep(Duration::from_millis(40));
            }
            value
        }));
        match outcome {
            Ok(v) => {
                link.deposit_result(&v.to_le_bytes()).expect("result");
                link.leave().expect("leave");
                std::process::exit(0);
            }
            Err(p) if link.interrupted() => {
                drop(p);
                eprintln!(
                    "[rank {} inc {}] interrupted at generation {} — rolling back",
                    env.rank,
                    env.incarnation,
                    link.generation()
                );
            }
            Err(p) => std::panic::resume_unwind(p),
        }
    }
}

fn main() {
    if let Some(env) = fleet_rank_env() {
        run_rank(env);
    }

    let mut config = FleetConfig::new(3);
    config.base_backoff_ns = 30_000_000;
    config.max_backoff_ns = 300_000_000;
    config.healthy_after_ns = 60_000_000;
    let launcher: Arc<dyn RankLauncher> =
        Arc::new(ExecLauncher::current_exe().expect("current exe"));
    let sup = FleetSupervisor::new(config, launcher, SystemClock::new()).expect("bind hub");
    println!("fleet hub listening on {}", sup.addr());
    sup.start();
    sup.start_monitor(Duration::from_millis(5));

    // Let the fleet commit a couple of steps, then kill rank 1.
    let deadline = Instant::now() + Duration::from_secs(60);
    while sup.hub().committed_step() < Some(2) {
        assert!(Instant::now() < deadline, "fleet never made progress");
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "committed step {:?} — kill -9 rank 1",
        sup.hub().committed_step()
    );
    sup.kill_rank(1);

    // Convergence despite the murder.
    let results = loop {
        if let Some(r) = sup.hub().all_results() {
            break r;
        }
        assert!(Instant::now() < deadline, "fleet never converged");
        std::thread::sleep(Duration::from_millis(10));
    };
    for (rank, blob) in results.iter().enumerate() {
        let v = f64::from_le_bytes(blob.as_slice().try_into().unwrap());
        println!("rank {rank} final value: {v:.12}");
    }

    println!("\nsupervision log:");
    for ev in sup.events() {
        println!("  {}", ev.to_json());
    }
    println!(
        "\nfleet counters: {}",
        cca::obs::fleet().snapshot().to_json()
    );
    sup.shutdown();
    println!("fleet shut down; every child reaped.");
}
