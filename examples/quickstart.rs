//! Quickstart: the CCA connection mechanism (Figure 3) in one file.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Defines two components — a provider of a `demo.Greeter` port and a
//! consumer — wires them through the reference framework, and calls the
//! port both ways the paper allows: direct-connect (a virtual call) and
//! proxied through the framework ORB (marshaled), without the components
//! changing.

use cca::core::{CcaError, CcaServices, Component, PortHandle};
use cca::framework::{ConnectionPolicy, Framework};
use cca::repository::Repository;
use cca::sidl::{DynObject, DynValue, SidlError};
use cca_data::TypeMap;
use std::sync::Arc;

/// The port's Rust face (what SIDL's `interface Greeter` generates).
trait GreeterPort: Send + Sync {
    fn greet(&self, name: &str) -> String;
}

/// The provider component and its port implementation.
struct GreeterComponent;

struct GreeterImpl;

impl GreeterPort for GreeterImpl {
    fn greet(&self, name: &str) -> String {
        format!("hello, {name}!")
    }
}

// The dynamic facade a SIDL skeleton would generate.
impl DynObject for GreeterImpl {
    fn sidl_type(&self) -> &str {
        "demo.Greeter"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "greet" => Ok(DynValue::Str(self.greet(args[0].as_str()?))),
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

impl Component for GreeterComponent {
    fn component_type(&self) -> &str {
        "demo.GreeterComponent"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        // Figure 3 step (1): addProvidesPort.
        let port = Arc::new(GreeterImpl);
        let typed: Arc<dyn GreeterPort> = port.clone();
        let dynamic: Arc<dyn DynObject> = port;
        services.add_provides_port(
            PortHandle::new("greeter", "demo.Greeter", typed).with_dynamic(dynamic),
        )
    }
}

/// The consumer component: declares a uses port.
struct CallerComponent;

impl Component for CallerComponent {
    fn component_type(&self) -> &str {
        "demo.CallerComponent"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        services.register_uses_port("out", "demo.Greeter", TypeMap::new())
    }
}

fn main() -> Result<(), CcaError> {
    for policy in [ConnectionPolicy::Direct, ConnectionPolicy::Proxied] {
        let fw = Framework::with_policy(Repository::new(), policy);
        fw.add_instance("greeter0", Arc::new(GreeterComponent))?;
        fw.add_instance("caller0", Arc::new(CallerComponent))?;
        // Figure 3 steps (2)+(3): the framework hands the interface — or a
        // proxy — to the consumer. The components cannot tell which.
        fw.connect("caller0", "out", "greeter0", "greeter")?;

        // Figure 3 step (4): getPort, then call.
        let handle = fw.services("caller0")?.get_port("out")?;
        let reply = match policy {
            ConnectionPolicy::Direct => {
                // Typed fast path: one virtual call into the provider.
                let port: Arc<dyn GreeterPort> = handle.typed()?;
                port.greet("world")
            }
            ConnectionPolicy::Proxied => {
                // Dynamic path through the ORB proxy.
                let port = handle.dynamic().expect("dynamic facade");
                match port.invoke("greet", vec![DynValue::Str("world".into())]) {
                    Ok(DynValue::Str(s)) => s,
                    other => panic!("unexpected reply {other:?}"),
                }
            }
        };
        println!("{policy:?} connection -> {reply}");
    }

    // Bonus: compile a SIDL snippet and show what the repository learns.
    let model =
        cca::sidl::compile("package demo { interface Greeter { string greet(in string name); } }")
            .map_err(CcaError::Sidl)?;
    let reflection = cca::sidl::Reflection::from_model(&model);
    let info = reflection.type_info("demo.Greeter").expect("registered");
    println!(
        "SIDL reflection: {} has {} method(s); greet returns {:?}",
        info.qname,
        info.methods.len(),
        info.method("greet").unwrap().ret
    );
    Ok(())
}
