//! §2.2's dynamic-interaction scenario, executable:
//!
//! ```text
//! cargo run --example dynamic_steering
//! ```
//!
//! 1. A simulation runs with a weak solver configuration.
//! 2. A monitor attaches mid-run and reports that convergence is slow.
//! 3. The builder swaps in an ILU(0) preconditioner *without stopping the
//!    simulation* (framework `redirect`).
//! 4. A steering knob raises the viscosity, visibly changing the physics.

use cca::core::event::RecordingListener;
use cca::framework::Framework;
use cca::repository::Repository;
use cca::solvers::esi::{
    expose_precond_ports, expose_solver_ports, LinearSolverPort, MatrixComponent, PrecondComponent,
    PrecondKind, SolverComponent, SolverConfig, ESI_SIDL,
};
use cca::solvers::{HydroConfig, HydroSim, KrylovKind};
use cca::viz::monitor::FieldProviderComponent;
use cca::viz::{InMemoryFieldSource, MonitorComponent, SteeringPort, SteeringRegistry};
use cca_data::{DistArrayDesc, Distribution};
use std::sync::Arc;

fn main() {
    let registry = SteeringRegistry::new();
    registry.register("nu", 0.02, 0.0, 5.0).unwrap();

    let mut cfg = HydroConfig {
        nx: 24,
        ny: 24,
        dt: 4e-3,
        vx: 0.8,
        vy: 0.3,
        tol: 1e-9,
        max_iter: 2000,
        kind: KrylovKind::Cg,
        nu: 0.0, // set from the registry below
    };
    cfg.nu = registry.value("nu");

    // Assemble Figure 1's solver chain as CCA components.
    let mut sim = HydroSim::new(cfg, 1, 0);
    let repo = Repository::new();
    repo.deposit_sidl(ESI_SIDL).unwrap();
    let fw = Framework::new(repo);
    let rec = RecordingListener::new();
    fw.add_listener(rec.clone());

    fw.add_instance("matrix0", MatrixComponent::new(sim.local_matrix()))
        .unwrap();
    let weak = PrecondComponent::new(PrecondKind::Identity);
    let strong = PrecondComponent::new(PrecondKind::Ilu0);
    let solver = SolverComponent::new(SolverConfig {
        kind: cfg.kind,
        tol: cfg.tol,
        max_iter: cfg.max_iter,
    });
    fw.add_instance("weak0", weak.clone()).unwrap();
    fw.add_instance("strong0", strong.clone()).unwrap();
    fw.add_instance("solver0", solver.clone()).unwrap();
    expose_precond_ports(&weak).unwrap();
    expose_precond_ports(&strong).unwrap();
    expose_solver_ports(&solver).unwrap();
    fw.connect("weak0", "A", "matrix0", "A").unwrap();
    fw.connect("strong0", "A", "matrix0", "A").unwrap();
    fw.connect("solver0", "A", "matrix0", "A").unwrap();
    fw.connect("solver0", "M", "weak0", "M").unwrap();

    let port: Arc<dyn LinearSolverPort> = fw
        .services("solver0")
        .unwrap()
        .get_provides_port("solver")
        .unwrap()
        .typed()
        .unwrap();
    let step = |sim: &mut HydroSim, port: &Arc<dyn LinearSolverPort>| {
        sim.step_with_solver(None, &|_op, b, x| {
            let (solution, stats) = port.solve_system(b)?;
            x.copy_from_slice(&solution);
            Ok(stats)
        })
        .unwrap()
    };

    // Field publication for the monitor.
    let source = InMemoryFieldSource::new();
    let desc = DistArrayDesc::new(&[cfg.nx, cfg.ny], Distribution::serial(2).unwrap()).unwrap();
    fw.add_instance("fields0", FieldProviderComponent::new(source.clone()))
        .unwrap();

    println!("phase 1: unobserved, unpreconditioned");
    for s in 0..3 {
        let stats = step(&mut sim, &port);
        source
            .publish("u", desc.clone(), vec![sim.u.clone()])
            .unwrap();
        println!("  step {s}: {} CG iterations", stats.iterations);
    }

    println!("phase 2: researcher attaches a monitor mid-run");
    let monitor = MonitorComponent::new("u");
    fw.add_instance("viz0", monitor.clone()).unwrap();
    fw.connect("viz0", "fields", "fields0", "fields").unwrap();
    let frame = monitor.capture().unwrap();
    println!(
        "  captured frame {}: max {:.4}, mean {:.5}",
        frame.frame, frame.stats.max, frame.stats.mean
    );
    println!("{}", monitor.render_latest(48, 16).unwrap());

    println!("phase 3: swap preconditioner components mid-run (redirect)");
    let before = step(&mut sim, &port).iterations;
    fw.redirect("solver0", "M", "weak0", "strong0", "M")
        .unwrap();
    let after = step(&mut sim, &port).iterations;
    println!("  CG iterations: {before} before swap, {after} after ILU(0)");
    assert!(after <= before);

    println!("phase 4: steer the viscosity knob");
    let peak_before = sim.max_abs(None);
    registry.set("nu", 2.5).unwrap();
    // The simulation notices the revision change and rebuilds its operator.
    let mut cfg2 = cfg;
    cfg2.nu = registry.value("nu");
    let mut steered = HydroSim::new(cfg2, 1, 0);
    steered.u = sim.u.clone();
    // Rebuild the matrix component to match (a new instance, new wiring).
    fw.add_instance("matrix1", MatrixComponent::new(steered.local_matrix()))
        .unwrap();
    fw.redirect("solver0", "A", "matrix0", "matrix1", "A")
        .unwrap();
    fw.redirect("strong0", "A", "matrix0", "matrix1", "A")
        .unwrap();
    let stats = step(&mut steered, &port);
    println!(
        "  nu {} -> {}: peak {:.4} -> {:.4} in one step ({} iters)",
        cfg.nu,
        cfg2.nu,
        peak_before,
        steered.max_abs(None),
        stats.iterations
    );
    assert!(steered.max_abs(None) < peak_before);

    println!(
        "builder event log: {} events ({} connections made)",
        rec.len(),
        rec.events()
            .iter()
            .filter(|e| matches!(e, cca::core::ConfigEvent::Connected { .. }))
            .count()
    );
}
