//! The SIDL toolchain as a command-line tool.
//!
//! ```text
//! cargo run --example sidl_compiler            # compiles the built-in ESI file
//! cargo run --example sidl_compiler -- my.sidl # compiles your file
//! ```
//!
//! Parses, checks, and reports on a SIDL source: the type catalog, the
//! flattened method sets with inheritance provenance, then emits the Rust
//! bindings and the Babel-IOR-style C header (Figure 2's proxy generator).

use cca::sidl::codegen_c::generate_c_header;
use cca::sidl::codegen_rust::{generate_rust, RustCodegenOptions};
use cca::sidl::fmt::print_packages;
use cca::sidl::{Reflection, TypeKind};
use std::env;
use std::fs;

const DEFAULT_SOURCE: &str = include_str!("../sidl/esi.sidl");

fn main() {
    let args: Vec<String> = env::args().collect();
    let (name, source) = match args.get(1) {
        Some(path) => (
            path.clone(),
            fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }),
        ),
        None => (
            "sidl/esi.sidl (built-in)".to_string(),
            DEFAULT_SOURCE.to_string(),
        ),
    };

    println!("== compiling {name} ==");
    let packages = match cca::sidl::parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let model = match cca::sidl::check(&packages) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    println!("\n-- canonical form ------------------------------------------");
    println!("{}", print_packages(&packages));

    println!("-- type catalog ---------------------------------------------");
    let reflection = Reflection::from_model(&model);
    for info in reflection.types() {
        let kind = match info.kind {
            TypeKind::Interface => "interface",
            TypeKind::Class => {
                if info.is_abstract {
                    "abstract class"
                } else {
                    "class"
                }
            }
            TypeKind::Enum => "enum",
        };
        println!("{kind:<15} {}", info.qname);
        if info.kind == TypeKind::Enum {
            for (v, value) in &info.variants {
                println!("                  {v} = {value}");
            }
            continue;
        }
        if !info.bases.is_empty() {
            println!("                  is-a: {}", info.bases.join(", "));
        }
        for m in &info.methods {
            let args: Vec<String> = m
                .args
                .iter()
                .map(|(mode, ty, n)| format!("{mode} {ty:?} {n}"))
                .collect();
            let inherited = if m.declared_in == info.qname {
                String::new()
            } else {
                format!("   [from {}]", m.declared_in)
            };
            println!(
                "                  {:?} {}({}){inherited}",
                m.ret,
                m.name,
                args.join(", ")
            );
        }
    }

    println!("\n-- generated Rust bindings (first 40 lines) ------------------");
    let rust = generate_rust(&model, &RustCodegenOptions::default());
    for line in rust.lines().take(40) {
        println!("{line}");
    }
    println!("... ({} lines total)", rust.lines().count());

    println!("\n-- generated C header (first 40 lines) -----------------------");
    let header = generate_c_header(&model, "GENERATED_SIDL_H");
    for line in header.lines().take(40) {
        println!("{line}");
    }
    println!("... ({} lines total)", header.lines().count());
}
