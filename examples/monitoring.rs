//! Monitoring a live assembly through the reflective `MonitorPort` —
//! using **dynamic invocation only**, the way an external composition tool
//! or GUI builder would (§5's "discover, query, and execute methods at run
//! time").
//!
//! ```text
//! cargo run --example monitoring
//! ```
//!
//! The example wires a tiny two-component assembly, installs the
//! framework's monitor component, and from that point on touches the
//! monitor exclusively through `cca::sidl::invoke_checked` against the
//! reflection metadata compiled from `MONITOR_SIDL` — no Rust method on
//! `MonitorPort` is called directly. It turns the per-port counters on,
//! drives some port traffic, reads back the live connection graph and call
//! counts, then flips the tracer on and drains a Chrome-format trace.

use cca::core::{CcaError, CcaServices, Component, PortHandle};
use cca::framework::{Framework, MONITOR_INSTANCE, MONITOR_PORT_TYPE, MONITOR_SIDL};
use cca::repository::Repository;
use cca::sidl::{compile, invoke_checked, DynObject, DynValue, MethodInfo, Reflection};
use std::sync::Arc;

// ---------------------------------------------------------------------
// A minimal assembly: an integrator using a force-evaluation port.
// ---------------------------------------------------------------------

trait ForcePort: Send + Sync {
    fn eval(&self, x: f64) -> f64;
}

struct Spring;
impl ForcePort for Spring {
    fn eval(&self, x: f64) -> f64 {
        -4.0 * x
    }
}

struct ForceComponent;
impl Component for ForceComponent {
    fn component_type(&self) -> &str {
        "demo.Force"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let port: Arc<dyn ForcePort> = Arc::new(Spring);
        services.add_provides_port(PortHandle::new("force", "demo.ForcePort", port))
    }
}

struct IntegratorComponent;
impl Component for IntegratorComponent {
    fn component_type(&self) -> &str {
        "demo.Integrator"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        services.register_uses_port("force", "demo.ForcePort", cca::data::TypeMap::new())
    }
}

// ---------------------------------------------------------------------
// The composition tool's side: everything below is dynamic invocation.
// ---------------------------------------------------------------------

/// Looks a method up in the reflected interface, panicking with a helpful
/// message if the SIDL and the servant ever drift apart.
fn method<'a>(info: &'a cca::sidl::TypeInfo, name: &str) -> &'a MethodInfo {
    info.method(name)
        .unwrap_or_else(|| panic!("{MONITOR_PORT_TYPE} has no method '{name}'"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Assemble and wire the application.
    let fw = Framework::new(Repository::new());
    fw.add_instance("force0", Arc::new(ForceComponent))?;
    fw.add_instance("integrator0", Arc::new(IntegratorComponent))?;
    fw.connect("integrator0", "force", "force0", "force")?;

    // Install the monitor. From here on we pretend to be an external tool:
    // all we keep is the port's *dynamic* facade and the SIDL text.
    fw.install_monitor()?;
    let target: Arc<dyn DynObject> = fw
        .services(MONITOR_INSTANCE)?
        .get_provides_port("monitor")?
        .dynamic()
        .expect("monitor port always carries a dynamic facade")
        .clone();

    // Reflection metadata straight from the interface definition — the
    // same text the framework deposited into the repository.
    let model = compile(MONITOR_SIDL)?;
    let reflection = Reflection::from_model(&model);
    let info = reflection
        .type_info(MONITOR_PORT_TYPE)
        .expect("MONITOR_SIDL defines the monitor port type");

    // 1. Who is alive?
    let instances = invoke_checked(&*target, method(info, "instances"), vec![])?;
    println!("instances:\n  {}\n", instances.as_str()?);

    // 2. Turn the per-port counters on (a runtime flip — no restart).
    invoke_checked(
        &*target,
        method(info, "setCounters"),
        vec![DynValue::Bool(true)],
    )?;

    // 3. Drive some traffic through the assembly's uses port.
    let services = fw.services("integrator0")?;
    let mut force = services.cached_port::<dyn ForcePort>("force");
    let mut x = 1.0f64;
    let mut v = 0.0f64;
    for _ in 0..10_000 {
        let a = force.get()?.eval(x);
        v += a * 1.0e-3;
        x += v * 1.0e-3;
    }
    println!("integrated: x = {x:.6}, v = {v:.6}\n");

    // 4. Read the live connection graph and the observed call count.
    let graph = invoke_checked(&*target, method(info, "connectionGraph"), vec![])?;
    println!("connection graph:\n  {}\n", graph.as_str()?);

    let calls = invoke_checked(
        &*target,
        method(info, "callCount"),
        vec![
            DynValue::Str("integrator0".into()),
            DynValue::Str("force".into()),
        ],
    )?;
    println!("integrator0.force calls observed: {}\n", calls.as_long()?);
    assert!(calls.as_long()? >= 10_000);

    // 5. Trace a reconfiguration and render it for chrome://tracing.
    invoke_checked(
        &*target,
        method(info, "setTracing"),
        vec![DynValue::Bool(true)],
    )?;
    fw.disconnect("integrator0", "force", "force0")?;
    fw.connect("integrator0", "force", "force0", "force")?;
    invoke_checked(
        &*target,
        method(info, "setTracing"),
        vec![DynValue::Bool(false)],
    )?;
    let trace = invoke_checked(
        &*target,
        method(info, "drainTrace"),
        vec![DynValue::Str("chrome".into())],
    )?;
    let trace = trace.as_str()?;
    println!(
        "chrome trace ({} bytes): paste into chrome://tracing or ui.perfetto.dev",
        trace.len()
    );
    println!("{}\n", &trace[..trace.len().min(400)]);

    // 6. Full metrics dump, as a dashboard would poll it.
    let metrics = invoke_checked(&*target, method(info, "metricsJson"), vec![])?;
    println!("metrics:\n  {}", metrics.as_str()?);
    Ok(())
}
