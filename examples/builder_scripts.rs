//! Driving the framework with Ccaffeine-style builder scripts and
//! observing it through the event service.
//!
//! ```text
//! cargo run --example builder_scripts
//! ```
//!
//! A builder script assembles a small pipeline from repository components,
//! re-wires it mid-run, and tears it down; every Configuration-API action
//! is mirrored both to a recording listener (the CCA configuration events)
//! and to the topic-based event service.

use cca::core::event::RecordingListener;
use cca::core::{CcaError, CcaServices, Component, PortHandle};
use cca::framework::{EventService, Framework};
use cca::repository::{ComponentEntry, PortSpec, Repository};
use cca_data::TypeMap;
use parking_lot::Mutex;
use std::sync::Arc;

trait NumberPort: Send + Sync {
    fn value(&self) -> f64;
}

struct ConstSource(f64);
impl NumberPort for ConstSource {
    fn value(&self) -> f64 {
        self.0
    }
}

struct SourceComponent(f64);
impl Component for SourceComponent {
    fn component_type(&self) -> &str {
        "pipeline.Source"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let port: Arc<dyn NumberPort> = Arc::new(ConstSource(self.0));
        services.add_provides_port(PortHandle::new("out", "pipeline.Number", port))
    }
}

struct ReaderComponent;
impl Component for ReaderComponent {
    fn component_type(&self) -> &str {
        "pipeline.Reader"
    }
    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        services.register_uses_port("in", "pipeline.Number", TypeMap::new())
    }
}

fn main() -> Result<(), CcaError> {
    // Repository with two sources (different constants) and a reader.
    let repo = Repository::new();
    for (class, v) in [("pipeline.SourceA", 1.0f64), ("pipeline.SourceB", 2.0)] {
        repo.register_component(ComponentEntry {
            class: class.into(),
            description: format!("constant source emitting {v}"),
            provides: vec![PortSpec::new("out", "pipeline.Number")],
            uses: vec![],
            properties: TypeMap::new(),
            factory: Arc::new(move || Arc::new(SourceComponent(v)) as Arc<dyn Component>),
        })
        .unwrap();
    }
    repo.register_component(ComponentEntry {
        class: "pipeline.Reader".into(),
        description: "reads a number port".into(),
        provides: vec![],
        uses: vec![PortSpec::new("in", "pipeline.Number")],
        properties: TypeMap::new(),
        factory: Arc::new(|| Arc::new(ReaderComponent) as Arc<dyn Component>),
    })
    .unwrap();

    let fw = Framework::new(repo);
    let recorder = RecordingListener::new();
    fw.add_listener(recorder.clone());

    // Topic events narrate the scenario for any interested tool.
    let events = EventService::new();
    let narration = Arc::new(Mutex::new(Vec::<String>::new()));
    let sink = Arc::clone(&narration);
    events.subscribe(
        "builder.*",
        Arc::new(move |topic: &str, body: &TypeMap| {
            sink.lock().push(format!(
                "{topic}: {}",
                body.get_string("detail", String::new())
            ));
        }),
    );
    let publish = |topic: &str, detail: &str| {
        let mut body = TypeMap::new();
        body.put_string("detail", detail.into());
        events.publish(topic, &body);
    };

    let read = |fw: &Framework| -> f64 {
        let port: Arc<dyn NumberPort> = fw.services("reader0").unwrap().get_port_as("in").unwrap();
        port.value()
    };

    println!("-- phase 1: scripted assembly --");
    fw.run_script(
        "
        instantiate pipeline.SourceA sourceA
        instantiate pipeline.SourceB sourceB
        instantiate pipeline.Reader  reader0
        connect reader0 in sourceA out
        ",
    )?;
    publish("builder.assembled", "reader0 <- sourceA");
    println!("reader sees {}", read(&fw));

    println!("-- phase 2: scripted re-wiring --");
    fw.run_script("redirect reader0 in sourceA sourceB out")?;
    publish("builder.rewired", "reader0 <- sourceB");
    println!("reader sees {}", read(&fw));

    println!("-- phase 3: scripted teardown --");
    fw.run_script(
        "
        disconnect reader0 in sourceB
        remove sourceA
        remove sourceB
        remove reader0
        ",
    )?;
    publish("builder.done", "scenario dismantled");

    println!("\nconfiguration events seen by the builder:");
    for e in recorder.events() {
        println!("  {e:?}");
    }
    println!("\ntopic narration:");
    for line in narration.lock().iter() {
        println!("  {line}");
    }
    Ok(())
}
