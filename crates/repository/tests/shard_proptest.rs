//! Property tests for the sharded catalog: the discovery guarantees that
//! must hold for *every* catalog, not just the curated fixtures.
//!
//! Four contracts under random entry sets and needles:
//! - **Completeness and soundness**: the trigram-accelerated fuzzy path
//!   returns exactly the entries whose searchable text contains the
//!   needle — the posting intersection may over-approximate, but the
//!   verify step must never let a false positive out and the index must
//!   never lose a true match.
//! - **Layout independence**: rankings are a pure function of the texts;
//!   the same catalog sharded 1, 4, or 32 ways ranks identically.
//! - **Cap fidelity**: a limited page is exactly the head of the
//!   unlimited ranking — capping never trades a higher-scored hit for a
//!   lower one.
//! - **Torn-read freedom**: readers racing a depositor only ever observe
//!   fully-published snapshots — sorted entries, a class map that agrees
//!   with the entry array, a generation that never runs backwards.

use cca_core::{CcaError, CcaServices, Component};
use cca_data::TypeMap;
use cca_repository::{
    ComponentEntry, FuzzyQuery, PortSpec, Repository, ShardedStore, StoredEntry, WriteOutcome,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct Nop;
impl Component for Nop {
    fn component_type(&self) -> &str {
        "t.Nop"
    }
    fn set_services(&self, _s: Arc<CcaServices>) -> Result<(), CcaError> {
        Ok(())
    }
}

fn entry(class: &str, desc: &str) -> ComponentEntry {
    ComponentEntry {
        class: class.into(),
        description: desc.into(),
        provides: vec![PortSpec::new("solve", "esi.Solver")],
        uses: vec![],
        properties: TypeMap::new(),
        factory: Arc::new(|| Arc::new(Nop) as Arc<dyn Component>),
    }
}

/// Random catalogs drawn from a small alphabet so needles actually
/// collide with entry texts (uniform random strings would almost never
/// match and the properties would pass vacuously).
fn arb_catalog() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(("[a-d]{1,3}\\.[A-Da-d]{2,8}", "[a-d ]{0,12}"), 1..40).prop_map(
        |pairs| {
            // Dedupe by class: the catalog rejects duplicates by contract.
            let mut seen = BTreeMap::new();
            for (class, desc) in pairs {
                seen.entry(class).or_insert(desc);
            }
            seen.into_iter().collect()
        },
    )
}

fn populate(repo: &Repository, catalog: &[(String, String)]) {
    for (class, desc) in catalog {
        repo.register_component(entry(class, desc)).unwrap();
    }
}

/// The reference answer, computed the slow honest way: which classes'
/// searchable text (lowered class + lowered aux) contains the needle?
fn expected_matches(catalog: &[(String, String)], needle: &str) -> Vec<String> {
    catalog
        .iter()
        .filter(|(class, desc)| {
            let stored = StoredEntry::new(entry(class, desc));
            stored.lowered_class.contains(needle) || stored.lowered_aux.contains(needle)
        })
        .map(|(class, _)| class.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fuzzy results are exactly the substring-match set: no entry whose
    /// text contains the needle is ever lost to the trigram intersection
    /// (completeness), and no entry without the substring sneaks through
    /// the candidate over-approximation (soundness). Holds on both the
    /// indexed path (needle ≥ 3 bytes) and the short-needle scan path.
    #[test]
    fn fuzzy_hits_are_exactly_the_substring_matches(
        catalog in arb_catalog(),
        needle in "[a-d.]{1,5}",
    ) {
        let repo = Repository::with_shards(4);
        populate(&repo, &catalog);
        let page = repo.fuzzy(&FuzzyQuery::new(&needle).with_limit(catalog.len() + 1));
        let mut got: Vec<String> = page.hits.iter().map(|h| h.class.clone()).collect();
        got.sort();
        let mut expected = expected_matches(&catalog, &needle);
        expected.sort();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(page.matched, page.hits.len());
        prop_assert!(page.next.is_none(), "an uncapped page leaves no cursor");
    }

    /// The ranking is a pure function of (texts, needle): resharding the
    /// same catalog 1, 4, or 32 ways produces the identical hit sequence,
    /// scores included. This is what makes cursors durable across a
    /// rebalance and rankings reproducible across deployments.
    #[test]
    fn ranking_is_stable_under_shard_count(
        catalog in arb_catalog(),
        needle in "[a-d]{2,4}",
    ) {
        let reference: Vec<(String, u32)> = {
            let repo = Repository::with_shards(1);
            populate(&repo, &catalog);
            repo.fuzzy(&FuzzyQuery::new(&needle).with_limit(catalog.len() + 1))
                .hits
                .into_iter()
                .map(|h| (h.class, h.score))
                .collect()
        };
        for shards in [4usize, 32] {
            let repo = Repository::with_shards(shards);
            populate(&repo, &catalog);
            let got: Vec<(String, u32)> = repo
                .fuzzy(&FuzzyQuery::new(&needle).with_limit(catalog.len() + 1))
                .hits
                .into_iter()
                .map(|h| (h.class, h.score))
                .collect();
            prop_assert_eq!(
                &got, &reference,
                "{} shards must rank like 1 shard", shards
            );
        }
    }

    /// A capped page is exactly the head of the uncapped ranking: the
    /// top-k heap never evicts a higher-scored hit in favour of a lower
    /// one, and the continuation cursor appears exactly when something
    /// was cut.
    #[test]
    fn capping_keeps_the_best_hits(
        catalog in arb_catalog(),
        needle in "[a-d]{1,3}",
        limit in 1usize..8,
    ) {
        let repo = Repository::with_shards(4);
        populate(&repo, &catalog);
        let full = repo.fuzzy(&FuzzyQuery::new(&needle).with_limit(catalog.len() + 1));
        let capped = repo.fuzzy(&FuzzyQuery::new(&needle).with_limit(limit));
        let keep = limit.min(full.hits.len());
        prop_assert_eq!(capped.hits.len(), keep);
        for (c, f) in capped.hits.iter().zip(full.hits.iter()) {
            prop_assert_eq!(&c.class, &f.class);
            prop_assert_eq!(c.score, f.score);
        }
        prop_assert_eq!(capped.matched, full.hits.len());
        prop_assert_eq!(capped.next.is_some(), full.hits.len() > limit);
    }
}

// ---------------------------------------------------------------------
// Torn-read freedom: readers race a depositor on the raw store.
// ---------------------------------------------------------------------

/// Readers hammer every shard while a depositor publishes entries one at
/// a time. Every observed snapshot must be internally consistent —
/// entries sorted by class, the class map pointing at the right
/// ordinals, the trigram index sized to the entry array — and per-shard
/// generations must never run backwards. A torn publish (entries from
/// one generation, index from another) would trip the ordinal checks;
/// clone-mutate-swap makes that impossible by construction, and this
/// test is the regression net around that construction.
#[test]
fn concurrent_readers_never_observe_a_torn_snapshot() {
    const SHARDS: usize = 8;
    const DEPOSITS: usize = 2_000;
    let store = Arc::new(ShardedStore::new(SHARDS));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut last_gen = [0u64; SHARDS];
                let mut checks = 0usize;
                while !done.load(Ordering::Acquire) || checks == 0 {
                    for (shard, last) in last_gen.iter_mut().enumerate() {
                        let snap = store.snapshot(shard);
                        assert!(
                            snap.generation >= *last,
                            "generation ran backwards: {} -> {}",
                            last,
                            snap.generation
                        );
                        *last = snap.generation;
                        let entries = snap.entries();
                        assert!(
                            entries
                                .windows(2)
                                .all(|w| w[0].entry.class < w[1].entry.class),
                            "published entries must be strictly sorted"
                        );
                        for (ordinal, stored) in entries.iter().enumerate() {
                            let found = snap
                                .get(&stored.entry.class)
                                .expect("every published entry is reachable by class");
                            assert_eq!(found.entry.class, stored.entry.class);
                            assert_eq!(
                                snap.by_ordinal(ordinal as u32).entry.class,
                                stored.entry.class,
                                "class map and entry array must agree"
                            );
                        }
                        checks += 1;
                    }
                }
            });
        }

        // The depositor: one publish per entry, maximum snapshot churn.
        for i in 0..DEPOSITS {
            let stored = StoredEntry::new(entry(&format!("pkg{}.Type{i:05}", i % 7), "racing"));
            match store.try_insert(stored, false) {
                WriteOutcome::Done(r) => r.unwrap(),
                WriteOutcome::Retired => panic!("nobody retires this store"),
            }
        }
        done.store(true, Ordering::Release);
    });

    assert_eq!(store.len(), DEPOSITS);
    // The final generations account for exactly one publish per deposit.
    assert_eq!(store.generations().iter().sum::<u64>(), DEPOSITS as u64);
}
