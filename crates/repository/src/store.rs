//! Component entries and instantiation factories.

use crate::catalog::Catalog;
use crate::shard::{BatchOutcome, ShardedStore, StoredEntry, WriteOutcome, DEFAULT_SHARDS};
use cca_core::{CcaError, Component};
use cca_data::TypeMap;
use cca_sidl::SidlError;
use parking_lot::RwLock;
use std::sync::Arc;

/// A port a component promises to provide or use, as advertised in the
/// repository (instance name + SIDL interface type).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSpec {
    /// Port instance name.
    pub name: String,
    /// SIDL interface type.
    pub port_type: String,
}

impl PortSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, port_type: impl Into<String>) -> Self {
        PortSpec {
            name: name.into(),
            port_type: port_type.into(),
        }
    }
}

/// Instantiates fresh component instances (the repository's handle on a
/// component's implementation).
pub trait ComponentFactory: Send + Sync {
    /// Creates a new, un-wired component instance.
    fn create(&self) -> Arc<dyn Component>;
}

impl<F> ComponentFactory for F
where
    F: Fn() -> Arc<dyn Component> + Send + Sync,
{
    fn create(&self) -> Arc<dyn Component> {
        self()
    }
}

/// One component registration.
#[derive(Clone)]
pub struct ComponentEntry {
    /// Fully qualified SIDL class name.
    pub class: String,
    /// Human-readable description.
    pub description: String,
    /// Ports the component provides.
    pub provides: Vec<PortSpec>,
    /// Ports the component uses.
    pub uses: Vec<PortSpec>,
    /// Arbitrary properties (e.g. required framework "flavor" of §4).
    pub properties: TypeMap,
    /// The instantiation factory.
    pub factory: Arc<dyn ComponentFactory>,
}

impl std::fmt::Debug for ComponentEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentEntry")
            .field("class", &self.class)
            .field("provides", &self.provides)
            .field("uses", &self.uses)
            .finish()
    }
}

/// The repository: a SIDL catalog plus a sharded table of instantiable
/// components (see [`crate::shard`] for the concurrency story — readers
/// work on frozen per-shard snapshots, writers clone-mutate-swap).
pub struct Repository {
    catalog: RwLock<Catalog>,
    /// The current store. Swapped wholesale only by [`rebalance`]
    /// (Repository::rebalance); everyone else clones the `Arc` and goes.
    store: RwLock<Arc<ShardedStore>>,
}

impl Default for Repository {
    fn default() -> Self {
        Repository {
            catalog: RwLock::new(Catalog::default()),
            store: RwLock::new(Arc::new(ShardedStore::new(DEFAULT_SHARDS))),
        }
    }
}

impl Repository {
    /// Creates an empty repository with the default shard count.
    pub fn new() -> Arc<Self> {
        Arc::new(Repository::default())
    }

    /// Creates an empty repository with an explicit shard count (tests
    /// and benchmarks; `shards == 1` degenerates to the flat store).
    pub fn with_shards(shards: usize) -> Arc<Self> {
        Arc::new(Repository {
            catalog: RwLock::new(Catalog::default()),
            store: RwLock::new(Arc::new(ShardedStore::new(shards))),
        })
    }

    /// The current store handle (shared with in-flight readers).
    pub(crate) fn sharded(&self) -> Arc<ShardedStore> {
        Arc::clone(&self.store.read())
    }

    /// Deposits SIDL source into the catalog.
    pub fn deposit_sidl(&self, source: &str) -> Result<Vec<String>, SidlError> {
        self.catalog.write().deposit(source)
    }

    /// Read access to the catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.catalog.read())
    }

    /// Registers a component entry. The class should already be described
    /// in the catalog (enforced when it is; unknown classes are accepted
    /// with a warning-free pass to allow non-SIDL components, but their
    /// port types cannot be subtype-checked).
    pub fn register_component(&self, entry: ComponentEntry) -> Result<(), CcaError> {
        self.insert(StoredEntry::new(entry), false)
    }

    /// Re-registers (upserts) a component entry: a re-deposit of an
    /// already-known class replaces it in place instead of erroring.
    pub fn reregister_component(&self, entry: ComponentEntry) {
        self.insert(StoredEntry::new(entry), true)
            .expect("overwrite insert cannot reject");
    }

    fn insert(&self, stored: StoredEntry, overwrite: bool) -> Result<(), CcaError> {
        // The retry loop only spins when a rebalance retired the store
        // between our handle clone and the shard lock — rare, bounded by
        // the number of concurrent rebalances.
        loop {
            match self.sharded().try_insert(stored.clone(), overwrite) {
                WriteOutcome::Done(r) => {
                    if r.is_ok() {
                        cca_obs::repo().record_deposits(1);
                    }
                    return r;
                }
                WriteOutcome::Retired => continue,
            }
        }
    }

    /// Registers a whole batch in one publication per shard,
    /// all-or-nothing: any duplicate (against the store or within the
    /// batch) rejects the lot and publishes nothing. This is the scale
    /// path — a million types cost one snapshot rebuild per shard, not
    /// one per entry.
    pub fn register_components(&self, batch: Vec<ComponentEntry>) -> Result<usize, CcaError> {
        let mut stored: Vec<StoredEntry> = batch.into_iter().map(StoredEntry::new).collect();
        loop {
            match self.sharded().try_insert_batch(stored) {
                BatchOutcome::Done(r) => {
                    if let Ok(n) = r {
                        cca_obs::repo().record_deposits(n as u64);
                    }
                    return r;
                }
                BatchOutcome::Retired(back) => stored = back,
            }
        }
    }

    /// Removes a component entry.
    pub fn unregister_component(&self, class: &str) -> Result<ComponentEntry, CcaError> {
        loop {
            match self.sharded().try_remove(class) {
                WriteOutcome::Done(r) => return r,
                WriteOutcome::Retired => continue,
            }
        }
    }

    /// The entry for a class (exact lookup: one hash, one frozen shard).
    pub fn entry(&self, class: &str) -> Result<ComponentEntry, CcaError> {
        match self.sharded().get(class) {
            Some(stored) => {
                cca_obs::repo().record_exact_lookup();
                Ok(stored.entry)
            }
            None => {
                cca_obs::repo().record_exact_miss();
                Err(CcaError::ComponentNotFound(class.to_string()))
            }
        }
    }

    /// Instantiates a fresh component of the given class.
    pub fn create(&self, class: &str) -> Result<Arc<dyn Component>, CcaError> {
        Ok(self.entry(class)?.factory.create())
    }

    /// All registered entries, sorted by class name.
    pub fn entries(&self) -> Vec<ComponentEntry> {
        let mut all: Vec<ComponentEntry> = self
            .sharded()
            .snapshots()
            .iter()
            .flat_map(|s| s.entries().iter().map(|e| e.entry.clone()))
            .collect();
        all.sort_by(|a, b| a.class.cmp(&b.class));
        all
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.sharded().len()
    }

    /// True if no components are registered.
    pub fn is_empty(&self) -> bool {
        self.sharded().is_empty()
    }

    /// Number of shards in the current store.
    pub fn shard_count(&self) -> usize {
        self.sharded().shard_count()
    }

    /// Per-shard publication generations of the current store.
    pub fn generations(&self) -> Vec<u64> {
        self.sharded().generations()
    }

    /// Redistributes every entry across `shards` shards. The old store is
    /// retired under all its shard locks, so an insert racing the swap
    /// either lands before collection or retries against the new store —
    /// never into the void. In-flight readers finish against their frozen
    /// snapshots of the old store.
    pub fn rebalance(&self, shards: usize) {
        let mut cell = self.store.write();
        let entries = cell.retire_and_collect();
        *cell = Arc::new(ShardedStore::with_entries(shards, entries));
        cca_obs::repo().record_rebalance();
    }

    /// Subtype check backed by the catalog (reflexive, false for unknowns).
    pub fn is_subtype_of(&self, sub: &str, sup: &str) -> bool {
        self.catalog.read().is_subtype_of(sub, sup)
    }

    /// Writes every deposited package as `<package>.sidl` under `dir`
    /// (creating it), returning the written file names. This is the
    /// on-disk form of Figure 2's repository: interface definitions other
    /// teams can retrieve and compile against.
    pub fn export_catalog(&self, dir: &std::path::Path) -> std::io::Result<Vec<String>> {
        std::fs::create_dir_all(dir)?;
        let catalog = self.catalog.read();
        let mut written = Vec::new();
        for pkg in catalog.packages() {
            let filename = format!("{pkg}.sidl");
            std::fs::write(
                dir.join(&filename),
                catalog.source_of(pkg).expect("listed package has source"),
            )?;
            written.push(filename);
        }
        Ok(written)
    }

    /// Deposits every `*.sidl` file found under `dir` (sorted by file
    /// name, so cross-file references must respect lexicographic order or
    /// live in one file). Returns all newly registered type names.
    pub fn import_catalog(&self, dir: &std::path::Path) -> Result<Vec<String>, CcaError> {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| CcaError::Framework(format!("reading {}: {e}", dir.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "sidl"))
            .collect();
        files.sort();
        let mut types = Vec::new();
        for path in files {
            let source = std::fs::read_to_string(&path)
                .map_err(|e| CcaError::Framework(format!("reading {}: {e}", path.display())))?;
            types.extend(self.deposit_sidl(&source)?);
        }
        Ok(types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_core::CcaServices;

    struct Nop;
    impl Component for Nop {
        fn component_type(&self) -> &str {
            "demo.Nop"
        }
        fn set_services(&self, _s: Arc<CcaServices>) -> Result<(), CcaError> {
            Ok(())
        }
    }

    fn nop_entry(class: &str) -> ComponentEntry {
        ComponentEntry {
            class: class.into(),
            description: "does nothing".into(),
            provides: vec![PortSpec::new("go", "cca.ports.GoPort")],
            uses: vec![],
            properties: TypeMap::new(),
            factory: Arc::new(|| Arc::new(Nop) as Arc<dyn Component>),
        }
    }

    #[test]
    fn register_create_lifecycle() {
        let repo = Repository::new();
        assert!(repo.is_empty());
        repo.register_component(nop_entry("demo.Nop")).unwrap();
        assert_eq!(repo.len(), 1);
        let c = repo.create("demo.Nop").unwrap();
        assert_eq!(c.component_type(), "demo.Nop");
        // Each create produces a fresh instance.
        let c2 = repo.create("demo.Nop").unwrap();
        assert!(!Arc::ptr_eq(&c, &c2));
        assert!(matches!(
            repo.create("demo.Missing"),
            Err(CcaError::ComponentNotFound(_))
        ));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let repo = Repository::new();
        repo.register_component(nop_entry("demo.Nop")).unwrap();
        assert!(matches!(
            repo.register_component(nop_entry("demo.Nop")),
            Err(CcaError::ComponentAlreadyExists(_))
        ));
    }

    #[test]
    fn unregister() {
        let repo = Repository::new();
        repo.register_component(nop_entry("demo.Nop")).unwrap();
        let e = repo.unregister_component("demo.Nop").unwrap();
        assert_eq!(e.class, "demo.Nop");
        assert!(repo.unregister_component("demo.Nop").is_err());
    }

    #[test]
    fn batch_registration_and_upsert() {
        let repo = Repository::with_shards(4);
        let n = repo
            .register_components((0..100).map(|i| nop_entry(&format!("p{i}.C"))).collect())
            .unwrap();
        assert_eq!(n, 100);
        assert_eq!(repo.len(), 100);
        // A batch duplicating an existing class rejects whole.
        assert!(repo
            .register_components(vec![nop_entry("q.New"), nop_entry("p7.C")])
            .is_err());
        assert_eq!(repo.len(), 100);
        assert!(repo.entry("q.New").is_err());
        // Re-deposit replaces in place.
        let mut e = nop_entry("p7.C");
        e.description = "second deposit".into();
        repo.reregister_component(e);
        assert_eq!(repo.entry("p7.C").unwrap().description, "second deposit");
        assert_eq!(repo.len(), 100);
    }

    #[test]
    fn rebalance_preserves_entries_and_changes_layout() {
        let repo = Repository::with_shards(2);
        repo.register_components((0..50).map(|i| nop_entry(&format!("p{i}.C"))).collect())
            .unwrap();
        assert_eq!(repo.shard_count(), 2);
        repo.rebalance(8);
        assert_eq!(repo.shard_count(), 8);
        assert_eq!(repo.len(), 50);
        for i in 0..50 {
            assert!(repo.entry(&format!("p{i}.C")).is_ok());
        }
        // Entries stay sorted and complete after the reshard.
        let classes: Vec<String> = repo.entries().iter().map(|e| e.class.clone()).collect();
        let mut sorted = classes.clone();
        sorted.sort();
        assert_eq!(classes, sorted);
        assert_eq!(classes.len(), 50);
        // Writes keep working against the new store.
        repo.register_component(nop_entry("after.Rebalance"))
            .unwrap();
        assert_eq!(repo.len(), 51);
    }

    #[test]
    fn generations_expose_publication_counts() {
        let repo = Repository::with_shards(1);
        assert_eq!(repo.generations(), vec![0]);
        repo.register_component(nop_entry("a.A")).unwrap();
        repo.register_component(nop_entry("b.B")).unwrap();
        assert_eq!(repo.generations(), vec![2]);
    }

    #[test]
    fn sidl_and_subtyping_integration() {
        let repo = Repository::new();
        repo.deposit_sidl(
            "package demo { interface Port { void f(); } class Nop implements-all Port { } }",
        )
        .unwrap();
        assert!(repo.is_subtype_of("demo.Nop", "demo.Port"));
        assert!(!repo.is_subtype_of("demo.Port", "demo.Nop"));
        repo.with_catalog(|c| {
            assert!(c.source_of("demo").unwrap().contains("class Nop"));
        });
    }

    #[test]
    fn entry_metadata_preserved() {
        let repo = Repository::new();
        let mut e = nop_entry("demo.Nop");
        e.properties.put_string("flavor", "in-process".into());
        repo.register_component(e).unwrap();
        let got = repo.entry("demo.Nop").unwrap();
        assert_eq!(got.provides[0].port_type, "cca.ports.GoPort");
        assert_eq!(
            got.properties.get_string("flavor", String::new()),
            "in-process"
        );
        assert!(format!("{got:?}").contains("demo.Nop"));
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cca_repo_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_import_round_trip() {
        let src_repo = Repository::new();
        src_repo
            .deposit_sidl("package a { interface X { void f(); } }")
            .unwrap();
        src_repo
            .deposit_sidl("package b { class Y implements-all a.X { } }")
            .unwrap_err(); // cross-deposit reference: must fail alone
        src_repo
            .deposit_sidl("package b { interface Z { void g(); } class Y implements-all Z { } }")
            .unwrap();
        let dir = temp_dir("roundtrip");
        let written = src_repo.export_catalog(&dir).unwrap();
        assert_eq!(written, vec!["a.sidl".to_string(), "b.sidl".to_string()]);

        let dst_repo = Repository::new();
        let types = dst_repo.import_catalog(&dir).unwrap();
        assert!(types.contains(&"a.X".to_string()));
        assert!(types.contains(&"b.Y".to_string()));
        assert!(dst_repo.is_subtype_of("b.Y", "b.Z"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn import_missing_directory_errors() {
        let repo = Repository::new();
        assert!(repo
            .import_catalog(std::path::Path::new("/nonexistent/cca_repo"))
            .is_err());
    }

    #[test]
    fn import_skips_non_sidl_files() {
        let dir = temp_dir("skip");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), "not sidl").unwrap();
        std::fs::write(
            dir.join("p.sidl"),
            "package p { interface I { void f(); } }",
        )
        .unwrap();
        let repo = Repository::new();
        let types = repo.import_catalog(&dir).unwrap();
        assert_eq!(types, vec!["p.I".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
