//! The SIDL type catalog: deposit, merge, retrieve.

use cca_sidl::ast::QName;
use cca_sidl::fmt::print_packages;
use cca_sidl::{CheckedModel, Reflection, SidlError};
use std::collections::BTreeMap;

/// A merged catalog of every SIDL package deposited so far.
///
/// Each deposit is parsed and semantically checked *against itself*; the
/// catalog then merges its reflection data and keeps the canonical
/// pretty-printed source so tools can retrieve interface definitions
/// ("component descriptions using SIDL can be used by repositories and by
/// a proxy generator", §4).
#[derive(Default)]
pub struct Catalog {
    models: Vec<CheckedModel>,
    reflection: Reflection,
    /// Canonical source per package name.
    sources: BTreeMap<String, String>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposits SIDL source: parses, checks, merges. Returns the fully
    /// qualified names of the newly registered types. Duplicate package
    /// deposits are rejected.
    pub fn deposit(&mut self, source: &str) -> Result<Vec<String>, SidlError> {
        let packages = cca_sidl::parse(source)?;
        for p in &packages {
            let name = p.name.to_string();
            if self.sources.contains_key(&name) {
                return Err(SidlError::sema(
                    p.span,
                    format!("package '{name}' is already deposited"),
                ));
            }
        }
        let model = cca_sidl::check(&packages)?;
        let reflection = Reflection::from_model(&model);
        let mut new_types: Vec<String> = reflection.types().map(|t| t.qname.clone()).collect();
        new_types.sort();
        self.reflection.merge(&reflection);
        for p in &packages {
            self.sources
                .insert(p.name.to_string(), print_packages(std::slice::from_ref(p)));
        }
        self.models.push(model);
        Ok(new_types)
    }

    /// Merged reflection over everything deposited.
    pub fn reflection(&self) -> &Reflection {
        &self.reflection
    }

    /// The canonical SIDL source of a package, if deposited.
    pub fn source_of(&self, package: &str) -> Option<&str> {
        self.sources.get(package).map(String::as_str)
    }

    /// Deposited package names, sorted.
    pub fn packages(&self) -> Vec<&str> {
        self.sources.keys().map(String::as_str).collect()
    }

    /// Subtype query across all deposits (reflexive).
    pub fn is_subtype_of(&self, sub: &str, sup: &str) -> bool {
        self.reflection.is_subtype_of(sub, sup)
    }

    /// All classes implementing `interface`, across all deposits.
    pub fn implementors(&self, interface: &str) -> Vec<String> {
        let q = QName::parse(interface);
        let mut out: Vec<String> = self
            .models
            .iter()
            .flat_map(|m| m.implementors(&q))
            .map(QName::to_string)
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ESI: &str = "
        package esi {
            interface Solver { void solve(); }
            class Cg implements-all Solver { }
        }
    ";
    const APP: &str = "
        package app {
            interface Driver extends esi.Solver { void go(); }
        }
    ";

    #[test]
    fn deposit_and_query() {
        let mut cat = Catalog::new();
        let types = cat.deposit(ESI).unwrap();
        assert_eq!(types, vec!["esi.Cg".to_string(), "esi.Solver".to_string()]);
        assert!(cat.reflection().type_info("esi.Cg").is_some());
        assert_eq!(cat.packages(), vec!["esi"]);
        assert!(cat.is_subtype_of("esi.Cg", "esi.Solver"));
        assert_eq!(cat.implementors("esi.Solver"), vec!["esi.Cg".to_string()]);
    }

    #[test]
    fn cross_package_deposit_requires_self_containment() {
        let mut cat = Catalog::new();
        // app alone references esi.Solver, which is unknown within the
        // deposit — rejected (deposits are checked units, as a repository
        // must not accept dangling references).
        assert!(cat.deposit(APP).is_err());
        // Depositing both packages together works.
        let combined = format!("{ESI}\n{APP}");
        let types = cat.deposit(&combined).unwrap();
        assert!(types.contains(&"app.Driver".to_string()));
        assert!(cat.is_subtype_of("app.Driver", "esi.Solver"));
    }

    #[test]
    fn duplicate_package_rejected() {
        let mut cat = Catalog::new();
        cat.deposit(ESI).unwrap();
        let err = cat.deposit(ESI).unwrap_err();
        assert!(err.to_string().contains("already deposited"));
    }

    #[test]
    fn canonical_source_retrievable_and_reparsable() {
        let mut cat = Catalog::new();
        cat.deposit(ESI).unwrap();
        let src = cat.source_of("esi").unwrap();
        assert!(src.contains("interface Solver"));
        // The stored canonical form is valid SIDL.
        assert!(cca_sidl::compile(src).is_ok());
        assert!(cat.source_of("nope").is_none());
    }

    #[test]
    fn bad_sidl_rejected_and_catalog_unchanged() {
        let mut cat = Catalog::new();
        assert!(cat.deposit("package broken { interface X").is_err());
        assert!(cat.packages().is_empty());
        assert!(cat.reflection().is_empty());
    }
}
