#![warn(missing_docs)]
//! # cca-repository — the CCA Repository API
//!
//! Figure 2 of the paper: component definitions written in SIDL "can be
//! deposited in and retrieved from a repository by using a CCA Repository
//! API. The repository API defines the functionality necessary to search a
//! framework repository for components as well as to manipulate components
//! within the repository."
//!
//! * [`catalog`] — the SIDL side: deposit sources, get back a merged,
//!   queryable type catalog (checked models + reflection + canonical
//!   sources for retrieval).
//! * [`store`] — the component side: register component entries (class
//!   name, port specs, a factory able to instantiate the component) and
//!   create instances by class name.
//! * [`query`] — the search API: find components by provided/used port
//!   type (honouring SIDL subtyping), package, or free-text name — plus
//!   trigram-accelerated fuzzy discovery with scored, capped, paged
//!   results ([`FuzzyQuery`]/[`QueryCursor`]).
//! * [`shard`] — the scale layer: entries hashed across N shards, each
//!   an immutable Arc snapshot behind a generation counter (the PR-1
//!   clone-mutate-swap idiom), so reads are lock-free at millions of
//!   registered types.
//! * [`trigram`] — the inverted substring index and the pure-function
//!   match scoring that keeps rankings stable under resharding.

pub mod catalog;
pub mod query;
pub mod shard;
pub mod store;
pub mod trigram;

pub use catalog::Catalog;
pub use query::{FuzzyHit, FuzzyQuery, Query, QueryCursor, QueryPage};
pub use shard::{
    BatchOutcome, ShardSnapshot, ShardedStore, StoredEntry, WriteOutcome, DEFAULT_SHARDS,
};
pub use store::{ComponentEntry, ComponentFactory, PortSpec, Repository};
pub use trigram::{score_match, trigrams_of, Trigram, TrigramIndex};
