#![warn(missing_docs)]
//! # cca-repository — the CCA Repository API
//!
//! Figure 2 of the paper: component definitions written in SIDL "can be
//! deposited in and retrieved from a repository by using a CCA Repository
//! API. The repository API defines the functionality necessary to search a
//! framework repository for components as well as to manipulate components
//! within the repository."
//!
//! * [`catalog`] — the SIDL side: deposit sources, get back a merged,
//!   queryable type catalog (checked models + reflection + canonical
//!   sources for retrieval).
//! * [`store`] — the component side: register component entries (class
//!   name, port specs, a factory able to instantiate the component) and
//!   create instances by class name.
//! * [`query`] — the search API: find components by provided/used port
//!   type (honouring SIDL subtyping), package, or free-text name.

pub mod catalog;
pub mod query;
pub mod store;

pub use catalog::Catalog;
pub use query::Query;
pub use store::{ComponentEntry, ComponentFactory, PortSpec, Repository};
