//! Trigram index: fuzzy/substring discovery over component and port
//! names at catalog scale.
//!
//! A linear scan answers "which of these names contains `krylov`" in
//! O(catalog), which is fine at hundreds of entries and hopeless at a
//! million. The index inverts the problem: every entry's *search text*
//! (lowercased class name, port names, port types, description — the
//! normalize-once form, see [`crate::shard`]) is decomposed into 3-byte
//! windows, and each distinct window maps to the sorted list of entry
//! ordinals containing it. A query then intersects the posting lists of
//! the needle's trigrams — starting from the rarest, so a selective
//! needle touches a few hundred ordinals, not the catalog — and only the
//! survivors are verified by a real substring check.
//!
//! The index is **immutable**: it is built once per shard snapshot and
//! shared by every reader of that snapshot (the clone-mutate-swap
//! discipline of PR 1). Scoring lives here too so that ranking is a pure
//! function of `(entry text, needle)` — the property that makes result
//! order independent of shard count and page boundaries.

/// One trigram, packed: three bytes of lowercased text in the low 24
/// bits. Packing keeps the map key `Copy` and the postings table compact.
pub type Trigram = u32;

/// Packs a 3-byte window. The input is already lowercased.
#[inline]
fn pack(window: &[u8]) -> Trigram {
    (window[0] as u32) << 16 | (window[1] as u32) << 8 | window[2] as u32
}

/// Emits every trigram of `text` (which must already be lowercased) into
/// `out`, deduplicated and sorted. Texts shorter than 3 bytes emit
/// nothing — they are only findable by the scan fallback.
pub fn trigrams_of(text: &str, out: &mut Vec<Trigram>) {
    out.clear();
    let bytes = text.as_bytes();
    if bytes.len() < 3 {
        return;
    }
    for w in bytes.windows(3) {
        out.push(pack(w));
    }
    out.sort_unstable();
    out.dedup();
}

/// The immutable postings table of one shard snapshot: trigram → sorted
/// entry ordinals. Stored as two parallel sorted arrays (keys + ranges
/// into one flat ordinal pool) so a million-entry shard costs one
/// allocation per array, not one per trigram.
#[derive(Debug, Default)]
pub struct TrigramIndex {
    /// Distinct trigrams, sorted ascending.
    keys: Vec<Trigram>,
    /// `spans[i]` is the half-open range of `postings` holding the
    /// ordinals for `keys[i]`.
    spans: Vec<(u32, u32)>,
    /// Flat, per-key-sorted ordinal pool.
    postings: Vec<u32>,
}

impl TrigramIndex {
    /// Builds the index over `texts[ordinal]` (each already lowercased).
    pub fn build(texts: &[impl AsRef<str>]) -> Self {
        // Pass 1: count occurrences per trigram to size the pool exactly.
        let mut pairs: Vec<(Trigram, u32)> = Vec::new();
        let mut scratch = Vec::new();
        for (ordinal, text) in texts.iter().enumerate() {
            trigrams_of(text.as_ref(), &mut scratch);
            for &t in &scratch {
                pairs.push((t, ordinal as u32));
            }
        }
        // Trigram-major, ordinal-minor: each key's posting run comes out
        // sorted, and runs are contiguous.
        pairs.sort_unstable();
        let mut keys = Vec::new();
        let mut spans = Vec::new();
        let mut postings = Vec::with_capacity(pairs.len());
        for (t, ordinal) in pairs {
            if keys.last() != Some(&t) {
                if let Some(last) = spans.last_mut() {
                    let l: &mut (u32, u32) = last;
                    l.1 = postings.len() as u32;
                }
                keys.push(t);
                spans.push((postings.len() as u32, postings.len() as u32));
            }
            postings.push(ordinal);
        }
        if let Some(last) = spans.last_mut() {
            last.1 = postings.len() as u32;
        }
        TrigramIndex {
            keys,
            spans,
            postings,
        }
    }

    /// The posting list of one trigram (sorted ordinals), empty if absent.
    pub fn postings(&self, t: Trigram) -> &[u32] {
        match self.keys.binary_search(&t) {
            Ok(i) => {
                let (start, end) = self.spans[i];
                &self.postings[start as usize..end as usize]
            }
            Err(_) => &[],
        }
    }

    /// Ordinals whose text contains **every** trigram of `needle`
    /// (candidates only — the caller must still verify the substring, as
    /// trigram containment is necessary but not sufficient). Returns
    /// `None` when the needle is too short to have trigrams, in which
    /// case the caller falls back to a scan.
    pub fn candidates(&self, lowered_needle: &str, out: &mut Vec<u32>) -> Option<()> {
        let mut needle_tris = Vec::new();
        trigrams_of(lowered_needle, &mut needle_tris);
        if needle_tris.is_empty() {
            return None;
        }
        // Rarest-first intersection: sorting the lists by length means the
        // working set can only shrink as fast as possible.
        let mut lists: Vec<&[u32]> = needle_tris.iter().map(|&t| self.postings(t)).collect();
        lists.sort_unstable_by_key(|l| l.len());
        out.clear();
        if lists[0].is_empty() {
            return Some(());
        }
        out.extend_from_slice(lists[0]);
        for list in &lists[1..] {
            if out.is_empty() {
                break;
            }
            // Galloping would win on skewed lists; at catalog trigram
            // densities the simple merge is already far off the hot path.
            let mut kept = 0;
            let mut i = 0;
            for k in 0..out.len() {
                let v = out[k];
                while i < list.len() && list[i] < v {
                    i += 1;
                }
                if i < list.len() && list[i] == v {
                    out[kept] = v;
                    kept += 1;
                }
            }
            out.truncate(kept);
        }
        Some(())
    }

    /// Number of distinct trigrams.
    pub fn distinct_trigrams(&self) -> usize {
        self.keys.len()
    }

    /// Total posting entries (memory proxy).
    pub fn posting_entries(&self) -> usize {
        self.postings.len()
    }
}

// ---------------------------------------------------------------------
// Scoring: a pure function of (entry text, needle).
// ---------------------------------------------------------------------

/// Where the needle was found, in priority order.
const CLASS_EXACT: u32 = 1 << 20;
const CLASS_PREFIX: u32 = 1 << 19;
const CLASS_BOUNDARY: u32 = 1 << 18;
const CLASS_SUBSTRING: u32 = 1 << 17;
const AUX_SUBSTRING: u32 = 1 << 16;

/// Scores a match of `lowered_needle` against an entry whose lowercased
/// class name is `class` and whose remaining searchable text (port
/// names/types, description) is `aux`. Returns `None` when the needle
/// occurs in neither. Higher is better.
///
/// The score is deterministic and depends only on the two texts and the
/// needle — never on shard layout, insertion order, or page position —
/// so rankings are stable under resharding and pagination (the
/// properties `shard_proptest.rs` pins). Ties are broken by class name
/// at sort time.
pub fn score_match(class: &str, aux: &str, lowered_needle: &str) -> Option<u32> {
    debug_assert!(!lowered_needle.is_empty());
    if let Some(pos) = class.find(lowered_needle) {
        let mut score = CLASS_SUBSTRING;
        if class.len() == lowered_needle.len() {
            score |= CLASS_EXACT;
        }
        if pos == 0 {
            score |= CLASS_PREFIX;
        } else if class.as_bytes()[pos - 1] == b'.' {
            // Package-boundary hit: "solver" inside "esi.solvercg" ranks
            // above the same needle buried mid-word.
            score |= CLASS_BOUNDARY;
        }
        // Earlier and tighter matches rank higher; both penalties are
        // bounded so they never cross a category boundary.
        score += 30_000 - (pos as u32).min(10_000);
        score -= (class.len() as u32).min(10_000);
        Some(score)
    } else if let Some(pos) = aux.find(lowered_needle) {
        let mut score = AUX_SUBSTRING;
        score += 30_000 - (pos as u32).min(10_000);
        score -= (aux.len() as u32).min(10_000);
        Some(score)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(index: &TrigramIndex, needle: &str) -> Vec<u32> {
        let mut out = Vec::new();
        index.candidates(needle, &mut out).expect("needle >= 3");
        out
    }

    #[test]
    fn build_and_intersect() {
        let texts = ["esi.cg solver", "esi.ilu precond", "viz.plot render"];
        let index = TrigramIndex::build(&texts);
        assert_eq!(find(&index, "esi"), vec![0, 1]);
        assert_eq!(find(&index, "solver"), vec![0]);
        assert_eq!(find(&index, "render"), vec![2]);
        assert!(find(&index, "zzz").is_empty());
        assert!(index.distinct_trigrams() > 0);
        assert!(index.posting_entries() >= index.distinct_trigrams());
    }

    #[test]
    fn short_needles_decline() {
        let index = TrigramIndex::build(&["abc"]);
        let mut out = Vec::new();
        assert!(index.candidates("ab", &mut out).is_none());
        assert!(index.candidates("", &mut out).is_none());
        assert!(index.candidates("abc", &mut out).is_some());
    }

    #[test]
    fn candidates_superset_of_substring_matches() {
        let texts = ["aabbaabb", "abcabc", "xxabcxx", "aaxbb"];
        let index = TrigramIndex::build(&texts);
        let c = find(&index, "abc");
        // Every true substring match is a candidate.
        for (i, t) in texts.iter().enumerate() {
            if t.contains("abc") {
                assert!(c.contains(&(i as u32)), "missing {i}");
            }
        }
    }

    #[test]
    fn scoring_prefers_exact_then_prefix_then_boundary() {
        let n = "solver";
        let exact = score_match("solver", "", n).unwrap();
        let prefix = score_match("solvercg", "", n).unwrap();
        let boundary = score_match("esi.solvercg", "", n).unwrap();
        let sub = score_match("mysolvercg", "", n).unwrap();
        let aux = score_match("esi.cg", "solver op", n).unwrap();
        assert!(exact > prefix, "{exact} {prefix}");
        assert!(prefix > boundary, "{prefix} {boundary}");
        assert!(boundary > sub, "{boundary} {sub}");
        assert!(sub > aux, "{sub} {aux}");
        assert!(score_match("esi.cg", "precond", n).is_none());
    }

    #[test]
    fn scoring_prefers_tighter_names() {
        let n = "cg";
        let tight = score_match("esi.cg", "", n).unwrap();
        let loose = score_match("esi.cgacceleratedgradientfactory", "", n).unwrap();
        assert!(tight > loose);
    }

    #[test]
    fn empty_index_is_fine() {
        let index = TrigramIndex::build(&[] as &[&str]);
        assert!(find(&index, "abc").is_empty());
        assert_eq!(index.distinct_trigrams(), 0);
    }
}
