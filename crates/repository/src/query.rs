//! Searching the repository — "the functionality necessary to search a
//! framework repository for components" (§4).
//!
//! Two query surfaces share the sharded store's frozen snapshots:
//!
//! * [`Query`] — the conjunctive filter API from the seed repository
//!   (provides/uses with SIDL subtyping, package prefix, free text). The
//!   free-text leg now compares against the **normalize-once** lowered
//!   text computed at deposit time ([`crate::shard::StoredEntry`]), so a
//!   query no longer allocates a fresh lowered string per entry — and it
//!   searches port names/types too, not just class + description.
//! * [`FuzzyQuery`] — trigram-accelerated substring discovery with
//!   scored, capped, paged results. Scoring is a pure function of
//!   `(entry text, needle)` (see [`crate::trigram::score_match`]) and
//!   ties break on class name, so the ranking is a total order: stable
//!   under shard count changes, and a [`QueryCursor`] can resume it
//!   exactly where the previous page stopped.

use crate::store::{ComponentEntry, Repository};
use crate::trigram::score_match;
use std::collections::BinaryHeap;

/// A conjunctive component query. Empty fields match everything.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Match components providing a port whose type *is-a* this interface.
    pub provides: Option<String>,
    /// Match components using a port of exactly this interface or a
    /// supertype of it (i.e. components that could consume a provider of
    /// the given type).
    pub uses: Option<String>,
    /// Match components whose class name starts with this package prefix.
    pub package: Option<String>,
    /// Match components whose class name, port names/types, or
    /// description contains this text (case-insensitive).
    pub text: Option<String>,
}

impl Query {
    /// Matches everything.
    pub fn any() -> Self {
        Query::default()
    }

    /// Restricts to components providing (a subtype of) `port_type`.
    pub fn providing(mut self, port_type: impl Into<String>) -> Self {
        self.provides = Some(port_type.into());
        self
    }

    /// Restricts to components using `port_type` (or a supertype).
    pub fn using(mut self, port_type: impl Into<String>) -> Self {
        self.uses = Some(port_type.into());
        self
    }

    /// Restricts to a package prefix.
    pub fn in_package(mut self, package: impl Into<String>) -> Self {
        self.package = Some(package.into());
        self
    }

    /// Restricts by free text.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = Some(text.into());
        self
    }
}

/// A resumable position in a fuzzy result ranking: the `(score, class)`
/// of the last hit already delivered. Because the ranking is a total
/// order on exactly that pair, the cursor pins a page boundary that
/// survives resharding and concurrent deposits (new entries that rank
/// before the cursor are simply never revisited).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryCursor {
    /// Score of the last delivered hit.
    pub score: u32,
    /// Class name of the last delivered hit (tie-break key).
    pub class: String,
}

impl QueryCursor {
    /// Wire form, for carrying the cursor through the DiscoveryPort.
    pub fn encode(&self) -> String {
        format!("v1:{}:{}", self.score, self.class)
    }

    /// Parses [`encode`](QueryCursor::encode)'s output; `None` on junk.
    pub fn parse(s: &str) -> Option<Self> {
        let rest = s.strip_prefix("v1:")?;
        let (score, class) = rest.split_once(':')?;
        if class.is_empty() {
            return None;
        }
        Some(QueryCursor {
            score: score.parse().ok()?,
            class: class.to_string(),
        })
    }
}

/// A fuzzy/substring discovery query over class names, port names/types,
/// and descriptions.
#[derive(Debug, Clone)]
pub struct FuzzyQuery {
    /// The (case-insensitive) substring to look for.
    pub needle: String,
    /// Page size cap (clamped to at least 1).
    pub limit: usize,
    /// Resume after this position (a previous page's `next` cursor).
    pub cursor: Option<QueryCursor>,
}

impl FuzzyQuery {
    /// A first-page query with the default page size (25).
    pub fn new(needle: impl Into<String>) -> Self {
        FuzzyQuery {
            needle: needle.into(),
            limit: 25,
            cursor: None,
        }
    }

    /// Sets the page size cap.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Resumes after a cursor from a previous page.
    pub fn after(mut self, cursor: QueryCursor) -> Self {
        self.cursor = Some(cursor);
        self
    }
}

/// One scored fuzzy hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzyHit {
    /// Fully qualified class name of the matching entry.
    pub class: String,
    /// Match score (higher is better; see [`crate::trigram::score_match`]).
    pub score: u32,
}

/// One page of fuzzy results.
#[derive(Debug, Clone, Default)]
pub struct QueryPage {
    /// The hits, best first (score descending, class ascending).
    pub hits: Vec<FuzzyHit>,
    /// Where to resume; `None` when this page exhausted the results.
    pub next: Option<QueryCursor>,
    /// Total matches ranked after the incoming cursor (i.e. how much was
    /// left before this page was cut, this page included).
    pub matched: usize,
}

/// Worst-kept-hit tracked by the selection heap: orders by "badness"
/// (low score first, then *descending* class so the lexicographically
/// greatest class among score-ties is the first to be evicted).
struct WorstFirst {
    score: u32,
    class: String,
}

impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.class == other.class
    }
}
impl Eq for WorstFirst {}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap surfaces the *worst* hit: lowest score wins, class
        // descending among ties (so eviction preserves the class-ascending
        // total order).
        other
            .score
            .cmp(&self.score)
            .then_with(|| self.class.cmp(&other.class))
    }
}

impl Repository {
    /// Runs a query, returning matching entries sorted by class name.
    pub fn search(&self, query: &Query) -> Vec<ComponentEntry> {
        // Normalize the needle once per query; entries were normalized at
        // deposit time, so no per-entry lowering or allocation happens.
        let lowered = query.text.as_ref().map(|t| t.to_lowercase());
        let mut out: Vec<ComponentEntry> = Vec::new();
        for snap in self.sharded().snapshots() {
            for stored in snap.entries() {
                if let Some(t) = lowered.as_deref() {
                    if !stored.lowered_class.contains(t) && !stored.lowered_aux.contains(t) {
                        continue;
                    }
                }
                if self.matches_structured(&stored.entry, query) {
                    out.push(stored.entry.clone());
                }
            }
        }
        out.sort_by(|a, b| a.class.cmp(&b.class));
        out
    }

    fn matches_structured(&self, entry: &ComponentEntry, query: &Query) -> bool {
        if let Some(want) = &query.provides {
            // The provided port type must be the wanted interface or a
            // subtype of it.
            let ok = entry
                .provides
                .iter()
                .any(|p| self.is_subtype_of(&p.port_type, want));
            if !ok {
                return false;
            }
        }
        if let Some(offered) = &query.uses {
            // A component can consume `offered` through a uses port whose
            // declared type is `offered` itself or a supertype of it.
            let ok = entry
                .uses
                .iter()
                .any(|u| self.is_subtype_of(offered, &u.port_type));
            if !ok {
                return false;
            }
        }
        if let Some(pkg) = &query.package {
            if !entry.class.starts_with(pkg.as_str()) {
                return false;
            }
        }
        true
    }

    /// Runs a fuzzy discovery query: trigram candidates per shard (scan
    /// fallback for needles under 3 bytes), substring-verified, scored,
    /// and capped to the best `limit` hits in `(score desc, class asc)`
    /// order. `next` resumes exactly after the last returned hit.
    pub fn fuzzy(&self, query: &FuzzyQuery) -> QueryPage {
        let needle = query.needle.to_lowercase();
        if needle.is_empty() {
            return QueryPage::default();
        }
        let limit = query.limit.max(1);
        let after = query.cursor.as_ref();
        // Min-heap (via the inverted Ord above) of the best `limit` hits
        // seen so far; O(matches · log limit), no full sort of the
        // candidate set.
        let mut heap: BinaryHeap<WorstFirst> = BinaryHeap::with_capacity(limit + 1);
        let mut matched = 0usize;
        let mut candidates: Vec<u32> = Vec::new();
        for snap in self.sharded().snapshots() {
            let mut consider = |class: &str, lowered_class: &str, lowered_aux: &str| {
                let Some(score) = score_match(lowered_class, lowered_aux, &needle) else {
                    return;
                };
                if let Some(c) = after {
                    // Strictly after the cursor in the total order.
                    let after_cursor = score < c.score || (score == c.score && *class > *c.class);
                    if !after_cursor {
                        return;
                    }
                }
                matched += 1;
                if heap.len() < limit {
                    heap.push(WorstFirst {
                        score,
                        class: class.to_string(),
                    });
                    return;
                }
                let worst = heap.peek().expect("heap full");
                if score > worst.score || (score == worst.score && *class < *worst.class) {
                    heap.pop();
                    heap.push(WorstFirst {
                        score,
                        class: class.to_string(),
                    });
                }
            };
            match snap.index().candidates(&needle, &mut candidates) {
                Some(()) => {
                    for &ord in &candidates {
                        let stored = snap.by_ordinal(ord);
                        consider(
                            &stored.entry.class,
                            &stored.lowered_class,
                            &stored.lowered_aux,
                        );
                    }
                }
                // Needle too short for trigrams: scan this shard.
                None => {
                    for stored in snap.entries() {
                        consider(
                            &stored.entry.class,
                            &stored.lowered_class,
                            &stored.lowered_aux,
                        );
                    }
                }
            }
        }
        let mut hits: Vec<FuzzyHit> = heap
            .into_iter()
            .map(|w| FuzzyHit {
                class: w.class,
                score: w.score,
            })
            .collect();
        hits.sort_by(|a, b| b.score.cmp(&a.score).then_with(|| a.class.cmp(&b.class)));
        let next = if matched > hits.len() {
            hits.last().map(|h| QueryCursor {
                score: h.score,
                class: h.class.clone(),
            })
        } else {
            None
        };
        if query.cursor.is_some() {
            cca_obs::repo().record_cursor_page();
        }
        cca_obs::repo().record_fuzzy_query(hits.len() as u64);
        QueryPage {
            hits,
            next,
            matched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PortSpec;
    use cca_core::{CcaError, CcaServices, Component};
    use cca_data::TypeMap;
    use std::sync::Arc;

    struct Nop;
    impl Component for Nop {
        fn component_type(&self) -> &str {
            "x"
        }
        fn set_services(&self, _s: Arc<CcaServices>) -> Result<(), CcaError> {
            Ok(())
        }
    }

    fn entry(
        class: &str,
        desc: &str,
        provides: &[(&str, &str)],
        uses: &[(&str, &str)],
    ) -> ComponentEntry {
        ComponentEntry {
            class: class.into(),
            description: desc.into(),
            provides: provides
                .iter()
                .map(|(n, t)| PortSpec::new(*n, *t))
                .collect(),
            uses: uses.iter().map(|(n, t)| PortSpec::new(*n, *t)).collect(),
            properties: TypeMap::new(),
            factory: Arc::new(|| Arc::new(Nop) as Arc<dyn Component>),
        }
    }

    fn demo_repo() -> Arc<Repository> {
        let repo = Repository::new();
        repo.deposit_sidl(
            "package esi {
                interface Operator { void apply(); }
                interface Solver extends Operator { void solve(); }
                interface Precond extends Operator { void setup(); }
                class Cg implements-all Solver { }
                class Ilu implements-all Precond { }
            }",
        )
        .unwrap();
        repo.register_component(entry(
            "esi.Cg",
            "conjugate gradient Krylov solver",
            &[("solver", "esi.Solver")],
            &[("precond", "esi.Operator")],
        ))
        .unwrap();
        repo.register_component(entry(
            "esi.Ilu",
            "incomplete factorization preconditioner",
            &[("precond", "esi.Precond")],
            &[],
        ))
        .unwrap();
        repo.register_component(entry(
            "viz.Plot",
            "line plots",
            &[("render", "viz.Render")],
            &[("field", "viz.Field")],
        ))
        .unwrap();
        repo
    }

    #[test]
    fn query_any_returns_all() {
        let repo = demo_repo();
        assert_eq!(repo.search(&Query::any()).len(), 3);
    }

    #[test]
    fn providing_honours_subtyping() {
        let repo = demo_repo();
        // Both Cg (Solver) and Ilu (Precond) provide subtypes of Operator.
        let ops = repo.search(&Query::any().providing("esi.Operator"));
        let classes: Vec<&str> = ops.iter().map(|e| e.class.as_str()).collect();
        assert_eq!(classes, vec!["esi.Cg", "esi.Ilu"]);
        // Only Cg provides a Solver.
        let solvers = repo.search(&Query::any().providing("esi.Solver"));
        assert_eq!(solvers.len(), 1);
        assert_eq!(solvers[0].class, "esi.Cg");
    }

    #[test]
    fn using_finds_consumers_for_an_offered_type() {
        let repo = demo_repo();
        // Who could consume a provider of esi.Precond? Cg's uses port is
        // declared as esi.Operator, and Precond is-a Operator.
        let consumers = repo.search(&Query::any().using("esi.Precond"));
        assert_eq!(consumers.len(), 1);
        assert_eq!(consumers[0].class, "esi.Cg");
        // Nothing consumes viz.Render.
        assert!(repo.search(&Query::any().using("viz.Render")).is_empty());
    }

    #[test]
    fn package_and_text_filters() {
        let repo = demo_repo();
        assert_eq!(repo.search(&Query::any().in_package("viz.")).len(), 1);
        let krylov = repo.search(&Query::any().with_text("KRYLOV"));
        assert_eq!(krylov.len(), 1);
        assert_eq!(krylov[0].class, "esi.Cg");
    }

    #[test]
    fn text_filter_reaches_port_names_and_types() {
        let repo = demo_repo();
        // "render" appears only in viz.Plot's port name/type, not in any
        // class or description — the normalized text covers it.
        let hits = repo.search(&Query::any().with_text("RENDER"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].class, "viz.Plot");
    }

    #[test]
    fn filters_conjoin() {
        let repo = demo_repo();
        let none = repo.search(&Query::any().providing("esi.Operator").in_package("viz."));
        assert!(none.is_empty());
        let one = repo.search(
            &Query::any()
                .providing("esi.Operator")
                .with_text("preconditioner"),
        );
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].class, "esi.Ilu");
    }

    #[test]
    fn fuzzy_finds_and_ranks() {
        let repo = demo_repo();
        // Class-name hit beats a description hit.
        let page = repo.fuzzy(&FuzzyQuery::new("CG"));
        assert_eq!(page.hits[0].class, "esi.Cg");
        // Description-only needle still matches (aux text).
        let page = repo.fuzzy(&FuzzyQuery::new("krylov"));
        assert_eq!(page.hits.len(), 1);
        assert_eq!(page.hits[0].class, "esi.Cg");
        assert!(page.next.is_none());
        // Misses return an empty page, no cursor.
        let page = repo.fuzzy(&FuzzyQuery::new("quantum"));
        assert!(page.hits.is_empty());
        assert!(page.next.is_none());
        assert_eq!(page.matched, 0);
        // Empty needle matches nothing rather than everything.
        assert!(repo.fuzzy(&FuzzyQuery::new("")).hits.is_empty());
    }

    #[test]
    fn fuzzy_pages_walk_to_exhaustion_without_gaps_or_dupes() {
        let repo = Repository::with_shards(4);
        for i in 0..57 {
            repo.register_component(entry(&format!("pkg{i:02}.SolverC"), "a solver", &[], &[]))
                .unwrap();
        }
        let full = repo.fuzzy(&FuzzyQuery::new("solver").with_limit(1000));
        assert_eq!(full.hits.len(), 57);
        assert_eq!(full.matched, 57);
        // Walk in pages of 10 and compare against the one-shot ranking.
        let mut walked = Vec::new();
        let mut cursor = None;
        loop {
            let mut q = FuzzyQuery::new("solver").with_limit(10);
            if let Some(c) = cursor {
                q = q.after(c);
            }
            let page = repo.fuzzy(&q);
            walked.extend(page.hits.iter().cloned());
            match page.next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        assert_eq!(walked, full.hits);
    }

    #[test]
    fn cursor_round_trips_through_encoding() {
        let c = QueryCursor {
            score: 123456,
            class: "esi.Cg".to_string(),
        };
        assert_eq!(QueryCursor::parse(&c.encode()), Some(c.clone()));
        assert!(QueryCursor::parse("v1:notanumber:esi.Cg").is_none());
        assert!(QueryCursor::parse("v2:1:esi.Cg").is_none());
        assert!(QueryCursor::parse("v1:1:").is_none());
        assert!(QueryCursor::parse("garbage").is_none());
        // Class names containing ':' survive (split_once keeps the rest).
        let odd = QueryCursor {
            score: 9,
            class: "a:b.C".to_string(),
        };
        assert_eq!(QueryCursor::parse(&odd.encode()), Some(odd));
    }

    #[test]
    fn short_needle_falls_back_to_scan() {
        let repo = demo_repo();
        // Two bytes — below trigram length, answered by the scan path.
        let page = repo.fuzzy(&FuzzyQuery::new("cg"));
        assert!(page.hits.iter().any(|h| h.class == "esi.Cg"));
    }
}
