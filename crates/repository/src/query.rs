//! Searching the repository — "the functionality necessary to search a
//! framework repository for components" (§4).

use crate::store::{ComponentEntry, Repository};

/// A conjunctive component query. Empty fields match everything.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Match components providing a port whose type *is-a* this interface.
    pub provides: Option<String>,
    /// Match components using a port of exactly this interface or a
    /// supertype of it (i.e. components that could consume a provider of
    /// the given type).
    pub uses: Option<String>,
    /// Match components whose class name starts with this package prefix.
    pub package: Option<String>,
    /// Match components whose class name or description contains this text
    /// (case-insensitive).
    pub text: Option<String>,
}

impl Query {
    /// Matches everything.
    pub fn any() -> Self {
        Query::default()
    }

    /// Restricts to components providing (a subtype of) `port_type`.
    pub fn providing(mut self, port_type: impl Into<String>) -> Self {
        self.provides = Some(port_type.into());
        self
    }

    /// Restricts to components using `port_type` (or a supertype).
    pub fn using(mut self, port_type: impl Into<String>) -> Self {
        self.uses = Some(port_type.into());
        self
    }

    /// Restricts to a package prefix.
    pub fn in_package(mut self, package: impl Into<String>) -> Self {
        self.package = Some(package.into());
        self
    }

    /// Restricts by free text.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = Some(text.into());
        self
    }
}

impl Repository {
    /// Runs a query, returning matching entries sorted by class name.
    pub fn search(&self, query: &Query) -> Vec<ComponentEntry> {
        self.entries()
            .into_iter()
            .filter(|e| self.matches(e, query))
            .collect()
    }

    fn matches(&self, entry: &ComponentEntry, query: &Query) -> bool {
        if let Some(want) = &query.provides {
            // The provided port type must be the wanted interface or a
            // subtype of it.
            let ok = entry
                .provides
                .iter()
                .any(|p| self.is_subtype_of(&p.port_type, want));
            if !ok {
                return false;
            }
        }
        if let Some(offered) = &query.uses {
            // A component can consume `offered` through a uses port whose
            // declared type is `offered` itself or a supertype of it.
            let ok = entry
                .uses
                .iter()
                .any(|u| self.is_subtype_of(offered, &u.port_type));
            if !ok {
                return false;
            }
        }
        if let Some(pkg) = &query.package {
            if !entry.class.starts_with(pkg.as_str()) {
                return false;
            }
        }
        if let Some(text) = &query.text {
            let t = text.to_lowercase();
            if !entry.class.to_lowercase().contains(&t)
                && !entry.description.to_lowercase().contains(&t)
            {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PortSpec;
    use cca_core::{CcaError, CcaServices, Component};
    use cca_data::TypeMap;
    use std::sync::Arc;

    struct Nop;
    impl Component for Nop {
        fn component_type(&self) -> &str {
            "x"
        }
        fn set_services(&self, _s: Arc<CcaServices>) -> Result<(), CcaError> {
            Ok(())
        }
    }

    fn entry(
        class: &str,
        desc: &str,
        provides: &[(&str, &str)],
        uses: &[(&str, &str)],
    ) -> ComponentEntry {
        ComponentEntry {
            class: class.into(),
            description: desc.into(),
            provides: provides
                .iter()
                .map(|(n, t)| PortSpec::new(*n, *t))
                .collect(),
            uses: uses.iter().map(|(n, t)| PortSpec::new(*n, *t)).collect(),
            properties: TypeMap::new(),
            factory: Arc::new(|| Arc::new(Nop) as Arc<dyn Component>),
        }
    }

    fn demo_repo() -> Arc<Repository> {
        let repo = Repository::new();
        repo.deposit_sidl(
            "package esi {
                interface Operator { void apply(); }
                interface Solver extends Operator { void solve(); }
                interface Precond extends Operator { void setup(); }
                class Cg implements-all Solver { }
                class Ilu implements-all Precond { }
            }",
        )
        .unwrap();
        repo.register_component(entry(
            "esi.Cg",
            "conjugate gradient Krylov solver",
            &[("solver", "esi.Solver")],
            &[("precond", "esi.Operator")],
        ))
        .unwrap();
        repo.register_component(entry(
            "esi.Ilu",
            "incomplete factorization preconditioner",
            &[("precond", "esi.Precond")],
            &[],
        ))
        .unwrap();
        repo.register_component(entry(
            "viz.Plot",
            "line plots",
            &[("render", "viz.Render")],
            &[("field", "viz.Field")],
        ))
        .unwrap();
        repo
    }

    #[test]
    fn query_any_returns_all() {
        let repo = demo_repo();
        assert_eq!(repo.search(&Query::any()).len(), 3);
    }

    #[test]
    fn providing_honours_subtyping() {
        let repo = demo_repo();
        // Both Cg (Solver) and Ilu (Precond) provide subtypes of Operator.
        let ops = repo.search(&Query::any().providing("esi.Operator"));
        let classes: Vec<&str> = ops.iter().map(|e| e.class.as_str()).collect();
        assert_eq!(classes, vec!["esi.Cg", "esi.Ilu"]);
        // Only Cg provides a Solver.
        let solvers = repo.search(&Query::any().providing("esi.Solver"));
        assert_eq!(solvers.len(), 1);
        assert_eq!(solvers[0].class, "esi.Cg");
    }

    #[test]
    fn using_finds_consumers_for_an_offered_type() {
        let repo = demo_repo();
        // Who could consume a provider of esi.Precond? Cg's uses port is
        // declared as esi.Operator, and Precond is-a Operator.
        let consumers = repo.search(&Query::any().using("esi.Precond"));
        assert_eq!(consumers.len(), 1);
        assert_eq!(consumers[0].class, "esi.Cg");
        // Nothing consumes viz.Render.
        assert!(repo.search(&Query::any().using("viz.Render")).is_empty());
    }

    #[test]
    fn package_and_text_filters() {
        let repo = demo_repo();
        assert_eq!(repo.search(&Query::any().in_package("viz.")).len(), 1);
        let krylov = repo.search(&Query::any().with_text("KRYLOV"));
        assert_eq!(krylov.len(), 1);
        assert_eq!(krylov[0].class, "esi.Cg");
    }

    #[test]
    fn filters_conjoin() {
        let repo = demo_repo();
        let none = repo.search(&Query::any().providing("esi.Operator").in_package("viz."));
        assert!(none.is_empty());
        let one = repo.search(
            &Query::any()
                .providing("esi.Operator")
                .with_text("preconditioner"),
        );
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].class, "esi.Ilu");
    }
}
