//! The sharded component catalog: lock-free reads at million-entry scale.
//!
//! PR 1 rebuilt the per-component port tables as immutable [`Arc`]
//! snapshots behind a generation counter; this module lifts the same
//! clone-mutate-swap discipline to the repository. Entries are hashed by
//! class name across N shards. Each shard publishes an immutable
//! [`ShardSnapshot`] — the entry table *and* the trigram index built over
//! it — behind a briefly-held pointer lock, so a reader (exact lookup,
//! fuzzy query, `entries()` walk) clones one `Arc` and then works on a
//! frozen world: no lock is held while searching, and a concurrent
//! deposit can never tear the view. Writers serialize per shard, build
//! the successor snapshot off-line, swap the pointer in O(1), and bump
//! that shard's monotonic generation counter.
//!
//! Two write paths exist because their cost classes differ by orders of
//! magnitude:
//!
//! * [`ShardedStore::try_insert`] / [`try_remove`](ShardedStore::try_remove)
//!   — one entry, one shard: clone the shard's table, mutate, rebuild
//!   that shard's trigram index. O(shard) per call; fine interactively.
//! * [`ShardedStore::try_insert_batch`] — groups the batch by shard,
//!   locks every touched shard (in index order — no deadlock), validates
//!   **all-or-nothing** (a duplicate anywhere publishes nothing), then
//!   pays one clone+rebuild per shard per batch. This is how a
//!   million-type population costs minutes of CPU in total, not O(n²).
//!
//! Resharding ([`crate::Repository::rebalance`]) replaces the whole
//! store. A writer that raced the swap — it cloned the old store's `Arc`
//! before retirement — finds [`ShardedStore::retired`] set once it holds
//! the shard lock, abandons the write, and retries against the new store;
//! readers of the old store just finish against their frozen snapshots.

use crate::store::ComponentEntry;
use crate::trigram::TrigramIndex;
use cca_core::CcaError;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default shard count: enough that a million entries keep shards in the
/// tens of thousands (bounding single-insert republication cost) without
/// making tiny catalogs pay 64 snapshot allocations.
pub const DEFAULT_SHARDS: usize = 32;

/// One registered entry in its normalized, search-ready form. The
/// lowercased texts are computed **once, at deposit time** — queries
/// compare against them directly instead of lowering every entry on
/// every search (the per-entry-per-query allocation the flat store
/// used to pay).
#[derive(Clone)]
pub struct StoredEntry {
    /// The registration itself.
    pub entry: ComponentEntry,
    /// `entry.class`, lowercased.
    pub lowered_class: Arc<str>,
    /// The rest of the searchable text — port names, port types, and the
    /// description — lowercased and space-joined.
    pub lowered_aux: Arc<str>,
}

impl StoredEntry {
    /// Normalizes an entry for storage.
    pub fn new(entry: ComponentEntry) -> Self {
        let lowered_class: Arc<str> = entry.class.to_lowercase().into();
        let mut aux = String::new();
        for spec in entry.provides.iter().chain(entry.uses.iter()) {
            aux.push_str(&spec.name);
            aux.push(' ');
            aux.push_str(&spec.port_type);
            aux.push(' ');
        }
        aux.push_str(&entry.description);
        let lowered_aux: Arc<str> = aux.to_lowercase().into();
        StoredEntry {
            entry,
            lowered_class,
            lowered_aux,
        }
    }

    /// The combined text the trigram index sees.
    fn search_text(&self) -> String {
        format!("{} {}", self.lowered_class, self.lowered_aux)
    }
}

/// The immutable published state of one shard. Everything a reader needs
/// — entries, ordinal arrays, trigram postings — is frozen together, so
/// any snapshot is internally consistent by construction.
pub struct ShardSnapshot {
    /// The shard generation this snapshot was published at.
    pub generation: u64,
    /// Entries sorted by class name; the index into this vec is the
    /// ordinal the trigram postings refer to.
    entries: Vec<StoredEntry>,
    /// class → ordinal.
    by_class: BTreeMap<Arc<str>, u32>,
    /// Trigram postings over `entries[ordinal].search_text()`.
    index: TrigramIndex,
}

impl ShardSnapshot {
    fn empty() -> Arc<Self> {
        Arc::new(ShardSnapshot {
            generation: 0,
            entries: Vec::new(),
            by_class: BTreeMap::new(),
            index: TrigramIndex::default(),
        })
    }

    fn from_entries(mut entries: Vec<StoredEntry>, generation: u64) -> Arc<Self> {
        entries.sort_by(|a, b| a.entry.class.cmp(&b.entry.class));
        let by_class = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (Arc::<str>::from(e.entry.class.as_str()), i as u32))
            .collect();
        let texts: Vec<String> = entries.iter().map(|e| e.search_text()).collect();
        let index = TrigramIndex::build(&texts);
        Arc::new(ShardSnapshot {
            generation,
            entries,
            by_class,
            index,
        })
    }

    /// Exact lookup by class name.
    pub fn get(&self, class: &str) -> Option<&StoredEntry> {
        self.by_class.get(class).map(|&i| &self.entries[i as usize])
    }

    /// All entries, sorted by class name.
    pub fn entries(&self) -> &[StoredEntry] {
        &self.entries
    }

    /// The entry behind a trigram ordinal.
    pub fn by_ordinal(&self, ordinal: u32) -> &StoredEntry {
        &self.entries[ordinal as usize]
    }

    /// This snapshot's trigram index.
    pub fn index(&self) -> &TrigramIndex {
        &self.index
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the shard holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

struct Shard {
    /// The published snapshot. Readers take the lock only long enough to
    /// clone the `Arc`; writers only to swap it.
    snap: RwLock<Arc<ShardSnapshot>>,
    /// Monotonic publication counter, bumped after every swap.
    generation: AtomicU64,
    /// Serializes writers of this shard (clone-mutate-swap must not race
    /// itself or the republication is a lost update).
    write: Mutex<()>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            snap: RwLock::new(ShardSnapshot::empty()),
            generation: AtomicU64::new(0),
            write: Mutex::new(()),
        }
    }

    fn snapshot(&self) -> Arc<ShardSnapshot> {
        Arc::clone(&self.snap.read())
    }

    /// Publishes `entries` as the next snapshot. Caller holds `write`.
    fn publish(&self, entries: Vec<StoredEntry>) {
        let generation = self.generation.load(Ordering::Acquire) + 1;
        let next = ShardSnapshot::from_entries(entries, generation);
        *self.snap.write() = next;
        self.generation.store(generation, Ordering::Release);
    }
}

/// The outcome of a write attempt against a possibly-retired store.
pub enum WriteOutcome<T> {
    /// The write published.
    Done(T),
    /// The store was retired by a rebalance after the caller cloned its
    /// handle; retry against the current store.
    Retired,
}

/// The outcome of a batch insert. `Retired` hands the (unpublished)
/// batch back so the caller can retry against the current store without
/// having cloned a million entries up front.
pub enum BatchOutcome {
    /// The batch published (`Ok`: entries inserted) or was rejected
    /// whole (`Err`: a duplicate; nothing published).
    Done(Result<usize, CcaError>),
    /// The store was retired mid-flight; here is the batch back.
    Retired(Vec<StoredEntry>),
}

/// A fixed set of shards plus the retirement flag that makes
/// whole-store replacement (rebalance) safe against in-flight writers.
pub struct ShardedStore {
    shards: Box<[Shard]>,
    retired: AtomicBool,
}

/// FNV-1a, the classic stable string hash: deterministic across runs and
/// processes, so a class always lands on the same shard for a given
/// shard count (tests and cursors may rely on run-to-run stability).
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ShardedStore {
    /// Creates an empty store with `shards` shards (at least 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        ShardedStore {
            shards: (0..n).map(|_| Shard::new()).collect(),
            retired: AtomicBool::new(false),
        }
    }

    /// Creates a store pre-populated with `entries` (used by rebalance;
    /// duplicates must already be impossible).
    pub fn with_entries(shards: usize, entries: Vec<StoredEntry>) -> Self {
        let store = ShardedStore::new(shards);
        let mut buckets: Vec<Vec<StoredEntry>> =
            (0..store.shards.len()).map(|_| Vec::new()).collect();
        for e in entries {
            buckets[store.shard_of(&e.entry.class)].push(e);
        }
        for (shard, bucket) in store.shards.iter().zip(buckets) {
            let _w = shard.write.lock();
            shard.publish(bucket);
        }
        store
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a class name hashes to.
    pub fn shard_of(&self, class: &str) -> usize {
        (fnv1a(class) % self.shards.len() as u64) as usize
    }

    /// True once a rebalance has replaced this store.
    pub fn is_retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }

    /// The published snapshot of one shard.
    pub fn snapshot(&self, shard: usize) -> Arc<ShardSnapshot> {
        self.shards[shard].snapshot()
    }

    /// Published snapshots of every shard (one frozen world per shard;
    /// cross-shard reads are not atomic with each other, which exact
    /// lookups and per-shard queries never need).
    pub fn snapshots(&self) -> Vec<Arc<ShardSnapshot>> {
        self.shards.iter().map(Shard::snapshot).collect()
    }

    /// Per-shard generation counters.
    pub fn generations(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.generation.load(Ordering::Acquire))
            .collect()
    }

    /// Exact lookup: hash to the shard, read its frozen snapshot.
    pub fn get(&self, class: &str) -> Option<StoredEntry> {
        self.snapshot(self.shard_of(class)).get(class).cloned()
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.snapshot().len()).sum()
    }

    /// True when no shard holds entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.snapshot().is_empty())
    }

    /// Inserts one entry. `overwrite` distinguishes register (duplicate
    /// is an error) from re-deposit (replace in place).
    pub fn try_insert(
        &self,
        stored: StoredEntry,
        overwrite: bool,
    ) -> WriteOutcome<Result<(), CcaError>> {
        let shard = &self.shards[self.shard_of(&stored.entry.class)];
        let _w = shard.write.lock();
        if self.is_retired() {
            return WriteOutcome::Retired;
        }
        let current = shard.snapshot();
        if !overwrite && current.get(&stored.entry.class).is_some() {
            return WriteOutcome::Done(Err(CcaError::ComponentAlreadyExists(
                stored.entry.class.clone(),
            )));
        }
        let mut entries: Vec<StoredEntry> = current
            .entries()
            .iter()
            .filter(|e| e.entry.class != stored.entry.class)
            .cloned()
            .collect();
        entries.push(stored);
        shard.publish(entries);
        WriteOutcome::Done(Ok(()))
    }

    /// Inserts a batch, all-or-nothing: every touched shard is locked (in
    /// index order), every class validated against the existing tables
    /// *and* the batch itself, and only then does any shard publish. A
    /// duplicate anywhere leaves the whole store untouched.
    pub fn try_insert_batch(&self, batch: Vec<StoredEntry>) -> BatchOutcome {
        if batch.is_empty() {
            return BatchOutcome::Done(Ok(0));
        }
        let mut buckets: Vec<Vec<StoredEntry>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for e in batch {
            buckets[self.shard_of(&e.entry.class)].push(e);
        }
        let touched: Vec<usize> = (0..buckets.len())
            .filter(|&i| !buckets[i].is_empty())
            .collect();
        // Lock in ascending shard order so concurrent batches can't
        // deadlock, then validate everything before publishing anything.
        let guards: Vec<_> = touched
            .iter()
            .map(|&i| self.shards[i].write.lock())
            .collect();
        if self.is_retired() {
            return BatchOutcome::Retired(buckets.into_iter().flatten().collect());
        }
        let mut inserted = 0usize;
        for &i in &touched {
            let current = self.shards[i].snapshot();
            let bucket = &mut buckets[i];
            bucket.sort_by(|a, b| a.entry.class.cmp(&b.entry.class));
            for pair in bucket.windows(2) {
                if pair[0].entry.class == pair[1].entry.class {
                    return BatchOutcome::Done(Err(CcaError::ComponentAlreadyExists(
                        pair[0].entry.class.clone(),
                    )));
                }
            }
            for e in bucket.iter() {
                if current.get(&e.entry.class).is_some() {
                    return BatchOutcome::Done(Err(CcaError::ComponentAlreadyExists(
                        e.entry.class.clone(),
                    )));
                }
            }
            inserted += bucket.len();
        }
        for &i in &touched {
            let shard = &self.shards[i];
            let mut entries: Vec<StoredEntry> = shard.snapshot().entries().to_vec();
            entries.append(&mut buckets[i]);
            shard.publish(entries);
        }
        drop(guards);
        BatchOutcome::Done(Ok(inserted))
    }

    /// Removes one entry by class.
    pub fn try_remove(&self, class: &str) -> WriteOutcome<Result<ComponentEntry, CcaError>> {
        let shard = &self.shards[self.shard_of(class)];
        let _w = shard.write.lock();
        if self.is_retired() {
            return WriteOutcome::Retired;
        }
        let current = shard.snapshot();
        if current.get(class).is_none() {
            return WriteOutcome::Done(Err(CcaError::ComponentNotFound(class.to_string())));
        }
        let mut removed = None;
        let entries: Vec<StoredEntry> = current
            .entries()
            .iter()
            .filter(|e| {
                if e.entry.class == class {
                    removed = Some(e.entry.clone());
                    false
                } else {
                    true
                }
            })
            .cloned()
            .collect();
        shard.publish(entries);
        WriteOutcome::Done(Ok(removed.expect("presence checked above")))
    }

    /// Locks every shard, marks this store retired, and returns all
    /// entries — the first half of a rebalance. After this returns, no
    /// in-flight writer can publish here: anyone who raced the swap sees
    /// the retirement flag under the shard lock and retries elsewhere.
    pub fn retire_and_collect(&self) -> Vec<StoredEntry> {
        let _guards: Vec<_> = self.shards.iter().map(|s| s.write.lock()).collect();
        self.retired.store(true, Ordering::Release);
        let mut all = Vec::with_capacity(self.len());
        for s in self.shards.iter() {
            all.extend(s.snapshot().entries().iter().cloned());
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PortSpec;
    use cca_core::{CcaServices, Component};
    use cca_data::TypeMap;

    struct Nop;
    impl Component for Nop {
        fn component_type(&self) -> &str {
            "t.Nop"
        }
        fn set_services(&self, _s: Arc<CcaServices>) -> Result<(), CcaError> {
            Ok(())
        }
    }

    fn entry(class: &str) -> StoredEntry {
        StoredEntry::new(ComponentEntry {
            class: class.into(),
            description: format!("The {class} Component"),
            provides: vec![PortSpec::new("go", "cca.ports.GoPort")],
            uses: vec![],
            properties: TypeMap::new(),
            factory: Arc::new(|| Arc::new(Nop) as Arc<dyn Component>),
        })
    }

    fn unwrap_done<T>(o: WriteOutcome<T>) -> T {
        match o {
            WriteOutcome::Done(t) => t,
            WriteOutcome::Retired => panic!("store unexpectedly retired"),
        }
    }

    fn unwrap_batch(o: BatchOutcome) -> Result<usize, CcaError> {
        match o {
            BatchOutcome::Done(r) => r,
            BatchOutcome::Retired(_) => panic!("store unexpectedly retired"),
        }
    }

    #[test]
    fn insert_get_remove_across_shards() {
        let store = ShardedStore::new(4);
        for i in 0..100 {
            unwrap_done(store.try_insert(entry(&format!("p{i}.C")), false)).unwrap();
        }
        assert_eq!(store.len(), 100);
        assert!(store.get("p42.C").is_some());
        assert!(store.get("p777.C").is_none());
        unwrap_done(store.try_remove("p42.C")).unwrap();
        assert!(store.get("p42.C").is_none());
        assert_eq!(store.len(), 99);
        assert!(unwrap_done(store.try_remove("p42.C")).is_err());
    }

    #[test]
    fn normalize_once_lowers_class_and_aux() {
        let e = entry("Esi.KrylovCG");
        assert_eq!(&*e.lowered_class, "esi.krylovcg");
        assert!(e.lowered_aux.contains("go cca.ports.goport"));
        assert!(e.lowered_aux.contains("the esi.krylovcg component"));
    }

    #[test]
    fn duplicate_single_insert_rejected_overwrite_replaces() {
        let store = ShardedStore::new(2);
        unwrap_done(store.try_insert(entry("a.B"), false)).unwrap();
        assert!(matches!(
            unwrap_done(store.try_insert(entry("a.B"), false)),
            Err(CcaError::ComponentAlreadyExists(_))
        ));
        let mut replacement = entry("a.B");
        replacement.entry.description = "replaced".into();
        unwrap_done(store.try_insert(StoredEntry::new(replacement.entry), true)).unwrap();
        assert_eq!(store.get("a.B").unwrap().entry.description, "replaced");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn batch_is_all_or_nothing() {
        let store = ShardedStore::new(4);
        unwrap_done(store.try_insert(entry("x.Existing"), false)).unwrap();
        let before = store.generations();
        // Batch with a duplicate against the store: nothing publishes.
        let batch = vec![entry("a.A"), entry("b.B"), entry("x.Existing")];
        assert!(unwrap_batch(store.try_insert_batch(batch)).is_err());
        assert_eq!(store.len(), 1);
        assert_eq!(store.generations(), before);
        // Batch with an internal duplicate: same.
        let batch = vec![entry("a.A"), entry("a.A")];
        assert!(unwrap_batch(store.try_insert_batch(batch)).is_err());
        assert_eq!(store.len(), 1);
        // A clean batch lands everywhere.
        let n = unwrap_batch(store.try_insert_batch(vec![entry("a.A"), entry("b.B")])).unwrap();
        assert_eq!(n, 2);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn generations_bump_per_publication_and_snapshots_carry_them() {
        let store = ShardedStore::new(1);
        assert_eq!(store.generations(), vec![0]);
        unwrap_done(store.try_insert(entry("a.A"), false)).unwrap();
        unwrap_done(store.try_insert(entry("b.B"), false)).unwrap();
        assert_eq!(store.generations(), vec![2]);
        assert_eq!(store.snapshot(0).generation, 2);
    }

    #[test]
    fn retired_store_refuses_writes() {
        let store = ShardedStore::new(2);
        unwrap_done(store.try_insert(entry("a.A"), false)).unwrap();
        let all = store.retire_and_collect();
        assert_eq!(all.len(), 1);
        assert!(matches!(
            store.try_insert(entry("b.B"), false),
            WriteOutcome::Retired
        ));
        assert!(matches!(store.try_remove("a.A"), WriteOutcome::Retired));
        assert!(matches!(
            store.try_insert_batch(vec![entry("c.C")]),
            BatchOutcome::Retired(_)
        ));
        // Readers of the retired store still see their frozen world.
        assert!(store.get("a.A").is_some());
    }

    #[test]
    fn with_entries_distributes_deterministically() {
        let entries: Vec<StoredEntry> = (0..50).map(|i| entry(&format!("p{i}.C"))).collect();
        let a = ShardedStore::with_entries(8, entries.clone());
        let b = ShardedStore::with_entries(8, entries);
        for i in 0..8 {
            assert_eq!(
                a.snapshot(i).len(),
                b.snapshot(i).len(),
                "shard layout must be deterministic"
            );
        }
        assert_eq!(a.len(), 50);
        assert_eq!(a.shard_of("p1.C"), a.shard_of("p1.C"));
    }
}
