//! CI check over the *committed* benchmark artifacts: every `BENCH_*.json`
//! at the repo root must parse as JSON and declare its schema.
//!
//! The bench binaries publish results with a write-then-rename so a killed
//! run can't leave a truncated file; this test is the other half of that
//! contract — if a hand edit or a bad merge corrupts an artifact, CI fails
//! here rather than when some downstream trend script chokes. The parser
//! is a deliberately tiny recursive-descent JSON reader (the workspace
//! vendors no serde).

use std::collections::BTreeMap;
use std::path::PathBuf;

/// A minimal JSON value — just enough to validate structure and pull out
/// the schema tag.
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == expected => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.error(&format!("expected '{}'", expected as char))),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs don't occur in bench output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }
}

fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser::new(src);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage"));
    }
    Ok(v)
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn committed_bench_artifacts_parse_and_declare_schema() {
    let mut checked = Vec::new();
    for entry in std::fs::read_dir(repo_root()).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let value = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let Json::Obj(map) = value else {
            panic!("{name}: top level must be a JSON object");
        };
        match map.get("schema") {
            Some(Json::Str(s)) => assert!(
                s.starts_with("cca-bench/"),
                "{name}: schema '{s}' must be 'cca-bench/<version>'"
            ),
            other => panic!("{name}: missing string 'schema' field (got {other:?})"),
        }
        if name == "BENCH_rpc.json" {
            // E13 merges the mux throughput quantities into E12's
            // artifact; a bench.sh run that skipped the merge (or a bad
            // hand edit) must fail here, not in a trend script.
            for key in ["throughput_calls_per_sec", "p99_ns"] {
                assert!(
                    matches!(map.get(key), Some(Json::Num(_))),
                    "{name}: missing numeric '{key}' field (E13 mux merge)"
                );
            }
        }
        if name == "BENCH_data.json" {
            // E15's bulk-data-plane artifact: the tentpole ratio and the
            // memory bound it gates on must both be present as numbers.
            for key in [
                "chunk_bytes",
                "bulk_gbps",
                "generic_gbps",
                "inproc_gbps",
                "raw_wire_gbps",
                "wire_budget_gbps",
                "bulk_over_generic_ratio",
                "peak_slab_bytes",
            ] {
                assert!(
                    matches!(map.get(key), Some(Json::Num(_))),
                    "{name}: missing numeric '{key}' field (E15 bulk data plane)"
                );
            }
        }
        if name == "BENCH_fleet.json" {
            // E16's worker-fleet artifact: the wire-collective overhead
            // ratio and the restart-to-rejoin latency are PR 9's
            // acceptance quantities.
            for key in [
                "ranks",
                "thread_allreduce_ns",
                "wire_allreduce_ns",
                "wire_over_thread_ratio",
                "restart_to_rejoin_ms",
            ] {
                assert!(
                    matches!(map.get(key), Some(Json::Num(_))),
                    "{name}: missing numeric '{key}' field (E16 worker fleet)"
                );
            }
        }
        if name == "BENCH_repo.json" {
            // E17's repository-scale artifact: PR 10's acceptance
            // quantities — exact lookup and fuzzy latency at 1M types,
            // the flat-scan comparison, and the concurrency scaling.
            for key in [
                "types",
                "shards",
                "exact_lookup_p50_ns",
                "fuzzy_p50_us",
                "flat_scan_p50_us",
                "scan_speedup",
                "single_thread_qps",
                "four_thread_qps",
                "throughput_scaling",
            ] {
                assert!(
                    matches!(map.get(key), Some(Json::Num(_))),
                    "{name}: missing numeric '{key}' field (E17 repository scale)"
                );
            }
        }
        if name == "BENCH_obs.json" {
            // E14 merges the wire-tracing quantities into E10's artifact
            // the same way; both halves must be present.
            for key in [
                "span_on_ns",
                "wire_pr6_encode_ns",
                "wire_off_encode_ns",
                "wire_off_over_pr6_ratio",
                "remote_call_off_ns",
                "remote_call_on_ns",
                "remote_on_over_off_ratio",
            ] {
                assert!(
                    matches!(map.get(key), Some(Json::Num(_))),
                    "{name}: missing numeric '{key}' field (E14 wire-trace merge)"
                );
            }
        }
        checked.push(name);
    }
    assert!(
        !checked.is_empty(),
        "no BENCH_*.json artifacts found at the repo root — the E9/E10 \
         benches are expected to commit theirs"
    );
}

#[test]
fn json_reader_handles_the_shapes_benches_emit() {
    let v = parse(r#"{"schema":"cca-bench/1","xs":[1,2.5,-3e2],"ok":true,"s":"a\"bA"}"#).unwrap();
    let Json::Obj(map) = v else { panic!() };
    assert_eq!(map["schema"], Json::Str("cca-bench/1".into()));
    assert_eq!(
        map["xs"],
        Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
    );
    assert_eq!(map["ok"], Json::Bool(true));
    assert_eq!(map["s"], Json::Str("a\"bA".into()));
    assert!(parse("{\"truncated\":").is_err());
    assert!(parse("{} trailing").is_err());
    assert!(parse("").is_err());
}
