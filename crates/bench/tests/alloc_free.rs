//! Acceptance check: the direct-connect steady state performs ZERO heap
//! allocations per call.
//!
//! Counts every allocation through a wrapping `#[global_allocator]` and
//! asserts the delta across the hot paths is exactly zero:
//!
//! * a uses-port fan-out (`get_ports` snapshot + `typed()` per listener) —
//!   the snapshot is a shared `Arc<[PortHandle]>` and `typed()` clones an
//!   `Arc`, so both are refcount bumps only;
//! * a steady-state `CachedPort::get` (one relaxed generation load);
//! * an uncached `get_port_as` success path (snapshot read + BTreeMap
//!   lookup + downcast — slower, but still allocation-free);
//! * the same `CachedPort::get` with per-port counters ON — the metrics
//!   record path (single-writer shard bump) must also be allocation-free,
//!   or "metrics-on" would silently change the steady state it observes;
//! * span creation with tracing OFF — the inert guard every instrumented
//!   framework operation constructs unconditionally;
//! * the full tracing-off trace plumbing a remote call executes
//!   (`span` + `current_context` + `install_context`) — exactly zero;
//! * the remote call path itself over both the pooled and the mux
//!   transport: a remote call allocates (payload vecs, frames), so the
//!   assertion is *equality* — the warmed per-loop allocation count must
//!   be deterministic, and turning tracing ON must not add a single
//!   allocation (rings are preallocated; context rides in the frame).
//!
//! The tests share `SERIAL` so their measured regions never overlap — the
//! harness runs tests on multiple threads, and a sibling's setup
//! allocations would otherwise pollute the counter deltas.

use cca_core::{CcaServices, PortHandle};
use cca_data::TypeMap;
use cca_rpc::transport::Dispatcher;
use cca_rpc::{MuxServer, MuxServerConfig, MuxTransport, ObjRef, Orb, TcpServer, TcpTransport};
use cca_sidl::{DynObject, DynValue, SidlError};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

trait EventPort: Send + Sync {
    fn notify(&self, value: u64);
}

struct Listener {
    seen: AtomicU64,
}

impl EventPort for Listener {
    fn notify(&self, value: u64) {
        self.seen.fetch_add(value, Ordering::Relaxed);
    }
}

fn wire_fanout(n: usize) -> Arc<CcaServices> {
    let user = CcaServices::new("emitter");
    user.register_uses_port("events", "test.EventPort", TypeMap::new())
        .unwrap();
    for i in 0..n {
        let provider = CcaServices::new(format!("listener{i}"));
        let obj: Arc<dyn EventPort> = Arc::new(Listener {
            seen: AtomicU64::new(0),
        });
        provider
            .add_provides_port(PortHandle::new("in", "test.EventPort", obj))
            .unwrap();
        user.connect_uses("events", provider.get_provides_port("in").unwrap())
            .unwrap();
    }
    user
}

#[test]
fn fanout_multicast_allocates_nothing_per_call() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let user = wire_fanout(8);

    // Warm-up pass outside the measured region (first call may touch lazy
    // error formatting paths in a cold binary; it must not, but don't let
    // one-time effects mask a per-call regression either way).
    for h in user.get_ports("events").unwrap().iter() {
        let l: Arc<dyn EventPort> = h.typed().unwrap();
        l.notify(1);
    }

    let before = alloc_count();
    for _ in 0..1000 {
        for h in user.get_ports("events").unwrap().iter() {
            let l: Arc<dyn EventPort> = h.typed().unwrap();
            l.notify(1);
        }
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "fan-out multicast must be allocation-free ({delta} allocations over 1000 calls)"
    );
}

#[test]
fn cached_port_get_allocates_nothing_in_steady_state() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let user = wire_fanout(1);
    let mut cached = user.cached_port::<dyn EventPort>("events");
    cached.get().unwrap().notify(1); // first get resolves (may allocate)

    let before = alloc_count();
    for _ in 0..1000 {
        cached.get().unwrap().notify(1);
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "steady-state CachedPort::get must be allocation-free ({delta} allocations over 1000 calls)"
    );
}

#[test]
fn counters_on_cached_record_path_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let user = wire_fanout(1);
    let mut cached = user.cached_port::<dyn EventPort>("events");
    cca_obs::set_counters(true);
    // Prime under the counters-on state: first resolution registers the
    // call shard (one allocation, once per slot identity — allowed here).
    cached.get().unwrap().notify(1);
    let calls_before = user.port_metrics("events").unwrap().calls();

    let before = alloc_count();
    for _ in 0..1000 {
        cached.get().unwrap().notify(1);
    }
    let delta = alloc_count() - before;
    let counted = user.port_metrics("events").unwrap().calls() - calls_before;
    cca_obs::set_counters(false);
    assert_eq!(
        delta, 0,
        "counters-on CachedPort::get must be allocation-free ({delta} allocations over 1000 calls)"
    );
    // Prove the measured loop actually exercised the record path.
    assert_eq!(counted, 1000, "every call must be counted");
}

#[test]
fn tracing_off_span_guard_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    cca_obs::set_tracing(false);
    drop(cca_obs::span("alloc.warmup"));

    let before = alloc_count();
    for _ in 0..1000 {
        let _span = cca_obs::span("alloc.probe");
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "tracing-off span guards must be allocation-free ({delta} allocations over 1000 spans)"
    );
}

#[test]
fn tracing_off_remote_plumbing_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    cca_obs::set_tracing(false);
    drop(cca_obs::span("alloc.warmup"));

    // The exact trace plumbing a remote call runs with tracing off: the
    // inert span guard, the context read the encoder performs, and the
    // inert install guard the server dispatch performs.
    let before = alloc_count();
    for _ in 0..1000 {
        let _span = cca_obs::span("alloc.probe");
        let ctx = cca_obs::current_context();
        let _guard = cca_obs::install_context(ctx);
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "tracing-off remote trace plumbing must be allocation-free \
         ({delta} allocations over 1000 iterations)"
    );
}

struct Doubler;
impl DynObject for Doubler {
    fn sidl_type(&self) -> &str {
        "test.Doubler"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "double" => Ok(DynValue::Long(2 * args[0].as_long()?)),
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

fn remote_loop_allocs(objref: &ObjRef, n: i64) -> u64 {
    let before = alloc_count();
    for k in 0..n {
        let r = objref.invoke("double", vec![DynValue::Long(k)]).unwrap();
        assert!(matches!(r, DynValue::Long(v) if v == 2 * k));
    }
    alloc_count() - before
}

/// Remote calls allocate by nature (argument vecs, frames, replies), so
/// the check is equality, not zero: two warmed tracing-off loops must
/// allocate identically (the count is a deterministic function of the
/// call, not of time), and a tracing-on loop must match them exactly —
/// the span ring is preallocated and the wire context rides inside the
/// frame's existing single buffer.
fn assert_trace_plumbing_adds_no_allocations(label: &str, objref: &ObjRef) {
    // Warm both gates outside the measured region: pool dials, reply
    // buffers, and the per-thread trace rings (client and server side)
    // all come into existence here.
    cca_obs::set_tracing(false);
    remote_loop_allocs(objref, 200);
    cca_obs::set_tracing(true);
    remote_loop_allocs(objref, 200);
    cca_obs::set_tracing(false);

    let off_first = remote_loop_allocs(objref, 500);
    let off_second = remote_loop_allocs(objref, 500);
    cca_obs::set_tracing(true);
    let on = remote_loop_allocs(objref, 500);
    cca_obs::set_tracing(false);
    cca_obs::drain();

    assert_eq!(
        off_first, off_second,
        "{label}: warmed remote calls must allocate deterministically"
    );
    assert_eq!(
        on, off_first,
        "{label}: tracing must add zero allocations per remote call \
         (off={off_first}, on={on} over 500 calls)"
    );
}

#[test]
fn remote_call_trace_plumbing_adds_no_allocations_pooled() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let orb = Orb::new();
    orb.register("doubler", Arc::new(Doubler));
    let server = TcpServer::bind("127.0.0.1:0", orb as Arc<dyn Dispatcher>).unwrap();
    // Pool of 1: a serial client reuses one warmed connection, keeping
    // the per-loop allocation count a pure function of the call.
    let transport = Arc::new(TcpTransport::new(server.local_addr().to_string()).with_pool_size(1));
    let objref = ObjRef::new("doubler", transport as Arc<dyn cca_rpc::Transport>);

    assert_trace_plumbing_adds_no_allocations("pooled", &objref);
    server.shutdown();
}

#[test]
fn remote_call_trace_plumbing_adds_no_allocations_mux() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let orb = Orb::new();
    orb.register("doubler", Arc::new(Doubler));
    // One dispatch worker: the server-side ring warm-up is deterministic.
    let server = MuxServer::bind_with(
        "127.0.0.1:0",
        orb as Arc<dyn Dispatcher>,
        MuxServerConfig {
            dispatch_threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let transport = Arc::new(MuxTransport::new(server.local_addr().to_string()));
    let objref = ObjRef::new("doubler", transport as Arc<dyn cca_rpc::Transport>);

    assert_trace_plumbing_adds_no_allocations("mux", &objref);
    server.shutdown();
}

#[test]
fn steady_state_redistribution_allocates_nothing() {
    use cca_data::{DistArrayDesc, Distribution, RedistPlan};

    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // A 4-rank → 3-rank block recoupling: every timestep re-runs the same
    // compiled plan over the same buffers.
    let src_desc = DistArrayDesc::new(&[96], Distribution::block_1d(4, 1).unwrap()).unwrap();
    let dst_desc = DistArrayDesc::new(&[96], Distribution::block_1d(3, 1).unwrap()).unwrap();
    let plan = RedistPlan::build(&src_desc, &dst_desc).unwrap();
    let compiled = plan.compile().unwrap();

    let src: Vec<Vec<f64>> = (0..4)
        .map(|r| {
            (0..src_desc.local_count(r).unwrap())
                .map(|i| i as f64)
                .collect()
        })
        .collect();
    let mut dst: Vec<Vec<f64>> = (0..3)
        .map(|r| vec![0.0; dst_desc.local_count(r).unwrap()])
        .collect();
    // One scratch per transfer pattern, reused every timestep: pack_into
    // reserves capacity on the first (warm-up) pass, never again.
    let mut scratch: Vec<f64> = Vec::new();

    // Warm-up timestep: scratch capacity and any lazy setup happen here.
    compiled.apply_into(&src, &mut dst).unwrap();
    for t in compiled.transfers() {
        t.pack_into(&src[t.src_rank], &mut scratch);
    }

    let before = alloc_count();
    for _ in 0..1000 {
        compiled.apply_into(&src, &mut dst).unwrap();
        for t in compiled.transfers() {
            t.pack_into(&src[t.src_rank], &mut scratch);
        }
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "steady-state redistribution (apply_into + pack_into reuse) must be \
         allocation-free ({delta} allocations over 1000 timesteps)"
    );
}

#[test]
fn uncached_get_port_as_success_path_allocates_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let user = wire_fanout(1);
    let _warm: Arc<dyn EventPort> = user.get_port_as("events").unwrap();

    let before = alloc_count();
    for _ in 0..1000 {
        let p: Arc<dyn EventPort> = user.get_port_as("events").unwrap();
        p.notify(1);
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "get_port_as success path must be allocation-free ({delta} allocations over 1000 calls)"
    );
}
