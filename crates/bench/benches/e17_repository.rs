//! E17 — repository scale: exact lookup, trigram fuzzy discovery, and
//! concurrent query throughput at a million registered types, recorded
//! to `BENCH_repo.json`.
//!
//! PR 10 reshapes `cca-repository` from one flat `RwLock<BTreeMap>` into
//! hash-sharded Arc snapshots with a per-shard trigram index. This bench
//! populates a catalog with 1M synthetic SIDL component types (100k in
//! `CCA_BENCH_FAST` mode) and measures:
//!
//! * `exact_lookup_p50_ns` — class → entry through the shard hash and a
//!   frozen snapshot. Gate: **p50 < 5 µs**.
//! * `fuzzy_p50_us` — a mixed needle set (selective compound names plus
//!   broad single words) through the trigram index, scored and capped.
//!   Gate: **p50 < 5 ms**. `flat_scan_p50_us` runs the same needles the
//!   seed way — linear scan, `to_lowercase` per entry per query — and
//!   `scan_speedup` is the ratio.
//! * `four_thread_qps` vs `single_thread_qps` — the same mixed query
//!   stream from 4 threads against 1. Reads are lock-free (snapshot
//!   clone per query), so with ≥4 real cores the gate demands ≥2x
//!   scaling; on the smaller CI boxes it only demands that concurrent
//!   readers don't collapse (≥1.2x on 2–3 cores, ≥0.4x on 1), same
//!   core-count-branched gating as E12's proxy fan-out.

use cca_core::{CcaError, CcaServices, Component};
use cca_data::TypeMap;
use cca_repository::{ComponentEntry, FuzzyQuery, PortSpec, Repository};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

struct Nop;
impl Component for Nop {
    fn component_type(&self) -> &str {
        "synthetic.Nop"
    }
    fn set_services(&self, _s: Arc<CcaServices>) -> Result<(), CcaError> {
        Ok(())
    }
}

const PKGS: [&str; 16] = [
    "esi", "hydro", "viz", "mesh", "io", "lin", "opt", "stat", "chem", "climate", "fusion",
    "combust", "grid", "data", "mxn", "orb",
];

const WORDS: [&str; 64] = [
    "Krylov",
    "Gmres",
    "Jacobi",
    "Hydro",
    "Euler",
    "Riemann",
    "Mesh",
    "Plot",
    "Stat",
    "Redist",
    "Fourier",
    "Newton",
    "Tensor",
    "Graph",
    "Kernel",
    "Cloud",
    "Solver",
    "Precond",
    "Stencil",
    "Flux",
    "Advect",
    "Diffuse",
    "Gauss",
    "Seidel",
    "Chebyshev",
    "Lanczos",
    "Arnoldi",
    "Schur",
    "Multigrid",
    "Coarsen",
    "Refine",
    "Partition",
    "Balance",
    "Gather",
    "Scatter",
    "Reduce",
    "Halo",
    "Ghost",
    "Bound",
    "Domain",
    "Field",
    "Particle",
    "Tracer",
    "Spline",
    "Wavelet",
    "Entropy",
    "Enthalpy",
    "Viscous",
    "Inviscid",
    "Laminar",
    "Turbulent",
    "Spectral",
    "Modal",
    "Nodal",
    "Quadrature",
    "Jacobian",
    "Hessian",
    "Adjoint",
    "Forward",
    "Inverse",
    "Transpose",
    "Symmetric",
    "Sparse",
    "Dense",
];

/// The mixed query stream: mostly selective compound names (the needle a
/// person types when they know roughly what they want) plus two broad
/// single words (worst-case candidate counts). The p50 gates run over
/// this whole mix.
const NEEDLES: [&str; 8] = [
    "krylovgmres",
    "fourierschur",
    "newtonhalo",
    "riemannflux",
    "chebyshevadjoint",
    "multigridcoarsen",
    "krylov",
    "tensor",
];

fn class_of(i: usize) -> String {
    let w1 = WORDS[i % WORDS.len()];
    let w2 = WORDS[(i / WORDS.len()) % WORDS.len()];
    let pkg = PKGS[(i / (WORDS.len() * WORDS.len())) % PKGS.len()];
    format!("{pkg}.{w1}{w2}{i:07}")
}

fn entry_of(i: usize) -> ComponentEntry {
    let w1 = WORDS[i % WORDS.len()];
    let pkg = PKGS[(i / (WORDS.len() * WORDS.len())) % PKGS.len()];
    ComponentEntry {
        class: class_of(i),
        description: format!("synthetic {w1} component {i}"),
        provides: vec![PortSpec::new("main", format!("{pkg}.{w1}Port"))],
        uses: vec![PortSpec::new("go", "cca.ports.GoPort")],
        properties: TypeMap::new(),
        factory: Arc::new(|| Arc::new(Nop) as Arc<dyn Component>),
    }
}

fn p50(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn main() {
    let fast = std::env::var_os("CCA_BENCH_FAST").is_some();
    let (types, exact_samples, fuzzy_reps, flat_reps, qps_queries) = if fast {
        (100_000usize, 1_001usize, 8usize, 1usize, 64usize)
    } else {
        (1_000_000usize, 5_001usize, 25usize, 3usize, 400usize)
    };

    cca_obs::set_tracing(false);
    cca_obs::set_counters(false);

    // --- populate: one all-or-nothing batch, one publication per shard --
    let repo = Repository::new();
    repo.deposit_sidl("package cca.ports { interface GoPort { void go(); } }")
        .expect("seed SIDL");
    let start = Instant::now();
    let batch: Vec<ComponentEntry> = (0..types).map(entry_of).collect();
    let n = repo.register_components(batch).expect("populate");
    let populate_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(n, types);
    println!(
        "e17 repo: populated {types} types across {} shards in {populate_ms:.0} ms",
        repo.shard_count()
    );

    // --- exact lookup p50 ----------------------------------------------
    // Deterministic stride through the keyspace; every lookup hits.
    let mut samples = Vec::with_capacity(exact_samples);
    for k in 0..exact_samples {
        let class = class_of((k * 7919) % types);
        let start = Instant::now();
        let e = repo.entry(&class).expect("registered class");
        samples.push(start.elapsed().as_secs_f64() * 1e9);
        std::hint::black_box(e);
    }
    let exact_ns = p50(samples);

    // --- the seed baseline: flat map + per-entry lowering ---------------
    // The flat exact path (BTreeMap::get) was never the problem; the scan
    // was. Reproduce the seed's text search exactly: lower every entry's
    // class and description on every query.
    let flat: BTreeMap<String, String> = (0..types)
        .map(|i| (class_of(i), format!("synthetic component {i}")))
        .collect();
    let mut samples = Vec::with_capacity(exact_samples.min(1_001));
    for k in 0..exact_samples.min(1_001) {
        let class = class_of((k * 7919) % types);
        let start = Instant::now();
        std::hint::black_box(flat.get(&class));
        samples.push(start.elapsed().as_secs_f64() * 1e9);
    }
    let flat_exact_ns = p50(samples);

    let mut samples = Vec::new();
    for _ in 0..flat_reps {
        for needle in NEEDLES {
            let lowered = needle.to_lowercase();
            let start = Instant::now();
            let hits = flat
                .iter()
                .filter(|(class, desc)| {
                    class.to_lowercase().contains(&lowered)
                        || desc.to_lowercase().contains(&lowered)
                })
                .count();
            samples.push(start.elapsed().as_secs_f64() * 1e6);
            std::hint::black_box(hits);
        }
    }
    let flat_scan_us = p50(samples);
    drop(flat);

    // --- fuzzy query p50 ------------------------------------------------
    let mut samples = Vec::new();
    for _ in 0..fuzzy_reps {
        for needle in NEEDLES {
            let start = Instant::now();
            let page = repo.fuzzy(&FuzzyQuery::new(needle).with_limit(25));
            samples.push(start.elapsed().as_secs_f64() * 1e6);
            std::hint::black_box(page);
        }
    }
    let fuzzy_us = p50(samples);
    let scan_speedup = flat_scan_us / fuzzy_us;

    // --- concurrent query throughput ------------------------------------
    let run_queries = |count: usize| {
        for q in 0..count {
            let page = repo.fuzzy(&FuzzyQuery::new(NEEDLES[q % NEEDLES.len()]).with_limit(25));
            std::hint::black_box(page);
        }
    };
    let start = Instant::now();
    run_queries(qps_queries);
    let single_qps = qps_queries as f64 / start.elapsed().as_secs_f64();

    let threads = 4usize;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| run_queries(qps_queries));
        }
    });
    let four_qps = (threads * qps_queries) as f64 / start.elapsed().as_secs_f64();
    let scaling = four_qps / single_qps;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("e17 repo: exact lookup p50     {exact_ns:>10.0} ns (flat map {flat_exact_ns:.0} ns)");
    println!("e17 repo: fuzzy query p50      {fuzzy_us:>10.1} us");
    println!("e17 repo: flat scan p50        {flat_scan_us:>10.1} us  ({scan_speedup:.1}x slower)");
    println!("e17 repo: single-thread        {single_qps:>10.0} q/s");
    println!("e17 repo: 4-thread             {four_qps:>10.0} q/s  ({scaling:.2}x, {cores} cores)");

    // Gates (ISSUE 10 acceptance): exact p50 < 5 µs, fuzzy p50 < 5 ms,
    // and 4-thread scaling ≥2x — the scaling demand only where the
    // hardware can physically deliver it (4+ cores); below that the gate
    // pins "lock-free readers don't collapse under contention".
    assert!(
        exact_ns < 5_000.0,
        "acceptance: exact lookup p50 {exact_ns:.0} ns must stay under 5 us"
    );
    assert!(
        fuzzy_us < 5_000.0,
        "acceptance: fuzzy query p50 {fuzzy_us:.1} us must stay under 5 ms"
    );
    let required_scaling = if cores >= 4 {
        2.0
    } else if cores >= 2 {
        1.2
    } else {
        0.4
    };
    assert!(
        scaling >= required_scaling,
        "acceptance: 4-thread scaling {scaling:.2}x must be >= {required_scaling}x on {cores} cores"
    );
    let required_speedup = if fast { 1.5 } else { 5.0 };
    assert!(
        scan_speedup > required_speedup,
        "acceptance: trigram path {scan_speedup:.1}x vs flat scan must beat {required_speedup}x"
    );

    let out = std::env::var("BENCH_REPO_OUT").unwrap_or_else(|_| "BENCH_repo.json".to_string());
    let tmp = format!("{out}.tmp");
    let json = format!(
        "{{\n  \"schema\": \"cca-bench/1\",\n  \"experiment\": \"e17_repository\",\n  \
         \"types\": {types},\n  \"shards\": {},\n  \"populate_ms\": {populate_ms:.0},\n  \
         \"exact_lookup_p50_ns\": {exact_ns:.0},\n  \"flat_exact_p50_ns\": {flat_exact_ns:.0},\n  \
         \"fuzzy_p50_us\": {fuzzy_us:.1},\n  \"flat_scan_p50_us\": {flat_scan_us:.1},\n  \
         \"scan_speedup\": {scan_speedup:.1},\n  \"single_thread_qps\": {single_qps:.0},\n  \
         \"four_thread_qps\": {four_qps:.0},\n  \"throughput_scaling\": {scaling:.2},\n  \
         \"cores\": {cores}\n}}\n",
        repo.shard_count()
    );
    std::fs::write(&tmp, json).expect("write tmp artifact");
    std::fs::rename(&tmp, &out).expect("publish artifact");
    println!("e17 repo: wrote {out}");
}
