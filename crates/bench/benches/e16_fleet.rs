//! E16 — worker-fleet overhead and recovery latency, recorded to
//! `BENCH_fleet.json`.
//!
//! PR 9 moves ranks out of the framework process: collectives that used
//! to ride crossbeam channels now round-trip through the fleet hub over
//! real `tcp+mux://` sockets, and a dead rank is restarted and rejoined
//! instead of sinking the run. Two costs follow, both measured here:
//!
//! * `wire_allreduce_ns` vs `thread_allreduce_ns` — the same 4-rank
//!   f64 sum-allreduce on the in-process crossbeam substrate and on
//!   hub-routed process-fleet wiring (real sockets, join handshake,
//!   long-poll recv). The ratio is the price of crash-survivability;
//!   the gate only pins it to "well under a hydro timestep" (< 50 ms),
//!   because the collective cost is dwarfed by the solve it protects.
//! * `restart_to_rejoin_ms` — median wall-clock from `kill` of a joined
//!   rank to the replacement incarnation completing its join handshake:
//!   connection-death detection + breaker + backoff (2 ms base here) +
//!   relaunch + handshake. Gate: < 5 s, the deadline survivors park on.
//!
//! Rank "processes" for the restart measurement are threads behind the
//! [`RankLauncher`] trait — same supervision path (poll_exit, kill,
//! waitpid-style reap), none of the fork/exec noise, so the number is
//! the *framework's* recovery latency floor.

use cca_core::resilience::SystemClock;
use cca_framework::fleet::{
    FleetConfig, FleetHub, FleetSupervisor, HubLink, LaunchSpec, ProcessHandle, RankLauncher,
};
use cca_parallel::{spmd, SumOp};
use cca_rpc::transport::Dispatcher;
use cca_rpc::{MuxServer, MuxServerConfig, SessionSink};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const RANKS: usize = 4;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// 4-rank sum-allreduce latency on the thread substrate, ns.
fn thread_allreduce_ns(iters: usize) -> f64 {
    let samples = spmd(RANKS, |comm| {
        let mut local = Vec::new();
        for i in 0..iters {
            let start = Instant::now();
            let s = comm
                .allreduce(i as f64 + comm.rank() as f64, &SumOp)
                .unwrap();
            let elapsed = start.elapsed().as_secs_f64() * 1e9;
            std::hint::black_box(s);
            if comm.rank() == 0 {
                local.push(elapsed);
            }
        }
        local
    });
    median(samples.into_iter().flatten().collect())
}

/// The same allreduce with every rank behind a [`HubLink`] over real
/// sockets, ns.
fn wire_allreduce_ns(iters: usize) -> f64 {
    let hub = FleetHub::new(RANKS);
    let server = MuxServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&hub) as Arc<dyn Dispatcher>,
        MuxServerConfig {
            dispatch_threads: RANKS * 2 + 2,
            ..MuxServerConfig::default()
        },
    )
    .expect("bind hub server");
    server.set_session_sink(Arc::clone(&hub) as Arc<dyn SessionSink>);
    let addr = server.local_addr().to_string();

    let samples = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for rank in 0..RANKS {
            let addr = addr.clone();
            handles.push(scope.spawn(move || {
                let link = HubLink::connect(&addr, rank as u32, 1, &[], Duration::from_secs(30))
                    .expect("join hub");
                let comm = link.comm();
                let mut local = Vec::new();
                for i in 0..iters {
                    let start = Instant::now();
                    let s = comm.allreduce(i as f64 + rank as f64, &SumOp).unwrap();
                    let elapsed = start.elapsed().as_secs_f64() * 1e9;
                    std::hint::black_box(s);
                    if rank == 0 {
                        local.push(elapsed);
                    }
                }
                link.leave().expect("leave");
                local
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("wire rank"))
            .collect::<Vec<f64>>()
    });
    server.shutdown();
    median(samples)
}

// --- thread-backed rank "processes" for the restart measurement ---------

struct ThreadProc {
    alive: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ProcessHandle for ThreadProc {
    fn id(&self) -> u64 {
        0
    }

    fn poll_exit(&mut self) -> Option<i32> {
        self.done.load(Ordering::Acquire).then_some(-9)
    }

    fn kill(&mut self) {
        self.alive.store(false, Ordering::Release);
    }

    fn wait_exit(&mut self) -> i32 {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        -9
    }
}

struct ThreadLauncher;

impl RankLauncher for ThreadLauncher {
    fn launch(&self, spec: &LaunchSpec) -> std::io::Result<Box<dyn ProcessHandle>> {
        let alive = Arc::new(AtomicBool::new(true));
        let done = Arc::new(AtomicBool::new(false));
        let (a, d) = (Arc::clone(&alive), Arc::clone(&done));
        let spec = spec.clone();
        let thread = std::thread::spawn(move || {
            // Joining drops the link on exit: the socket teardown is the
            // death signal, exactly as for a killed OS process.
            let link = HubLink::connect(
                &spec.addr,
                spec.rank,
                spec.incarnation,
                &[],
                Duration::from_secs(30),
            )
            .expect("rank thread joins");
            while a.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
            drop(link);
            d.store(true, Ordering::Release);
        });
        Ok(Box::new(ThreadProc {
            alive,
            done,
            thread: Some(thread),
        }))
    }
}

/// Median kill→rejoin latency over `rounds` restarts, ms.
fn restart_to_rejoin_ms(rounds: usize) -> f64 {
    let mut config = FleetConfig::new(2);
    config.base_backoff_ns = 2_000_000; // 2ms: measure the floor
    config.max_backoff_ns = 20_000_000;
    config.healthy_after_ns = 1_000_000;
    let sup = FleetSupervisor::new(config, Arc::new(ThreadLauncher), SystemClock::new())
        .expect("bind hub");
    sup.start();
    sup.start_monitor(Duration::from_millis(1));

    let wait_join = |incarnation: u32| {
        let deadline = Instant::now() + Duration::from_secs(30);
        while sup.hub().latest_join(1).map(|(inc, _)| inc) != Some(incarnation) {
            assert!(
                Instant::now() < deadline,
                "rank 1 never reached incarnation {incarnation}"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    };
    wait_join(1);

    let mut samples = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Let the rank reach healthy so the backoff is rewound and every
        // round measures the same (first-draw) schedule.
        std::thread::sleep(Duration::from_millis(5));
        let start = Instant::now();
        assert!(sup.kill_rank(1), "rank 1 must be running");
        wait_join(round as u32 + 2);
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    sup.shutdown();
    median(samples)
}

fn main() {
    let fast = std::env::var_os("CCA_BENCH_FAST").is_some();
    let (allreduce_iters, restart_rounds) = if fast { (200, 3) } else { (2000, 9) };

    cca_obs::set_tracing(false);
    cca_obs::set_counters(false);

    let thread_ns = thread_allreduce_ns(allreduce_iters);
    let wire_ns = wire_allreduce_ns(allreduce_iters);
    let ratio = wire_ns / thread_ns;
    let rejoin_ms = restart_to_rejoin_ms(restart_rounds);

    println!("e16 fleet: thread allreduce   {thread_ns:>12.0} ns");
    println!("e16 fleet: wire allreduce     {wire_ns:>12.0} ns  ({ratio:.1}x)");
    println!("e16 fleet: restart-to-rejoin  {rejoin_ms:>12.2} ms");

    // Gates: the wire collective must stay well under a hydro timestep,
    // and recovery must beat the survivors' park deadline by a wide
    // margin — both sized for a loaded 1-vCPU CI box.
    assert!(
        wire_ns < 50e6,
        "acceptance: wire allreduce {wire_ns:.0} ns must stay under 50 ms"
    );
    assert!(
        rejoin_ms < 5_000.0,
        "acceptance: restart-to-rejoin {rejoin_ms:.1} ms must stay under 5 s"
    );

    let out = std::env::var("BENCH_FLEET_OUT").unwrap_or_else(|_| "BENCH_fleet.json".to_string());
    let tmp = format!("{out}.tmp");
    let json = format!(
        "{{\n  \"schema\": \"cca-bench/1\",\n  \"experiment\": \"e16_fleet\",\n  \
         \"ranks\": {RANKS},\n  \"allreduce_iters\": {allreduce_iters},\n  \
         \"thread_allreduce_ns\": {thread_ns:.0},\n  \"wire_allreduce_ns\": {wire_ns:.0},\n  \
         \"wire_over_thread_ratio\": {ratio:.2},\n  \"restart_rounds\": {restart_rounds},\n  \
         \"restart_to_rejoin_ms\": {rejoin_ms:.3}\n}}\n"
    );
    std::fs::write(&tmp, json).expect("write tmp artifact");
    std::fs::rename(&tmp, &out).expect("publish artifact");
    println!("e16 fleet: wrote {out}");
}
