//! E1 — §6.2's central claim: "the overhead for the privilege of becoming a
//! CCA component is nothing more than a direct function call to the
//! connected object. That is, there is no penalty for using the
//! provides/uses component connection mechanism."
//!
//! Measured ladder, ns/call:
//!   raw_fn            — a plain (non-inlined) function call, the floor;
//!   trait_object      — one virtual dispatch (what "direct function call
//!                       to the connected object" costs in Rust);
//!   port_cached       — a port retrieved once via getPort, then called —
//!                       the CCA direct-connect steady state. The claim
//!                       holds iff port_cached ≈ trait_object;
//!   cached_port_handle— a `CachedPort` revalidated on every call (one
//!                       relaxed atomic generation check + the virtual
//!                       call) — the safe steady state that still observes
//!                       connect/disconnect;
//!   port_get_each_call— pathological: getPort inside the loop, showing
//!                       why components cache their ports.

use cca_core::{CcaServices, PortHandle};
use cca_data::TypeMap;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

trait WorkPort: Send + Sync {
    fn accumulate(&self, x: f64) -> f64;
}

struct WorkImpl {
    bias: f64,
}

impl WorkPort for WorkImpl {
    fn accumulate(&self, x: f64) -> f64 {
        // A body comparable to a tight numerical kernel invocation.
        x * 1.0000001 + self.bias
    }
}

#[inline(never)]
fn raw_fn(bias: f64, x: f64) -> f64 {
    x * 1.0000001 + bias
}

fn wire() -> Arc<CcaServices> {
    let provider = CcaServices::new("provider");
    let obj: Arc<dyn WorkPort> = Arc::new(WorkImpl { bias: 0.5 });
    provider
        .add_provides_port(PortHandle::new("work", "bench.WorkPort", obj))
        .unwrap();
    let user = CcaServices::new("user");
    user.register_uses_port("in", "bench.WorkPort", TypeMap::new())
        .unwrap();
    user.connect_uses("in", provider.get_provides_port("work").unwrap())
        .unwrap();
    user
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_direct_connect");

    group.bench_function("raw_fn", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100 {
                acc = raw_fn(black_box(0.5), black_box(acc));
            }
            acc
        })
    });

    let obj: Arc<dyn WorkPort> = Arc::new(WorkImpl { bias: 0.5 });
    group.bench_function("trait_object", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100 {
                acc = black_box(&obj).accumulate(black_box(acc));
            }
            acc
        })
    });

    let user = wire();
    let port: Arc<dyn WorkPort> = user.get_port_as("in").unwrap();
    group.bench_function("port_cached", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100 {
                acc = black_box(&port).accumulate(black_box(acc));
            }
            acc
        })
    });

    let mut cached = user.cached_port::<dyn WorkPort>("in");
    group.bench_function("cached_port_handle", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100 {
                acc = cached.get().unwrap().accumulate(black_box(acc));
            }
            acc
        })
    });

    group.bench_function("port_get_each_call", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100 {
                let p: Arc<dyn WorkPort> = user.get_port_as("in").unwrap();
                acc = p.accumulate(black_box(acc));
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
