//! E14 — wire-tracing overhead gate, merged into `BENCH_obs.json`.
//!
//! PR 7 teaches the `CCAR` frame to carry a trace context. The claim to
//! defend: with tracing **off**, the new codec and the remote call path
//! cost what the PR-6 versions cost — the extension is zero bytes and the
//! only new work is one relaxed flag load. This bench pins that at two
//! layers:
//!
//! * `wire_pr6_encode_ns` — a verbatim transplant of the PR-6 v1
//!   `encode_frame` (20-byte header, no extension), rebuilt here so the
//!   baseline survives future refactors of the real codec;
//! * `wire_off_encode_ns` — the real v2 `encode_frame_with` fed by
//!   `current_context()` with tracing off, exactly what `MuxTransport`
//!   runs per call. Acceptance: ≤1.1× the PR-6 replica;
//! * `remote_call_off_ns` / `remote_call_on_ns` — a full mux round trip
//!   over a real socket with tracing off vs. on (on = three client spans,
//!   a 16-byte frame extension, and a parented server dispatch span).
//!   Acceptance: tracing on stays within 1.5× of off — causal tracing
//!   must be cheap enough to leave on while chasing a fault.
//!
//! Gated ratios run as alternating baseline/probe rounds and gate on the
//! minimum per-round ratio: the encode quantities differ by nanoseconds,
//! the minimum estimates the L1-hot floor, and interleaving keeps clock
//! or allocator drift between two long separate windows from failing the
//! gate — a genuinely slower probe is slower in *every* round.

use cca_rpc::frame::{encode_frame_with, FrameKind, DEFAULT_MAX_PAYLOAD};
use cca_rpc::transport::Dispatcher;
use cca_rpc::{MuxServer, MuxTransport, ObjRef, Orb, Transport};
use cca_sidl::{DynObject, DynValue, SidlError};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Echo;
impl DynObject for Echo {
    fn sidl_type(&self) -> &str {
        "bench.Echo"
    }
    fn invoke(&self, method: &str, mut args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "echo" => Ok(args.pop().unwrap_or(DynValue::Void)),
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

/// PR-6's `encode_frame`, transplanted verbatim: 20-byte header with two
/// reserved zero bytes where v2 now carries flags and extension length.
/// This is the pre-tracing baseline the wire gate measures against.
fn pr6_encode_frame(kind: u8, request_id: u64, payload: &[u8], max_payload: u32) -> Vec<u8> {
    const PR6_MAGIC: [u8; 4] = *b"CCAR";
    const PR6_VERSION: u8 = 1;
    const PR6_HEADER_LEN: usize = 20;
    assert!(payload.len() <= max_payload as usize);
    let mut out = Vec::with_capacity(PR6_HEADER_LEN + payload.len());
    out.extend_from_slice(&PR6_MAGIC);
    out.push(PR6_VERSION);
    out.push(kind);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn time_iters<R>(iters: u64, f: &mut impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Calibrates a batch size so one run of `f` takes roughly `target`.
fn calibrate<R>(target: Duration, f: &mut impl FnMut() -> R) -> u64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= 1 << 28 {
            return iters;
        }
        iters = if elapsed.is_zero() {
            iters * 16
        } else {
            let scale = target.as_secs_f64() / elapsed.as_secs_f64();
            ((iters as f64 * scale.clamp(1.2, 16.0)) as u64).max(iters + 1)
        };
    }
}

/// Alternating A/B measurement for a gated ratio: each round times the
/// baseline and the probe back to back, keeping the minimum of each and
/// the minimum per-round `probe/baseline` ratio. Interleaving makes the
/// ratio robust against allocator or clock drift between two long
/// separate measurement windows — a genuinely slower probe is slower in
/// *every* round, while one noisy round cannot fail the gate.
fn measure_ratio<RA, RB>(
    samples: usize,
    target: Duration,
    mut baseline: impl FnMut() -> RA,
    mut probe: impl FnMut() -> RB,
) -> (f64, f64, f64) {
    let iters = calibrate(target, &mut baseline);
    calibrate(target, &mut probe); // warm the probe path too
    let (mut best_a, mut best_b, mut best_ratio) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..samples {
        let a = time_iters(iters, &mut baseline);
        let b = time_iters(iters, &mut probe);
        best_a = best_a.min(a);
        best_b = best_b.min(b);
        best_ratio = best_ratio.min(b / a);
    }
    (best_a, best_b, best_ratio)
}

/// Minimum ns/iter over `samples` batches, each auto-calibrated to roughly
/// `target` wall-clock.
fn measure_min<R>(samples: usize, target: Duration, mut f: impl FnMut() -> R) -> f64 {
    let iters = calibrate(target, &mut f);
    (0..samples)
        .map(|_| time_iters(iters, &mut f))
        .fold(f64::INFINITY, f64::min)
}

fn extract_num(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Atomic publication: write next to the target, then rename. A crashed or
/// ctrl-C'd bench run never leaves a truncated JSON for CI to trip over.
fn write_atomic(path: &str, contents: &str) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).unwrap_or_else(|e| panic!("write {tmp}: {e}"));
    std::fs::rename(&tmp, path).unwrap_or_else(|e| panic!("rename {tmp} -> {path}: {e}"));
}

fn main() {
    let fast = std::env::var_os("CCA_BENCH_FAST").is_some();
    let samples = if fast { 7 } else { 15 };
    let target = Duration::from_millis(if fast { 2 } else { 8 });

    cca_obs::set_tracing(false);
    cca_obs::set_counters(false);
    cca_obs::drain();

    // --- codec layer: PR-6 replica vs v2 with tracing off ---------------
    // The probe is exactly the per-call encode work MuxTransport::submit
    // performs: read the current context (one relaxed load when tracing
    // is off), then encode.
    let payload: Vec<u8> = (0..64u8).collect();
    let (pr6_encode, off_encode, encode_ratio) = measure_ratio(
        samples,
        target,
        || pr6_encode_frame(0, black_box(42), black_box(&payload), DEFAULT_MAX_PAYLOAD),
        || {
            encode_frame_with(
                FrameKind::Request,
                black_box(42),
                black_box(&payload),
                DEFAULT_MAX_PAYLOAD,
                cca_obs::trace::current_context(),
            )
            .unwrap()
        },
    );
    // Informational: the same encode inside a live span (16-byte
    // extension on the wire). Not gated — tracing on is opt-in.
    cca_obs::set_tracing(true);
    let root = cca_obs::span("bench.e14.encode");
    let on_encode = measure_min(samples, target, || {
        encode_frame_with(
            FrameKind::Request,
            black_box(42),
            black_box(&payload),
            DEFAULT_MAX_PAYLOAD,
            cca_obs::trace::current_context(),
        )
        .unwrap()
    });
    drop(root);
    cca_obs::set_tracing(false);
    cca_obs::drain();

    // --- transport layer: a real mux round trip, off vs. on -------------
    let orb = Orb::new();
    orb.register("echo", Arc::new(Echo));
    let server = MuxServer::bind("127.0.0.1:0", orb as Arc<dyn Dispatcher>).expect("bind");
    let transport = Arc::new(MuxTransport::new(server.local_addr().to_string()));
    let objref = ObjRef::new("echo", transport as Arc<dyn Transport>);
    for i in 0..200 {
        objref
            .invoke("echo", vec![DynValue::Double(i as f64)])
            .unwrap();
    }
    // Alternating rounds again, flipping the tracing gate around the
    // probe so each round compares off and on under the same conditions.
    let rt_samples = if fast { 5 } else { 9 };
    let rt_target = Duration::from_millis(if fast { 10 } else { 40 });
    let (remote_off, remote_on, remote_ratio) = measure_ratio(
        rt_samples,
        rt_target,
        || {
            cca_obs::set_tracing(false);
            objref.invoke("echo", vec![DynValue::Double(1.0)]).unwrap()
        },
        || {
            cca_obs::set_tracing(true);
            objref.invoke("echo", vec![DynValue::Double(1.0)]).unwrap()
        },
    );
    cca_obs::set_tracing(false);
    let traced_events = cca_obs::drain().len();
    server.shutdown();

    // --- report ----------------------------------------------------------
    println!("e14_wire_trace/pr6_encode        {pr6_encode:>10.2} ns/iter");
    println!(
        "e14_wire_trace/off_encode        {off_encode:>10.2} ns/iter  ({encode_ratio:.3}x pr6)"
    );
    println!("e14_wire_trace/on_encode         {on_encode:>10.2} ns/iter  (+16 B extension)");
    println!("e14_wire_trace/remote_call_off   {remote_off:>10.2} ns/call");
    println!(
        "e14_wire_trace/remote_call_on    {remote_on:>10.2} ns/call  \
         ({remote_ratio:.3}x off, {traced_events} events buffered)"
    );

    // --- merge into BENCH_obs.json (E10's keys survive) ------------------
    let out = std::env::var("BENCH_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".to_string());
    let existing = std::fs::read_to_string(&out).unwrap_or_default();
    let mut fields: Vec<(String, Option<f64>)> = [
        "bare_virtual_call_ns",
        "pr1_replica_ns",
        "cached_off_ns",
        "cached_counters_ns",
        "off_over_pr1_ratio",
        "counters_over_pr1_ratio",
        "span_off_ns",
        "span_on_ns",
        "orb_round_trips",
        "orb_bytes_out",
        "orb_bytes_in",
    ]
    .iter()
    .map(|k| (k.to_string(), extract_num(&existing, k)))
    .collect();
    fields.extend([
        ("wire_pr6_encode_ns".to_string(), Some(pr6_encode)),
        ("wire_off_encode_ns".to_string(), Some(off_encode)),
        ("wire_off_over_pr6_ratio".to_string(), Some(encode_ratio)),
        ("remote_call_off_ns".to_string(), Some(remote_off)),
        ("remote_call_on_ns".to_string(), Some(remote_on)),
        ("remote_on_over_off_ratio".to_string(), Some(remote_ratio)),
    ]);
    let mut json = String::from(
        "{\n  \"schema\": \"cca-bench/1\",\n  \"experiment\": \"e10_obs_overhead+e14_wire_trace\",\n",
    );
    for (key, value) in fields.iter().filter_map(|(k, v)| v.map(|v| (k, v))) {
        json.push_str(&format!("  \"{key}\": {value:.3},\n"));
    }
    json.truncate(json.trim_end_matches(",\n").len());
    json.push_str("\n}\n");
    write_atomic(&out, &json);
    println!("wrote {out}");

    // --- acceptance gates ------------------------------------------------
    assert!(
        encode_ratio <= 1.1,
        "acceptance: tracing-off v2 frame encode must stay within 1.1x of \
         the PR-6 codec (measured {encode_ratio:.3}x)"
    );
    assert!(
        remote_ratio <= 1.5,
        "acceptance: tracing-on mux round trips must stay within 1.5x of \
         tracing-off (measured {remote_ratio:.3}x)"
    );
    assert!(
        traced_events > 0,
        "acceptance: the tracing-on loop must actually record spans"
    );
    assert!(
        remote_off > 0.0 && remote_on > 0.0,
        "acceptance: round trips must be measurable"
    );
}
