//! E7 — §2.2's dynamic interactions, costed:
//!
//!   step_with_viz/{0,1}  — a simulation timestep with zero or one
//!                          attached visualization consumers (the attach
//!                          cost is per-frame field extraction +
//!                          redistribution, proportional to field bytes —
//!                          never a restructuring of the simulation);
//!   reconnect/redirect   — the builder operation that swaps a provider
//!                          behind a live uses port: O(bookkeeping), not
//!                          O(simulation state);
//!   attach_detach        — full component add + connect + disconnect +
//!                          remove cycle.

use cca::core::CcaServices;
use cca::framework::Framework;
use cca::repository::Repository;
use cca::solvers::precond::Identity;
use cca::solvers::{HydroConfig, HydroSim};
use cca::viz::monitor::FieldProviderComponent;
use cca::viz::{InMemoryFieldSource, MonitorComponent};
use cca_data::{DistArrayDesc, Distribution};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn cfg() -> HydroConfig {
    HydroConfig {
        nx: 32,
        ny: 32,
        ..Default::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_dynamic_attach");
    group.sample_size(20);

    // Timestep with 0 or 1 attached monitors.
    for viz_count in [0usize, 1] {
        group.bench_with_input(
            BenchmarkId::new("step_with_viz", viz_count),
            &viz_count,
            |b, &viz_count| {
                let mut sim = HydroSim::new(cfg(), 1, 0);
                let source = InMemoryFieldSource::new();
                let desc =
                    DistArrayDesc::new(&[cfg().nx, cfg().ny], Distribution::serial(2).unwrap())
                        .unwrap();
                let fw = Framework::new(Repository::new());
                fw.add_instance("sim0", FieldProviderComponent::new(source.clone()))
                    .unwrap();
                let monitors: Vec<Arc<MonitorComponent>> = (0..viz_count)
                    .map(|i| {
                        let m = MonitorComponent::new("u");
                        fw.add_instance(format!("viz{i}"), m.clone()).unwrap();
                        fw.connect(&format!("viz{i}"), "fields", "sim0", "fields")
                            .unwrap();
                        m
                    })
                    .collect();
                b.iter(|| {
                    sim.step(None, &Identity).unwrap();
                    if !monitors.is_empty() {
                        source
                            .publish("u", desc.clone(), vec![sim.u.clone()])
                            .unwrap();
                        for m in &monitors {
                            m.capture().unwrap();
                        }
                    }
                });
            },
        );
    }

    // Builder redirect cost (swap provider behind a live uses port).
    group.bench_function("redirect_provider", |b| {
        use cca::core::{CcaError, Component, PortHandle};
        use cca_data::TypeMap;
        struct Prov;
        impl Component for Prov {
            fn component_type(&self) -> &str {
                "bench.P"
            }
            fn set_services(&self, s: Arc<CcaServices>) -> Result<(), CcaError> {
                s.add_provides_port(PortHandle::new("out", "bench.T", Arc::new(0u8)))
            }
        }
        struct User;
        impl Component for User {
            fn component_type(&self) -> &str {
                "bench.U"
            }
            fn set_services(&self, s: Arc<CcaServices>) -> Result<(), CcaError> {
                s.register_uses_port("in", "bench.T", TypeMap::new())
            }
        }
        let fw = Framework::new(Repository::new());
        fw.add_instance("a", Arc::new(Prov)).unwrap();
        fw.add_instance("b", Arc::new(Prov)).unwrap();
        fw.add_instance("u", Arc::new(User)).unwrap();
        fw.connect("u", "in", "a", "out").unwrap();
        let mut current = "a";
        b.iter(|| {
            let next = if current == "a" { "b" } else { "a" };
            fw.redirect("u", "in", current, next, "out").unwrap();
            current = next;
        });
    });

    // Full attach/detach cycle of a monitor component.
    group.bench_function("attach_detach_cycle", |b| {
        let source = InMemoryFieldSource::new();
        let fw = Framework::new(Repository::new());
        fw.add_instance("sim0", FieldProviderComponent::new(source))
            .unwrap();
        let mut k = 0u64;
        b.iter(|| {
            let name = format!("viz{k}");
            k += 1;
            let m = MonitorComponent::new("u");
            fw.add_instance(&name, m).unwrap();
            fw.connect(&name, "fields", "sim0", "fields").unwrap();
            fw.destroy_instance(&name).unwrap();
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
