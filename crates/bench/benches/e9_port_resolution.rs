//! E9 — the PR's acceptance measurement: port-resolution cost ladder and
//! plan-cache behavior, recorded to `BENCH_ports.json`.
//!
//! §6.2 claims a direct-connected port call costs nothing beyond a virtual
//! function call. This bench quantifies the claim for the current
//! implementation:
//!
//! * `bare_virtual_call_ns` — calling through a plain `Arc<dyn Trait>`,
//!   the floor;
//! * `cached_port_ns` — calling through [`cca_core::CachedPort`]: one
//!   relaxed atomic generation check + the same virtual call. Acceptance:
//!   within 3× of the floor;
//! * `uncached_get_port_ns` — full `get_port_as` per call (snapshot read,
//!   BTreeMap lookup, downcast): the price the cache removes;
//! * `fanout8_ns` — one multicast over 8 connected listeners through the
//!   shared `Arc<[PortHandle]>` snapshot (zero allocations per call);
//! * plan-cache build vs. hit latency plus hit/build counters across five
//!   simulated timesteps.
//!
//! Uses its own wall-clock sampler (median of batched runs) rather than
//! criterion so the ratios land in one JSON file the CI trend can track.

use cca_core::{CcaServices, PortHandle};
use cca_data::{DimDist, DistArrayDesc, Distribution, ProcessGrid, RedistPlan, TypeMap};
use cca_framework::{MxNPort, PlanCache};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

trait WorkPort: Send + Sync {
    fn accumulate(&self, x: f64) -> f64;
}

struct WorkImpl {
    bias: f64,
}

impl WorkPort for WorkImpl {
    fn accumulate(&self, x: f64) -> f64 {
        x * 1.0000001 + self.bias
    }
}

/// Median ns/iter over `samples` batches, each auto-calibrated to roughly
/// `target` of wall-clock time.
fn measure<R>(samples: usize, target: Duration, mut f: impl FnMut() -> R) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= 1 << 28 {
            break;
        }
        iters = if elapsed.is_zero() {
            iters * 16
        } else {
            let scale = target.as_secs_f64() / elapsed.as_secs_f64();
            ((iters as f64 * scale.clamp(1.2, 16.0)) as u64).max(iters + 1)
        };
    }
    let mut results: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    results.sort_by(|a, b| a.partial_cmp(b).unwrap());
    results[results.len() / 2]
}

fn wire_single() -> Arc<CcaServices> {
    let provider = CcaServices::new("provider");
    let obj: Arc<dyn WorkPort> = Arc::new(WorkImpl { bias: 0.5 });
    provider
        .add_provides_port(PortHandle::new("work", "bench.WorkPort", obj))
        .unwrap();
    let user = CcaServices::new("user");
    user.register_uses_port("in", "bench.WorkPort", TypeMap::new())
        .unwrap();
    user.connect_uses("in", provider.get_provides_port("work").unwrap())
        .unwrap();
    user
}

fn wire_fanout(n: usize) -> Arc<CcaServices> {
    let user = CcaServices::new("emitter");
    user.register_uses_port("events", "bench.WorkPort", TypeMap::new())
        .unwrap();
    for i in 0..n {
        let provider = CcaServices::new(format!("listener{i}"));
        let obj: Arc<dyn WorkPort> = Arc::new(WorkImpl { bias: i as f64 });
        provider
            .add_provides_port(PortHandle::new("in", "bench.WorkPort", obj))
            .unwrap();
        user.connect_uses("events", provider.get_provides_port("in").unwrap())
            .unwrap();
    }
    user
}

fn main() {
    let fast = std::env::var_os("CCA_BENCH_FAST").is_some();
    let samples = if fast { 5 } else { 11 };
    let target = Duration::from_millis(if fast { 2 } else { 8 });

    // --- port-resolution ladder ----------------------------------------
    let obj: Arc<dyn WorkPort> = Arc::new(WorkImpl { bias: 0.5 });
    let bare = measure(samples, target, || {
        black_box(&obj).accumulate(black_box(1.0))
    });

    let user = wire_single();
    let mut cached = user.cached_port::<dyn WorkPort>("in");
    cached.get().unwrap();
    let cached_ns = measure(samples, target, || {
        cached.get().unwrap().accumulate(black_box(1.0))
    });

    let uncached = measure(samples, target, || {
        let p: Arc<dyn WorkPort> = user.get_port_as("in").unwrap();
        p.accumulate(black_box(1.0))
    });

    // --- fan-out over the shared snapshot ------------------------------
    let emitter = wire_fanout(8);
    let fanout8 = measure(samples, target, || {
        let mut acc = 0.0;
        for h in emitter.get_ports("events").unwrap().iter() {
            let l: Arc<dyn WorkPort> = h.typed().unwrap();
            acc = l.accumulate(black_box(acc));
        }
        acc
    });

    // --- plan cache across simulated timesteps -------------------------
    let src = DistArrayDesc::new(&[4096], Distribution::block_1d(4, 1).unwrap()).unwrap();
    let dst = DistArrayDesc::new(
        &[4096],
        Distribution::new(ProcessGrid::linear(3).unwrap(), &[DimDist::Cyclic]).unwrap(),
    )
    .unwrap();

    let build_ns = measure(samples.min(7), target, || {
        RedistPlan::build(&src, &dst).unwrap()
    });

    let cache = PlanCache::new();
    cache.get_or_build(&src, &dst).unwrap(); // prime: the "first timestep"
    let hit_ns = measure(samples, target, || cache.get_or_build(&src, &dst).unwrap());

    let cache = PlanCache::new();
    let builds_before = RedistPlan::build_count();
    for step in 0..5u32 {
        let port = MxNPort::with_cache(
            &src,
            &dst,
            vec![0, 1, 2, 3],
            vec![0, 1, 2],
            90 + step,
            &cache,
        )
        .unwrap();
        black_box(port.plan().total_elements());
    }
    let timestep_builds = RedistPlan::build_count() - builds_before;

    // --- report ---------------------------------------------------------
    let cached_ratio = cached_ns / bare;
    let uncached_ratio = uncached / bare;
    println!("e9_port_resolution/bare_virtual_call      {bare:>10.2} ns/iter");
    println!(
        "e9_port_resolution/cached_port            {cached_ns:>10.2} ns/iter  ({cached_ratio:.2}x bare)"
    );
    println!(
        "e9_port_resolution/uncached_get_port_as   {uncached:>10.2} ns/iter  ({uncached_ratio:.2}x bare)"
    );
    println!("e9_port_resolution/fanout8                {fanout8:>10.2} ns/iter");
    println!("e9_port_resolution/plan_build             {build_ns:>10.2} ns");
    println!("e9_port_resolution/plan_cache_hit         {hit_ns:>10.2} ns");
    println!(
        "e9_port_resolution/timestep_builds        {timestep_builds} (5 timesteps, cache hits {})",
        cache.hits()
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"cca-bench/1\",\n",
            "  \"experiment\": \"e9_port_resolution\",\n",
            "  \"bare_virtual_call_ns\": {:.3},\n",
            "  \"cached_port_ns\": {:.3},\n",
            "  \"uncached_get_port_ns\": {:.3},\n",
            "  \"cached_over_bare_ratio\": {:.3},\n",
            "  \"uncached_over_bare_ratio\": {:.3},\n",
            "  \"fanout8_ns\": {:.3},\n",
            "  \"plan_build_ns\": {:.1},\n",
            "  \"plan_cache_hit_ns\": {:.1},\n",
            "  \"timestep_plan_builds\": {},\n",
            "  \"timestep_plan_hits\": {}\n",
            "}}\n"
        ),
        bare,
        cached_ns,
        uncached,
        cached_ratio,
        uncached_ratio,
        fanout8,
        build_ns,
        hit_ns,
        timestep_builds,
        cache.hits()
    );
    let out = std::env::var("BENCH_PORTS_OUT").unwrap_or_else(|_| "BENCH_ports.json".to_string());
    // Atomic publication (write-then-rename): a crashed run never leaves a
    // truncated JSON for the CI parse check to trip over.
    let tmp = format!("{out}.tmp");
    std::fs::write(&tmp, &json).expect("write BENCH_ports.json.tmp");
    std::fs::rename(&tmp, &out).expect("rename into BENCH_ports.json");
    println!("wrote {out}");

    assert!(
        cached_ratio <= 3.0,
        "acceptance: cached port call must be within 3x of a bare virtual call \
         (measured {cached_ratio:.2}x)"
    );
    assert_eq!(
        timestep_builds, 1,
        "acceptance: no RedistPlan::build after the first timestep"
    );
}
