//! E3 — §3's comparison with industry component standards: CORBA "is far
//! too inefficient when a method call is made within the same address
//! space."
//!
//! Ladder, per call:
//!   direct_port      — CCA direct-connect (one virtual call);
//!   dynamic_facade   — the reflective DynObject call (no marshaling);
//!   orb_loopback/*   — the CORBA-shaped path *within one address space*:
//!                      marshal → dispatch-by-name → demarshal, swept over
//!                      argument sizes (scalar, 1 KiB, 64 KiB arrays);
//!   orb_lan/*        — the same through the simulated-LAN transport, the
//!                      regime CORBA was actually designed for.
//!
//! Expected shape: orb_loopback ≳ 100× direct_port for scalar args; the
//! array sweep shows the per-byte marshal cost; orb_lan is dominated by
//! simulated latency — i.e. CORBA's costs are tolerable *between* hosts
//! and intolerable *inside* one, which is the paper's argument for
//! direct-connect ports.

use cca_data::NdArray;
use cca_rpc::{LatencyTransport, LoopbackTransport, ObjRef, Orb};
use cca_sidl::{DynObject, DynValue, SidlError};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

trait SumPort: Send + Sync {
    fn total(&self, x: f64) -> f64;
    fn array_total(&self, data: &NdArray<f64>) -> f64;
}

struct SumImpl;

impl SumPort for SumImpl {
    fn total(&self, x: f64) -> f64 {
        x + 1.0
    }
    fn array_total(&self, data: &NdArray<f64>) -> f64 {
        data.as_slice().iter().sum()
    }
}

impl DynObject for SumImpl {
    fn sidl_type(&self) -> &str {
        "bench.SumPort"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "total" => Ok(DynValue::Double(self.total(args[0].as_double()?))),
            "arrayTotal" => Ok(DynValue::Double(
                self.array_total(args[0].as_double_array()?),
            )),
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_orb_baseline");

    // Direct-connect reference.
    let port: Arc<dyn SumPort> = Arc::new(SumImpl);
    group.bench_function("direct_port", |b| {
        b.iter(|| black_box(&port).total(black_box(1.0)))
    });

    // Dynamic facade (no marshaling, name dispatch only).
    let dyn_port: Arc<dyn DynObject> = Arc::new(SumImpl);
    group.bench_function("dynamic_facade", |b| {
        b.iter(|| {
            black_box(&dyn_port)
                .invoke("total", vec![DynValue::Double(black_box(1.0))])
                .unwrap()
        })
    });

    // The ORB in the same address space.
    let orb = Orb::new();
    orb.register("sum", Arc::new(SumImpl));
    let objref = ObjRef::loopback("sum", Arc::clone(&orb));
    group.bench_function("orb_loopback/scalar", |b| {
        b.iter(|| {
            objref
                .invoke("total", vec![DynValue::Double(black_box(1.0))])
                .unwrap()
        })
    });

    for n in [128usize, 8192] {
        // 1 KiB and 64 KiB of doubles.
        let arr = NdArray::from_vec(&[n], vec![1.0f64; n]).unwrap();
        group.bench_with_input(
            BenchmarkId::new("orb_loopback/array_doubles", n),
            &arr,
            |b, arr| {
                b.iter(|| {
                    objref
                        .invoke("arrayTotal", vec![DynValue::DoubleArray(arr.clone())])
                        .unwrap()
                })
            },
        );
        // Same payload over the direct port: the cost CORBA adds is the
        // difference.
        group.bench_with_input(
            BenchmarkId::new("direct_port/array_doubles", n),
            &arr,
            |b, arr| b.iter(|| black_box(&port).array_total(black_box(arr))),
        );
    }

    group.finish();

    // The ORB across the simulated LAN (100 µs + 10 ns/byte).
    let remote_orb = Orb::new();
    remote_orb.register("sum", Arc::new(SumImpl));
    let lan = LatencyTransport::new(
        LoopbackTransport::new(remote_orb),
        Duration::from_micros(100),
        Duration::from_nanos(10),
    );
    let remote_ref = ObjRef::new("sum", lan);
    let mut slow = c.benchmark_group("e3_orb_baseline_lan");
    slow.sample_size(20);
    slow.bench_function("orb_lan/scalar", |b| {
        b.iter(|| {
            remote_ref
                .invoke("total", vec![DynValue::Double(black_box(1.0))])
                .unwrap()
        })
    });
    slow.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
