//! E2 — §6.2: "The cost of the intervening SIDL binding for language
//! independence is estimated to be approximately 2-3 function calls per
//! interface method call."
//!
//! Uses the *actual generated bindings* (`cca::generated::demo::Counter`,
//! produced by build.rs from sidl/esi.sidl):
//!
//!   direct_impl — calling the concrete implementation;
//!   vtable      — calling through `Arc<dyn Counter>` (1 indirect call);
//!   sidl_stub   — the generated `CounterStub` path: stub (#[inline(never)])
//!                 → vtable → impl, the Babel binding structure. The paper
//!                 predicts ≈ 2–3 `raw_call`-units; compare against
//!                 `call_unit` to express the measured ratio.

use cca::generated::demo;
use cca::sidl::SidlError;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

struct CounterImpl {
    value: AtomicI64,
}

impl CounterImpl {
    #[inline(never)]
    fn add_concrete(&self, delta: i64) -> i64 {
        self.value.fetch_add(delta, Ordering::Relaxed) + delta
    }
}

impl demo::Counter for CounterImpl {
    fn add(&self, delta: i64) -> Result<i64, SidlError> {
        Ok(self.add_concrete(delta))
    }
    fn current(&self) -> Result<i64, SidlError> {
        Ok(self.value.load(Ordering::Relaxed))
    }
    fn reset(&self) -> Result<(), SidlError> {
        self.value.store(0, Ordering::Relaxed);
        Ok(())
    }
    fn describe(&self, prefix: &str) -> Result<String, SidlError> {
        Ok(format!("{prefix}{}", self.value.load(Ordering::Relaxed)))
    }
}

/// One empty non-inlined call: the "function call" unit the paper's 2-3×
/// estimate is expressed in.
#[inline(never)]
fn unit_call(x: i64) -> i64 {
    black_box(x)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_sidl_binding");

    group.bench_function("call_unit", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for _ in 0..100 {
                acc = unit_call(black_box(acc + 1));
            }
            acc
        })
    });

    let concrete = CounterImpl {
        value: AtomicI64::new(0),
    };
    group.bench_function("direct_impl", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for _ in 0..100 {
                acc = concrete.add_concrete(black_box(1));
            }
            acc
        })
    });

    let dyn_counter: Arc<dyn demo::Counter> = Arc::new(CounterImpl {
        value: AtomicI64::new(0),
    });
    group.bench_function("vtable", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for _ in 0..100 {
                acc = black_box(&dyn_counter).add(black_box(1)).unwrap();
            }
            acc
        })
    });

    let stub = demo::CounterStub(Arc::new(CounterImpl {
        value: AtomicI64::new(0),
    }));
    group.bench_function("sidl_stub", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for _ in 0..100 {
                acc = black_box(&stub).add(black_box(1)).unwrap();
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
