//! E10 — observability overhead gate, recorded to `BENCH_obs.json`.
//!
//! The whole point of `cca-obs` is that §6.2's "no penalty" claim keeps
//! holding with the instrumentation compiled in. This bench pins that:
//!
//! * `pr1_replica_ns` — a hand-written copy of the pre-observability
//!   CachedPort steady state (one relaxed generation load + compare +
//!   memoized `Arc` borrow). This is the PR-1 baseline the gates are
//!   measured against, rebuilt here so the comparison survives future
//!   refactors of the real type;
//! * `cached_off_ns` — the real `CachedPort::get` with counters and
//!   tracing off. Acceptance: ≤1.1× the replica — turning observability
//!   *off* must cost at most the one extra flag load;
//! * `cached_counters_ns` — the same call with counters on (per-port call
//!   shard bump). Acceptance: ≤1.5× the replica;
//! * `span_on_ns` / `span_off_ns` — creating and dropping one tracer span
//!   with tracing on vs. off (the off case is the price every framework
//!   operation pays unconditionally);
//! * ORB byte accounting: round trips and payload bytes for a handful of
//!   proxied calls, proving the transport metrics see both directions.
//!
//! Minimum-of-samples is used for the gated ratios (not median): the
//! quantities differ by fractions of a nanosecond, and the minimum is the
//! standard estimator for the true cost of an L1-hot loop.

use cca_core::{CcaServices, PortHandle};
use cca_data::TypeMap;
use cca_rpc::{ObjRef, Orb};
use cca_sidl::{DynObject, DynValue, SidlError};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

trait WorkPort: Send + Sync {
    fn accumulate(&self, x: f64) -> f64;
}

struct WorkImpl {
    bias: f64,
}

impl WorkPort for WorkImpl {
    fn accumulate(&self, x: f64) -> f64 {
        x * 1.0000001 + self.bias
    }
}

impl DynObject for WorkImpl {
    fn sidl_type(&self) -> &str {
        "bench.WorkPort"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "accumulate" => Ok(DynValue::Double(self.accumulate(args[0].as_double()?))),
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

/// PR-1's `CachedPort`, transplanted verbatim (modulo the public
/// `generation()` accessor) and compiled against today's `CcaServices`:
/// generation load, staleness compare against the `Option` memo,
/// out-of-line revalidation through `get_port_as`. No flag check, no
/// metrics — the pre-observability baseline the gates measure against.
struct Pr1Replica<P: ?Sized + Send + Sync + 'static> {
    services: Arc<CcaServices>,
    name: Arc<str>,
    seen_generation: u64,
    port: Option<Arc<P>>,
}

impl<P: ?Sized + Send + Sync + 'static> Pr1Replica<P> {
    fn new(services: Arc<CcaServices>, name: impl Into<Arc<str>>) -> Self {
        Pr1Replica {
            services,
            name: name.into(),
            seen_generation: 0,
            port: None,
        }
    }

    #[inline]
    fn get(&mut self) -> Result<&Arc<P>, cca_core::CcaError> {
        let generation = self.services.generation();
        if self.port.is_none() || generation != self.seen_generation {
            self.revalidate(generation)?;
        }
        Ok(self.port.as_ref().unwrap())
    }

    #[cold]
    fn revalidate(&mut self, generation: u64) -> Result<(), cca_core::CcaError> {
        self.port = None;
        let resolved = self.services.get_port_as::<P>(&self.name)?;
        self.port = Some(resolved);
        self.seen_generation = generation;
        Ok(())
    }
}

/// Minimum ns/iter over `samples` batches, each auto-calibrated to roughly
/// `target` wall-clock.
fn measure_min<R>(samples: usize, target: Duration, mut f: impl FnMut() -> R) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= 1 << 28 {
            break;
        }
        iters = if elapsed.is_zero() {
            iters * 16
        } else {
            let scale = target.as_secs_f64() / elapsed.as_secs_f64();
            ((iters as f64 * scale.clamp(1.2, 16.0)) as u64).max(iters + 1)
        };
    }
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

fn wire_single() -> Arc<CcaServices> {
    let provider = CcaServices::new("provider");
    let obj: Arc<dyn WorkPort> = Arc::new(WorkImpl { bias: 0.5 });
    provider
        .add_provides_port(PortHandle::new("work", "bench.WorkPort", obj))
        .unwrap();
    let user = CcaServices::new("user");
    user.register_uses_port("in", "bench.WorkPort", TypeMap::new())
        .unwrap();
    user.connect_uses("in", provider.get_provides_port("work").unwrap())
        .unwrap();
    user
}

/// Atomic publication: write next to the target, then rename. A crashed or
/// ctrl-C'd bench run never leaves a truncated JSON for CI to trip over.
fn write_atomic(path: &str, contents: &str) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).unwrap_or_else(|e| panic!("write {tmp}: {e}"));
    std::fs::rename(&tmp, path).unwrap_or_else(|e| panic!("rename {tmp} -> {path}: {e}"));
}

fn main() {
    let fast = std::env::var_os("CCA_BENCH_FAST").is_some();
    let samples = if fast { 7 } else { 15 };
    let target = Duration::from_millis(if fast { 2 } else { 8 });

    // Make the flag state explicit regardless of the environment.
    cca_obs::set_tracing(false);
    cca_obs::set_counters(false);

    // --- bare floor and PR-1 replica -----------------------------------
    let obj: Arc<dyn WorkPort> = Arc::new(WorkImpl { bias: 0.5 });
    let bare = measure_min(samples, target, || {
        black_box(&obj).accumulate(black_box(1.0))
    });

    let user = wire_single();
    let mut replica = Pr1Replica::<dyn WorkPort>::new(Arc::clone(&user), "in");
    replica.get().unwrap();
    let pr1 = measure_min(samples, target, || {
        black_box(&mut replica)
            .get()
            .unwrap()
            .accumulate(black_box(1.0))
    });

    // --- the real CachedPort, observability off ------------------------
    let mut cached = user.cached_port::<dyn WorkPort>("in");
    cached.get().unwrap();
    let cached_off = measure_min(samples, target, || {
        black_box(&mut cached)
            .get()
            .unwrap()
            .accumulate(black_box(1.0))
    });

    // --- counters on ----------------------------------------------------
    cca_obs::set_counters(true);
    cached.get().unwrap(); // re-prime under the new flag state
    let cached_counters = measure_min(samples, target, || {
        black_box(&mut cached)
            .get()
            .unwrap()
            .accumulate(black_box(1.0))
    });
    let counted = user.port_metrics("in").unwrap().calls();
    cca_obs::set_counters(false);

    // --- span cost, tracing off vs. on ----------------------------------
    let span_off = measure_min(samples, target, || {
        let _span = cca_obs::span("bench.noop");
    });
    cca_obs::set_tracing(true);
    let span_on = measure_min(samples, target, || {
        let _span = cca_obs::span("bench.noop");
    });
    cca_obs::set_tracing(false);
    let traced_events = cca_obs::drain().len();

    // --- ORB byte accounting --------------------------------------------
    let orb = Orb::new();
    orb.register("work", Arc::new(WorkImpl { bias: 0.5 }));
    let objref = ObjRef::loopback("work", Arc::clone(&orb));
    cca_obs::set_counters(true);
    for i in 0..64 {
        objref
            .invoke("accumulate", vec![DynValue::Double(i as f64)])
            .unwrap();
    }
    cca_obs::set_counters(false);
    let rpc = objref.metrics().snapshot();

    // --- report ----------------------------------------------------------
    let off_ratio = cached_off / pr1;
    let counters_ratio = cached_counters / pr1;
    println!("e10_obs_overhead/bare_virtual_call    {bare:>10.2} ns/iter");
    println!("e10_obs_overhead/pr1_replica          {pr1:>10.2} ns/iter");
    println!(
        "e10_obs_overhead/cached_off           {cached_off:>10.2} ns/iter  ({off_ratio:.3}x pr1)"
    );
    println!(
        "e10_obs_overhead/cached_counters      {cached_counters:>10.2} ns/iter  ({counters_ratio:.3}x pr1, {counted} calls counted)"
    );
    println!("e10_obs_overhead/span_off             {span_off:>10.2} ns/iter");
    println!("e10_obs_overhead/span_on              {span_on:>10.2} ns/iter  ({traced_events} events buffered)");
    println!(
        "e10_obs_overhead/orb_round_trips      {} ({} B out, {} B in)",
        rpc.round_trips, rpc.bytes_out, rpc.bytes_in
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"cca-bench/1\",\n",
            "  \"experiment\": \"e10_obs_overhead\",\n",
            "  \"bare_virtual_call_ns\": {:.3},\n",
            "  \"pr1_replica_ns\": {:.3},\n",
            "  \"cached_off_ns\": {:.3},\n",
            "  \"cached_counters_ns\": {:.3},\n",
            "  \"off_over_pr1_ratio\": {:.3},\n",
            "  \"counters_over_pr1_ratio\": {:.3},\n",
            "  \"span_off_ns\": {:.3},\n",
            "  \"span_on_ns\": {:.3},\n",
            "  \"orb_round_trips\": {},\n",
            "  \"orb_bytes_out\": {},\n",
            "  \"orb_bytes_in\": {}\n",
            "}}\n"
        ),
        bare,
        pr1,
        cached_off,
        cached_counters,
        off_ratio,
        counters_ratio,
        span_off,
        span_on,
        rpc.round_trips,
        rpc.bytes_out,
        rpc.bytes_in
    );
    let out = std::env::var("BENCH_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".to_string());
    write_atomic(&out, &json);
    println!("wrote {out}");

    // --- acceptance gates ------------------------------------------------
    assert!(
        off_ratio <= 1.1,
        "acceptance: observability-off CachedPort::get must stay within 1.1x \
         of the PR-1 fast path (measured {off_ratio:.3}x)"
    );
    assert!(
        counters_ratio <= 1.5,
        "acceptance: counters-on CachedPort::get must stay within 1.5x of \
         the PR-1 fast path (measured {counters_ratio:.3}x)"
    );
    assert!(
        counted > 0,
        "acceptance: counters-on run must actually be counted"
    );
    assert!(
        traced_events > 0,
        "acceptance: tracing-on spans must reach the ring buffers"
    );
    assert_eq!(
        rpc.round_trips, 64,
        "acceptance: every proxied call counted"
    );
    assert_eq!(
        rpc.per_method,
        vec![("accumulate".to_string(), 64)],
        "acceptance: per-method attribution"
    );
}
