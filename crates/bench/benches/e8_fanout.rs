//! E8 — §6.1: "Note that this means one call may correspond to zero or
//! more invocations on provider components."
//!
//! Measures a uses-port fan-out call against the number of connected
//! listeners (0, 1, 2, 4, 8). Expected shape: cost linear in the listener
//! count, with the zero-listener case costing only the (cheap) empty-list
//! traversal — events into the void are nearly free, as the
//! listener-pattern design intends.

use cca_core::{CcaServices, PortHandle};
use cca_data::TypeMap;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

trait EventPort: Send + Sync {
    fn notify(&self, value: f64);
}

struct Listener {
    seen: AtomicU64,
}

impl EventPort for Listener {
    fn notify(&self, value: f64) {
        self.seen.fetch_add(value as u64, Ordering::Relaxed);
    }
}

fn wire(n_listeners: usize) -> Arc<CcaServices> {
    let user = CcaServices::new("emitter");
    user.register_uses_port("events", "bench.EventPort", TypeMap::new())
        .unwrap();
    for i in 0..n_listeners {
        let provider = CcaServices::new(format!("listener{i}"));
        let obj: Arc<dyn EventPort> = Arc::new(Listener {
            seen: AtomicU64::new(0),
        });
        provider
            .add_provides_port(PortHandle::new("in", "bench.EventPort", obj))
            .unwrap();
        user.connect_uses("events", provider.get_provides_port("in").unwrap())
            .unwrap();
    }
    user
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_fanout");
    for n in [0usize, 1, 2, 4, 8] {
        let user = wire(n);
        // Pre-resolve the listener list once (the steady-state pattern)…
        let cached: Vec<Arc<dyn EventPort>> = user
            .get_ports("events")
            .unwrap()
            .iter()
            .map(|h| h.typed().unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::new("cached_listeners", n), &n, |b, _| {
            b.iter(|| {
                for l in &cached {
                    l.notify(black_box(1.0));
                }
            })
        });
        // …and the per-call resolution variant (listener set may change
        // between calls under dynamic reconfiguration). `get_ports` hands
        // back the shared `Arc<[PortHandle]>` snapshot, so this loop does
        // zero heap allocations per call.
        group.bench_with_input(BenchmarkId::new("resolve_each_call", n), &n, |b, _| {
            b.iter(|| {
                for h in user.get_ports("events").unwrap().iter() {
                    let l: Arc<dyn EventPort> = h.typed().unwrap();
                    l.notify(black_box(1.0));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
