//! E5 — §5's reflection and dynamic method invocation: "components and the
//! associated composition tools and frameworks must discover, query, and
//! execute methods at run time."
//!
//! Ladder, per call, on the *generated* bindings:
//!   static_stub      — the generated typed stub (E2's path);
//!   dynamic_invoke   — the generated skeleton's `invoke(name, args)`;
//!   dynamic_checked  — the same plus reflection-driven arity/type
//!                      validation (`invoke_checked`), what a composition
//!                      tool calling an unknown component pays;
//!   reflection_query — pure metadata lookup (type → method), the
//!                      discovery operation builders run while wiring.
//!
//! Expected shape: dynamic ≈ 5–50× static (boxing + name dispatch), both
//! orders of magnitude below the ORB path of E3.

use cca::generated::demo;
use cca::sidl::dynamic::invoke_checked;
use cca::sidl::{DynObject, DynValue, Reflection, SidlError};
use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use std::hint::black_box;
use std::sync::Arc;

struct CounterImpl {
    value: Mutex<i64>,
}

impl demo::Counter for CounterImpl {
    fn add(&self, delta: i64) -> Result<i64, SidlError> {
        let mut v = self.value.lock();
        *v += delta;
        Ok(*v)
    }
    fn current(&self) -> Result<i64, SidlError> {
        Ok(*self.value.lock())
    }
    fn reset(&self) -> Result<(), SidlError> {
        *self.value.lock() = 0;
        Ok(())
    }
    fn describe(&self, prefix: &str) -> Result<String, SidlError> {
        Ok(format!("{prefix}{}", *self.value.lock()))
    }
}

const SIDL: &str = include_str!("../../../sidl/esi.sidl");

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_reflection");

    let stub = demo::CounterStub(Arc::new(CounterImpl {
        value: Mutex::new(0),
    }));
    group.bench_function("static_stub", |b| {
        b.iter(|| black_box(&stub).add(black_box(1)).unwrap())
    });

    let skel = demo::CounterSkel(CounterImpl {
        value: Mutex::new(0),
    });
    group.bench_function("dynamic_invoke", |b| {
        b.iter(|| {
            black_box(&skel)
                .invoke("add", vec![DynValue::Long(black_box(1))])
                .unwrap()
        })
    });

    let reflection = Reflection::from_model(&cca::sidl::compile(SIDL).unwrap());
    let add_info = reflection
        .type_info("demo.Counter")
        .unwrap()
        .method("add")
        .unwrap()
        .clone();
    group.bench_function("dynamic_checked", |b| {
        b.iter(|| {
            invoke_checked(
                black_box(&skel),
                &add_info,
                vec![DynValue::Long(black_box(1))],
            )
            .unwrap()
        })
    });

    group.bench_function("reflection_query", |b| {
        b.iter(|| {
            let info = reflection.type_info(black_box("demo.Counter")).unwrap();
            info.method(black_box("add")).unwrap().arity()
        })
    });

    // The discovery path end-to-end: compile SIDL → reflection. This is a
    // per-deposit cost, not per-call; included so EXPERIMENTS.md can set
    // the scales side by side.
    group.bench_function("compile_and_reflect_esi_sidl", |b| {
        b.iter(|| Reflection::from_model(&cca::sidl::compile(black_box(SIDL)).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
