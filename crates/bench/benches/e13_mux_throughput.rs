//! E13 — multiplexed transport under massive logical concurrency, merged
//! into `BENCH_rpc.json`.
//!
//! PR-6's tentpole claim: request-id multiplexing decouples the number of
//! concurrent callers from the number of sockets. The pooled transport
//! (E12's configuration) dedicates one socket to one call for its full
//! round trip, so caller concurrency beyond the pool size just queues on
//! the checkout condvar. The mux pipelines every caller onto a handful of
//! connections and routes completions back by request id.
//!
//! Two configurations, same echo servant, same total call count:
//!
//! * **mux** — `logical_clients` calls in flight at once (submitted
//!   without waiting, in waves) through a `MuxTransport` capped at 8
//!   connections into a `MuxServer`;
//! * **pool** — thread-per-client: `pool_threads` OS threads sharing a
//!   `TcpTransport` pool of 8 sockets into a `TcpServer`.
//!
//! Quantities merged into `BENCH_rpc.json` (E12's keys are preserved):
//!
//! * `throughput_calls_per_sec` — mux calls completed per second;
//! * `p99_ns` — mux submit-to-completion latency, 99th percentile,
//!   measured at delivery time inside the transport;
//! * `pool_throughput_calls_per_sec` — the thread-per-connection baseline;
//! * `mux_sockets` / `logical_clients` / `peak_in_flight` — the shape of
//!   the run backing the headline claim.
//!
//! Acceptance: the logical clients ride on at most 8 sockets (dial count
//! is the proof), and mux throughput beats the pool baseline at this
//! concurrency.

use cca_rpc::transport::Dispatcher;
use cca_rpc::{MuxServer, MuxTransport, ObjRef, Orb, TcpServer, TcpTransport, Transport};
use cca_sidl::{DynObject, DynValue, SidlError};
use std::sync::{Arc, Barrier};
use std::time::Instant;

struct Echo;

impl DynObject for Echo {
    fn sidl_type(&self) -> &str {
        "bench.Echo"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "echo" => Ok(args.into_iter().next().unwrap_or(DynValue::Double(0.0))),
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

/// Pulls `"key": <number>` out of a JSON text by hand (the workspace
/// vendors no serde); `None` when the key is absent or non-numeric.
fn extract_num(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Atomic publication: write next to the target, then rename. A crashed or
/// ctrl-C'd bench run never leaves a truncated JSON for CI to trip over.
fn write_atomic(path: &str, contents: &str) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).unwrap_or_else(|e| panic!("write {tmp}: {e}"));
    std::fs::rename(&tmp, path).unwrap_or_else(|e| panic!("rename {tmp} -> {path}: {e}"));
}

fn main() {
    let fast = std::env::var_os("CCA_BENCH_FAST").is_some();
    // Shape: in full mode 10,000 logically concurrent calls share 8
    // sockets, and the pool baseline runs 1,024 real threads; fast mode
    // scales everything down an order of magnitude for the CI gate.
    let mux_sockets: usize = 8;
    let submit_threads: usize = if fast { 8 } else { 16 };
    let inflight_per_thread: usize = if fast { 125 } else { 625 };
    let logical_clients = submit_threads * inflight_per_thread;
    let waves: usize = if fast { 4 } else { 10 };
    let total_calls = logical_clients * waves;
    let pool_threads: usize = if fast { 256 } else { 1024 };
    let pool_calls_per_thread = total_calls.div_ceil(pool_threads);

    cca_obs::set_tracing(false);
    cca_obs::set_counters(false);

    // --- mux: waves of pipelined submits over a fixed socket budget ------
    let orb = Orb::new();
    orb.register("echo", Arc::new(Echo));
    let mux_server = MuxServer::bind("127.0.0.1:0", Arc::clone(&orb) as Arc<dyn Dispatcher>)
        .expect("bind mux server");
    let mux = Arc::new(
        MuxTransport::new(mux_server.local_addr().to_string()).with_connections(mux_sockets),
    );
    let request = {
        let objref = ObjRef::new("echo", Arc::clone(&mux) as Arc<dyn Transport>);
        // Warm up: dial every connection, settle the event loop.
        for i in 0..200 {
            objref
                .invoke("echo", vec![DynValue::Double(i as f64)])
                .unwrap();
        }
        cca_rpc::encode_request(&cca_rpc::Request {
            request_id: 0,
            object_key: "echo".to_string(),
            operation: "echo".to_string(),
            args: vec![DynValue::Double(1.0)],
        })
        .unwrap()
    };

    let gate = Arc::new(Barrier::new(submit_threads + 1));
    let workers: Vec<_> = (0..submit_threads)
        .map(|_| {
            let mux = Arc::clone(&mux);
            let gate = Arc::clone(&gate);
            let request = request.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(inflight_per_thread * waves);
                gate.wait();
                for _ in 0..waves {
                    // One wave: every logical client submits before anyone
                    // waits — the in-flight window is the whole wave.
                    let pending: Vec<_> = (0..inflight_per_thread)
                        .map(|_| mux.submit(request.clone()).expect("submit"))
                        .collect();
                    for p in pending {
                        let (_, latency) = p.wait_timed().expect("mux call");
                        latencies.push(latency.as_nanos() as u64);
                    }
                }
                latencies
            })
        })
        .collect();
    gate.wait();
    let mux_start = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(total_calls);
    for worker in workers {
        latencies.extend(worker.join().expect("mux worker"));
    }
    let mux_elapsed = mux_start.elapsed();
    let mux_throughput = total_calls as f64 / mux_elapsed.as_secs_f64();
    latencies.sort_unstable();
    let p99 = latencies[(latencies.len() - 1) * 99 / 100] as f64;
    let dials = mux.metrics().dials();
    let peak_in_flight = mux.mux_metrics().peak_in_flight();
    mux_server.shutdown();

    // --- pool baseline: thread-per-client over the same socket budget ----
    let orb = Orb::new();
    orb.register("echo", Arc::new(Echo));
    let tcp_server = TcpServer::bind("127.0.0.1:0", Arc::clone(&orb) as Arc<dyn Dispatcher>)
        .expect("bind tcp server");
    let pool = Arc::new(
        TcpTransport::new(tcp_server.local_addr().to_string()).with_pool_size(mux_sockets),
    );
    {
        // Warm up: fill the pool.
        let objref = ObjRef::new("echo", Arc::clone(&pool) as Arc<dyn Transport>);
        for i in 0..200 {
            objref
                .invoke("echo", vec![DynValue::Double(i as f64)])
                .unwrap();
        }
    }
    let gate = Arc::new(Barrier::new(pool_threads + 1));
    let clients: Vec<_> = (0..pool_threads)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let objref = ObjRef::new("echo", Arc::clone(&pool) as Arc<dyn Transport>);
                gate.wait();
                for i in 0..pool_calls_per_thread {
                    objref
                        .invoke("echo", vec![DynValue::Double(i as f64)])
                        .unwrap();
                }
            })
        })
        .collect();
    gate.wait();
    let pool_start = Instant::now();
    for client in clients {
        client.join().expect("pool client");
    }
    let pool_elapsed = pool_start.elapsed();
    let pool_total = pool_threads * pool_calls_per_thread;
    let pool_throughput = pool_total as f64 / pool_elapsed.as_secs_f64();
    tcp_server.shutdown();

    // --- report ----------------------------------------------------------
    println!(
        "e13_mux_throughput/mux            {mux_throughput:>12.0} calls/s  \
         ({total_calls} calls, {logical_clients} logical clients, {dials} sockets)"
    );
    println!("e13_mux_throughput/mux_p99        {p99:>12.0} ns/call");
    println!("e13_mux_throughput/peak_in_flight {peak_in_flight:>12} calls");
    println!(
        "e13_mux_throughput/pool           {pool_throughput:>12.0} calls/s  \
         ({pool_total} calls, {pool_threads} threads, pool of {mux_sockets})"
    );

    // --- merge into BENCH_rpc.json (E12's keys survive) ------------------
    let out = std::env::var("BENCH_RPC_OUT").unwrap_or_else(|_| "BENCH_rpc.json".to_string());
    let existing = std::fs::read_to_string(&out).unwrap_or_default();
    let mut fields = vec![
        ("calls".to_string(), extract_num(&existing, "calls")),
        (
            "roundtrip_median_ns".to_string(),
            extract_num(&existing, "roundtrip_median_ns"),
        ),
        (
            "roundtrip_p90_ns".to_string(),
            extract_num(&existing, "roundtrip_p90_ns"),
        ),
        (
            "roundtrip_min_ns".to_string(),
            extract_num(&existing, "roundtrip_min_ns"),
        ),
        (
            "loopback_orb_ns".to_string(),
            extract_num(&existing, "loopback_orb_ns"),
        ),
        (
            "frame_encode_ns".to_string(),
            extract_num(&existing, "frame_encode_ns"),
        ),
    ];
    fields.extend([
        ("mux_calls".to_string(), Some(total_calls as f64)),
        ("logical_clients".to_string(), Some(logical_clients as f64)),
        ("mux_sockets".to_string(), Some(dials as f64)),
        ("peak_in_flight".to_string(), Some(peak_in_flight as f64)),
        ("throughput_calls_per_sec".to_string(), Some(mux_throughput)),
        ("p99_ns".to_string(), Some(p99)),
        (
            "pool_throughput_calls_per_sec".to_string(),
            Some(pool_throughput),
        ),
    ]);
    let mut json = String::from(
        "{\n  \"schema\": \"cca-bench/1\",\n  \"experiment\": \"e12_remote_rpc+e13_mux_throughput\",\n",
    );
    for (key, value) in fields.iter().filter_map(|(k, v)| v.map(|v| (k, v))) {
        json.push_str(&format!("  \"{key}\": {value:.3},\n"));
    }
    json.truncate(json.trim_end_matches(",\n").len());
    json.push_str("\n}\n");
    write_atomic(&out, &json);
    println!("wrote {out}");

    // --- acceptance gates ------------------------------------------------
    assert!(
        dials as usize <= mux_sockets,
        "acceptance: {logical_clients} logical clients must share at most \
         {mux_sockets} sockets (dialed {dials})"
    );
    assert!(
        !fast || logical_clients >= 1_000,
        "fast mode must still drive >=1,000 logical clients"
    );
    assert!(
        fast || logical_clients >= 10_000,
        "full mode must drive >=10,000 logical clients"
    );
    assert!(
        mux_throughput > pool_throughput,
        "acceptance: multiplexing must beat the thread-per-connection pool \
         at {pool_threads}-way concurrency (mux {mux_throughput:.0} vs pool \
         {pool_throughput:.0} calls/s)"
    );
}
