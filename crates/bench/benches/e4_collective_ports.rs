//! E4 — §6.3's collective ports: cost of M×N redistribution as a function
//! of mapping and size.
//!
//! Three questions the paper's design raises, answered by measurement:
//!
//! 1. **Mapping regimes** (`transfer/*`): matched n→n (no cross-rank
//!    movement) vs serial↔parallel (broadcast/gather/scatter semantics)
//!    vs arbitrary M×N (4 block → 3 cyclic). In-memory plan execution
//!    isolates pure data movement; cost must track `moved_elements`.
//! 2. **Size scaling** (`transfer_sweep/*`): the 4→3 M×N case over array
//!    sizes — expected linear in bytes moved.
//! 3. **Plan reuse ablation** (`plan_build/*` vs `transfer/*`): building a
//!    plan (the once-per-connection cost a collective port pays) vs
//!    executing it (the per-timestep cost). Rebuilding per call — which a
//!    naive implementation would do — costs more than the transfer itself
//!    for cyclic layouts, justifying the precompute-and-reuse design
//!    called out in DESIGN.md §5.

use cca_data::{DimDist, DistArrayDesc, Distribution, ProcessGrid, RedistPlan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn block(n: usize, p: usize) -> DistArrayDesc {
    DistArrayDesc::new(&[n], Distribution::block_1d(p, 1).unwrap()).unwrap()
}

fn cyclic(n: usize, p: usize) -> DistArrayDesc {
    let dist = Distribution::new(ProcessGrid::linear(p).unwrap(), &[DimDist::Cyclic]).unwrap();
    DistArrayDesc::new(&[n], dist).unwrap()
}

fn block_cyclic(n: usize, p: usize, b: usize) -> DistArrayDesc {
    let dist = Distribution::new(
        ProcessGrid::linear(p).unwrap(),
        &[DimDist::BlockCyclic { block: b }],
    )
    .unwrap();
    DistArrayDesc::new(&[n], dist).unwrap()
}

fn buffers(desc: &DistArrayDesc) -> Vec<Vec<f64>> {
    (0..desc.nranks())
        .map(|r| vec![1.0; desc.local_count(r).unwrap()])
        .collect()
}

fn bench(c: &mut Criterion) {
    let n = 65_536;

    // 1. Mapping regimes at fixed size.
    let mut group = c.benchmark_group("e4_transfer");
    group.throughput(Throughput::Elements(n as u64));
    let cases: Vec<(&str, DistArrayDesc, DistArrayDesc)> = vec![
        ("matched_4to4", block(n, 4), block(n, 4)),
        ("scatter_1to4", block(n, 1), block(n, 4)),
        ("gather_4to1", block(n, 4), block(n, 1)),
        (
            "mxn_4to3_block_to_blockcyclic",
            block(n, 4),
            block_cyclic(n, 3, 256),
        ),
        ("shrink_8to2", block(n, 8), block(n, 2)),
    ];
    for (name, src, dst) in &cases {
        let plan = RedistPlan::build(src, dst).unwrap();
        let compiled = plan.compile().unwrap();
        let bufs = buffers(src);
        // Interpreted: per-element index translation on every call.
        group.bench_function(format!("{name}/interpreted"), |b| {
            b.iter(|| plan.apply(&bufs).unwrap())
        });
        // Compiled: the precomputed-offset path collective ports execute.
        group.bench_function(format!("{name}/compiled"), |b| {
            b.iter(|| compiled.apply(&bufs).unwrap())
        });
    }
    group.finish();

    // 2. Size sweep for the arbitrary M×N case.
    let mut sweep = c.benchmark_group("e4_transfer_sweep_mxn_4to3");
    for size in [4_096usize, 16_384, 65_536, 262_144] {
        let src = block(size, 4);
        let dst = block_cyclic(size, 3, 256);
        let plan = RedistPlan::build(&src, &dst).unwrap();
        let compiled = plan.compile().unwrap();
        let bufs = buffers(&src);
        sweep.throughput(Throughput::Elements(size as u64));
        sweep.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| compiled.apply(&bufs).unwrap())
        });
    }
    sweep.finish();

    // 3. Plan construction (the reuse ablation).
    let mut build = c.benchmark_group("e4_plan_build");
    for (name, src, dst) in [
        ("block_4to4", block(n, 4), block(n, 4)),
        (
            "block_to_blockcyclic_4to3",
            block(n, 4),
            block_cyclic(n, 3, 256),
        ),
        (
            "cyclic_to_cyclic_4to3_small",
            cyclic(4_096, 4),
            cyclic(4_096, 3),
        ),
    ] {
        build.bench_function(format!("{name}/build"), |b| {
            b.iter(|| RedistPlan::build(&src, &dst).unwrap())
        });
        let plan = RedistPlan::build(&src, &dst).unwrap();
        build.bench_function(format!("{name}/compile"), |b| {
            b.iter(|| plan.compile().unwrap())
        });
    }
    build.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
