//! E6 — Figure 1 end-to-end: what does componentization cost a real
//! timestep loop?
//!
//! For each mesh size, one semi-implicit timestep (explicit advection +
//! implicit CG solve) is measured in assemblies with *identical numerics*
//! (same CSR operator, same Jacobi preconditioner, same zero initial
//! guess), differing only in how the solve is invoked:
//!   monolithic/*            — direct call into the solver kernels;
//!   componentized/*         — the same solve routed through CCA
//!                             direct-connect ports (matrix component →
//!                             preconditioner component → solver
//!                             component);
//!   componentized_proxied/* — the same solve marshaled through the ORB,
//!                             quantifying what misapplying the
//!                             distributed option to a tightly coupled
//!                             inner loop would cost.
//! A fourth series, monolithic_matrixfree/*, is the fused stencil +
//! warm-start implementation a hand-optimized code would use — context for
//! what implementation fusion (orthogonal to componentization) buys.
//!
//! Expected shape: componentized ≈ monolithic (the gap is a handful of
//! virtual calls per *solve*, not per matrix application); proxied adds a
//! marshaling constant that only amortizes as the mesh grows.

use cca::framework::Framework;
use cca::repository::Repository;
use cca::solvers::esi::{
    expose_precond_ports, expose_solver_ports, LinearSolverPort, MatrixComponent, PrecondComponent,
    PrecondKind, SolverComponent, SolverConfig, ESI_SIDL,
};
use cca::solvers::precond::Jacobi;
use cca::solvers::{HydroConfig, HydroSim, KrylovKind};
use cca_data::NdArray;
use cca_sidl::DynValue;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

fn cfg(n: usize) -> HydroConfig {
    HydroConfig {
        nx: n,
        ny: n,
        dt: 1e-3,
        nu: 0.1,
        vx: 1.0,
        vy: 0.5,
        tol: 1e-8,
        max_iter: 600,
        kind: KrylovKind::Cg,
    }
}

struct Assembly {
    _fw: Arc<Framework>,
    port: Arc<dyn LinearSolverPort>,
    dynamic: Arc<dyn cca_sidl::DynObject>,
}

fn assemble(sim: &HydroSim) -> Assembly {
    let repo = Repository::new();
    repo.deposit_sidl(ESI_SIDL).unwrap();
    let fw = Framework::new(repo);
    fw.add_instance("matrix0", MatrixComponent::new(sim.local_matrix()))
        .unwrap();
    let precond = PrecondComponent::new(PrecondKind::Jacobi);
    let solver = SolverComponent::new(SolverConfig {
        kind: KrylovKind::Cg,
        tol: 1e-8,
        max_iter: 600,
    });
    fw.add_instance("precond0", precond.clone()).unwrap();
    fw.add_instance("solver0", solver.clone()).unwrap();
    expose_precond_ports(&precond).unwrap();
    expose_solver_ports(&solver).unwrap();
    fw.connect("precond0", "A", "matrix0", "A").unwrap();
    fw.connect("solver0", "A", "matrix0", "A").unwrap();
    fw.connect("solver0", "M", "precond0", "M").unwrap();
    let handle = fw
        .services("solver0")
        .unwrap()
        .get_provides_port("solver")
        .unwrap();
    Assembly {
        port: handle.typed().unwrap(),
        dynamic: handle.dynamic().unwrap().clone(),
        _fw: fw,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_hydro_timestep");
    group.sample_size(10);

    for n in [16usize, 32, 64] {
        let cells = (n * n) as u64;
        group.throughput(Throughput::Elements(cells));

        // Monolithic: direct call, but numerically identical to the port
        // path (same CSR operator, same preconditioner, zero start). Each
        // sample steps a *fresh* simulation so the CG iteration count is
        // identical across variants and never decays to breakdown.
        group.bench_with_input(BenchmarkId::new("monolithic", n), &n, |b, &n| {
            let pristine = HydroSim::new(cfg(n), 1, 0);
            let a = pristine.local_matrix();
            let jac = Jacobi::new(&a);
            b.iter_batched_ref(
                || HydroSim::new(cfg(n), 1, 0),
                |sim| {
                    sim.step_with_solver(None, &|_op, rhs, x| {
                        x.fill(0.0);
                        cca::solvers::cg(&a, &jac, rhs, x, 1e-8, 600, &cca::solvers::SerialReduce)
                    })
                    .unwrap()
                },
                BatchSize::SmallInput,
            );
        });

        // The fused, warm-started, matrix-free loop a hand-tuned code
        // would write — implementation fusion, orthogonal to CCA.
        group.bench_with_input(BenchmarkId::new("monolithic_matrixfree", n), &n, |b, &n| {
            let pristine = HydroSim::new(cfg(n), 1, 0);
            let jac = Jacobi::new(&pristine.local_matrix());
            b.iter_batched_ref(
                || HydroSim::new(cfg(n), 1, 0),
                |sim| sim.step(None, &jac).unwrap(),
                BatchSize::SmallInput,
            );
        });

        // Componentized, direct-connect ports.
        group.bench_with_input(BenchmarkId::new("componentized", n), &n, |b, &n| {
            let pristine = HydroSim::new(cfg(n), 1, 0);
            let assembly = assemble(&pristine);
            let port = Arc::clone(&assembly.port);
            b.iter_batched_ref(
                || HydroSim::new(cfg(n), 1, 0),
                |sim| {
                    sim.step_with_solver(None, &|_op, rhs, x| {
                        let (solution, stats) = port.solve_system(rhs)?;
                        x.copy_from_slice(&solution);
                        Ok(stats)
                    })
                    .unwrap()
                },
                BatchSize::SmallInput,
            );
        });

        // Componentized with the solve marshaled through the ORB — the
        // wrong tool for a tightly coupled loop, quantified.
        group.bench_with_input(BenchmarkId::new("componentized_proxied", n), &n, |b, &n| {
            let pristine = HydroSim::new(cfg(n), 1, 0);
            let assembly = assemble(&pristine);
            let orb = cca::rpc::Orb::new();
            orb.register("solver", Arc::clone(&assembly.dynamic));
            let objref = cca::rpc::ObjRef::loopback("solver", orb);
            b.iter_batched_ref(
                || HydroSim::new(cfg(n), 1, 0),
                |sim| {
                    sim.step_with_solver(None, &|_op, rhs, x| {
                        let arr = NdArray::from_vec(&[rhs.len()], rhs.to_vec()).unwrap();
                        let reply = objref
                            .invoke("solve", vec![DynValue::DoubleArray(arr)])
                            .map_err(cca::core::CcaError::Sidl)?;
                        let DynValue::DoubleArray(out) = reply else {
                            return Err(cca::core::CcaError::Framework("bad reply".into()));
                        };
                        x.copy_from_slice(out.as_slice());
                        Ok(cca::solvers::SolveStats {
                            iterations: 0,
                            residual: 0.0,
                            converged: true,
                        })
                    })
                    .unwrap()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    // SPMD scaling of the monolithic step (the tightly-coupled upper half
    // of Figure 1): one timestep on p ranks, measured end-to-end including
    // thread-group setup, so interpret as assembly cost + stepping.
    let mut spmd_group = c.benchmark_group("e6_hydro_spmd_step");
    spmd_group.sample_size(10);
    for p in [1usize, 2, 4] {
        spmd_group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                cca::parallel::spmd(p, |c| {
                    let mut sim = HydroSim::new(cfg(48), p, c.rank());
                    sim.step(Some(c), &cca::solvers::precond::Identity).unwrap();
                })
            });
        });
    }
    spmd_group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
