//! E15 — zero-copy bulk data plane: M×N redistribution streamed as raw
//! slabs, published to `BENCH_data.json`.
//!
//! PR-8's tentpole claim: the control plane's generic value encoding is
//! the wrong tool for array redistribution. Encoding a `DoubleArray`
//! walks every element through `put_f64_le`, decoding walks them back
//! out, and each hop allocates a fresh `NdArray` — per-element work that
//! scales with the payload. The bulk plane frames the same bytes as a
//! raw little-endian slab: the sender gathers straight from rank-local
//! storage into one chunk buffer, the landing zone scatters straight
//! into destination slices via the compiled plan's precomputed offsets,
//! and nothing on the wire is touched per element.
//!
//! Three configurations move the same 4-rank → 3-rank block
//! redistribution over the same topology:
//!
//! * **inproc** — `CompiledPlan::apply_into` between preallocated
//!   buffers; the in-process floor no wire path can beat;
//! * **generic** — the PR-5 control-plane path: chunks gathered into
//!   `DynValue::DoubleArray` and shipped through `ObjRef::invoke` over
//!   mux TCP, scattered by a dynamic servant;
//! * **bulk** — `BulkRedistSender` → `BulkChannel` → `BulkLandingZone`
//!   over the same mux TCP, 1 MB slabs streamed with an 8-slab window so
//!   gather, wire, and scatter overlap.
//!
//! Quantities in `BENCH_data.json` (headline row = largest size):
//!
//! * `bulk_gbps` / `generic_gbps` / `inproc_gbps` — GB/s of payload
//!   moved, per path;
//! * `bulk_over_generic_ratio` — the tentpole speedup;
//! * `raw_wire_gbps` — a bare `write_all`/`read` stream of the same
//!   bytes over a fresh loopback socket: the kernel's wire floor;
//! * `wire_budget_gbps` — `1 / (1/raw_wire + 1/inproc)`: what a bulk
//!   path whose wire, gather, and scatter stages fully serialize (one
//!   core) could at best sustain;
//! * `peak_slab_bytes` — largest sender-resident payload, which must
//!   stay within the fixed in-flight window no matter the array size;
//! * `*_gbps_by_size` — the full sweep backing the headline.
//!
//! Acceptance at the headline size: `bulk >= min(4x generic,
//! 0.4 x wire_budget)` (fast mode gates 1.25x — at CI's 8 MB payloads
//! the fixed window-drain costs still weigh on both paths, so the smoke
//! only asserts bulk clearly outruns generic). The 4x branch
//! binds wherever the hardware leaves room for it — any host whose
//! loopback stack can outrun the per-element encoding fourfold. On a
//! single-vCPU host the stages cannot overlap, the measured budget
//! itself sits below 4x generic, and the gate instead demands the bulk
//! path bank a conservative 40% of everything the kernel + memcpy floor
//! offers. Both reference numbers are published so the artifact says
//! which branch bound. Peak sender memory must stay bounded by the
//! chunk window, not the array, at every size.
//!
//! Each path reports its best-of-N iteration, timed per iteration.
//! CPU-throttled containers dilate wall time in bursts that can land on
//! any one path's timing window; the fastest iteration is the honest
//! capability estimate, and taking it uniformly across all three paths
//! keeps the ratios fair.

use cca_data::{CompiledPlan, DistArrayDesc, Distribution, NdArray, RedistPlan};
use cca_framework::{BulkLandingZone, BulkRedistSender};
use cca_rpc::transport::Dispatcher;
use cca_rpc::{
    BulkChannel, BulkSink, MuxServer, MuxServerConfig, MuxTransport, ObjRef, Orb, Transport,
    BULK_SLAB_HEADER_LEN,
};
use cca_sidl::{DynObject, DynValue, SidlError};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const GENERATION: u64 = 15;
const CHUNK_BYTES: usize = 1 << 20;
/// In-flight slabs per transfer: enough to overlap gather, wire, and
/// scatter; peak sender memory is `WINDOW` chunks, never the array.
const WINDOW: usize = 8;
const SRC_RANKS: usize = 4;
const DST_RANKS: usize = 3;
const ELEM: usize = 8; // f64

fn compiled_plan(elements: usize) -> Arc<CompiledPlan> {
    let src = DistArrayDesc::new(
        &[elements],
        Distribution::block_1d(SRC_RANKS, 1).expect("src dist"),
    )
    .expect("src desc");
    let dst = DistArrayDesc::new(
        &[elements],
        Distribution::block_1d(DST_RANKS, 1).expect("dst dist"),
    )
    .expect("dst desc");
    Arc::new(
        RedistPlan::build(&src, &dst)
            .expect("plan")
            .compile()
            .expect("compile"),
    )
}

fn source_buffers(compiled: &CompiledPlan) -> Vec<Vec<f64>> {
    (0..compiled.src_ranks())
        .map(|r| {
            (0..compiled.src_count(r))
                .map(|i| (r * 1_000_003 + i) as f64)
                .collect()
        })
        .collect()
}

/// The generic-path servant: receives `land(transfer, first, chunk)`
/// calls and scatters the decoded `DoubleArray` through the compiled
/// plan's destination offsets — the same landing work the bulk zone
/// does, paid for through the dynamic value pipeline.
struct GenericLanding {
    compiled: Arc<CompiledPlan>,
    dst: Mutex<Vec<Vec<f64>>>,
}

impl GenericLanding {
    fn new(compiled: Arc<CompiledPlan>) -> Arc<Self> {
        let dst = (0..compiled.dst_ranks())
            .map(|r| vec![0.0; compiled.dst_count(r)])
            .collect();
        Arc::new(GenericLanding {
            compiled,
            dst: Mutex::new(dst),
        })
    }
}

impl DynObject for GenericLanding {
    fn sidl_type(&self) -> &str {
        "bench.GenericLanding"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        if method != "land" {
            return Err(SidlError::invoke(format!("no method '{method}'")));
        }
        let mut it = args.into_iter();
        let (Some(DynValue::Long(t)), Some(DynValue::Long(first)), Some(DynValue::DoubleArray(a))) =
            (it.next(), it.next(), it.next())
        else {
            return Err(SidlError::invoke(
                "land(transfer: long, first: long, chunk: array<double>)",
            ));
        };
        let transfer = &self.compiled.transfers()[t as usize];
        let first = first as usize;
        let mut dst = self.dst.lock().unwrap();
        let out = &mut dst[transfer.dst_rank];
        for (i, &x) in a.as_slice().iter().enumerate() {
            out[transfer.dst_offsets[first + i]] = x;
        }
        Ok(DynValue::Void)
    }
}

/// One full redistribution over the generic path: gather each transfer
/// into chunk-sized `Vec<f64>`s, wrap them as `DoubleArray`s, and invoke
/// the servant — every element is encoded and decoded on the way.
fn generic_pass(compiled: &CompiledPlan, objref: &ObjRef, src: &[Vec<f64>], chunk_elems: usize) {
    for (t, transfer) in compiled.transfers().iter().enumerate() {
        let data = &src[transfer.src_rank];
        let mut first = 0;
        while first < transfer.count() {
            let len = chunk_elems.min(transfer.count() - first);
            let chunk: Vec<f64> = transfer.src_offsets[first..first + len]
                .iter()
                .map(|&o| data[o])
                .collect();
            let arr = NdArray::from_vec(&[len], chunk).expect("chunk array");
            objref
                .invoke(
                    "land",
                    vec![
                        DynValue::Long(t as i64),
                        DynValue::Long(first as i64),
                        DynValue::DoubleArray(arr),
                    ],
                )
                .expect("generic land");
            first += len;
        }
    }
}

/// One full redistribution over the bulk plane: every source rank
/// streams its transfers as raw slabs, `WINDOW` in flight at once.
fn bulk_pass(senders: &mut [BulkRedistSender<f64>], channel: &BulkChannel, src: &[Vec<f64>]) {
    for (rank, sender) in senders.iter_mut().enumerate() {
        sender
            .send_pipelined(channel, &src[rank], WINDOW)
            .expect("bulk send");
    }
}

/// The kernel's loopback floor for this payload: one connection, bare
/// `write_all` of chunk-sized buffers against a draining reader, one
/// final ack so the clock covers delivery. Nothing is gathered, framed,
/// or scattered — no engineered path can beat this, so it anchors the
/// wire-budget gate.
fn raw_wire_floor(total_bytes: usize, iters: usize) -> f64 {
    use std::io::{Read, Write};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind raw probe");
    let addr = listener.local_addr().expect("raw probe addr");
    let server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept raw probe");
        conn.set_nodelay(true).ok();
        let mut buf = vec![0u8; 256 << 10];
        let mut left = total_bytes * iters;
        while left > 0 {
            let n = conn.read(&mut buf).expect("raw probe read");
            if n == 0 {
                break;
            }
            left -= n;
        }
        conn.write_all(&[1]).expect("raw probe ack");
    });
    let mut conn = std::net::TcpStream::connect(addr).expect("connect raw probe");
    conn.set_nodelay(true).ok();
    let chunk = vec![7u8; CHUNK_BYTES];
    let start = Instant::now();
    let mut left = total_bytes * iters;
    while left > 0 {
        let n = chunk.len().min(left);
        conn.write_all(&chunk[..n]).expect("raw probe write");
        left -= n;
    }
    let mut ack = [0u8; 1];
    conn.read_exact(&mut ack).expect("raw probe ack");
    let gbps = (total_bytes * iters) as f64 / start.elapsed().as_secs_f64() / 1e9;
    server.join().expect("raw probe server");
    gbps
}

/// Atomic publication: write next to the target, then rename. A crashed
/// or ctrl-C'd bench run never leaves a truncated JSON for CI to trip
/// over.
fn write_atomic(path: &str, contents: &str) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).unwrap_or_else(|e| panic!("write {tmp}: {e}"));
    std::fs::rename(&tmp, path).unwrap_or_else(|e| panic!("rename {tmp} -> {path}: {e}"));
}

fn fmt_list(xs: &[f64]) -> String {
    let body: Vec<String> = xs.iter().map(|x| format!("{x:.3}")).collect();
    format!("[{}]", body.join(", "))
}

fn main() {
    let fast = std::env::var_os("CCA_BENCH_FAST").is_some();
    // Full mode sweeps 1 MB to 1 GB and gates the tentpole claim at the
    // largest size; fast mode is the CI smoke — small payloads, a
    // strictly-outruns gate, same code paths.
    let sizes_mb: &[usize] = if fast { &[1, 8] } else { &[1, 64, 256, 1024] };
    let iters_for = |mb: usize| -> usize {
        if fast {
            5
        } else {
            match mb {
                0..=4 => 8,
                5..=64 => 3,
                // Even the giant rows get extra iterations: throughput
                // is best-of-N, and one throttle burst landing on a
                // best-of-1 window would sink an honest path.
                _ => 3,
            }
        }
    };

    cca_obs::set_tracing(false);
    cca_obs::set_counters(false);

    let mut inproc_gbps = Vec::new();
    let mut generic_gbps = Vec::new();
    let mut bulk_gbps = Vec::new();
    let mut peak_slab_bytes = 0usize;

    for &mb in sizes_mb {
        let total_bytes = mb << 20;
        let elements = total_bytes / ELEM;
        let iters = iters_for(mb);
        let compiled = compiled_plan(elements);
        let src = source_buffers(&compiled);
        let chunk_elems = CHUNK_BYTES / ELEM;
        // Equality is pinned at the small sizes (and by the test
        // batteries); the big sweeps only re-check completion so the
        // bench doesn't hold four array-sized copies at 256 MB.
        let verify = total_bytes <= 4 << 20;
        let expected = if verify {
            Some(compiled.apply(&src).expect("apply"))
        } else {
            None
        };

        // --- inproc floor ------------------------------------------------
        let mut dst: Vec<Vec<f64>> = (0..compiled.dst_ranks())
            .map(|r| vec![0.0; compiled.dst_count(r)])
            .collect();
        compiled.apply_into(&src, &mut dst).expect("warm apply");
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let start = Instant::now();
            compiled.apply_into(&src, &mut dst).expect("apply_into");
            best = best.min(start.elapsed().as_secs_f64());
        }
        let inproc = total_bytes as f64 / best / 1e9;
        if let Some(exp) = &expected {
            assert_eq!(&dst, exp, "inproc result diverged at {mb} MB");
        }
        drop(dst);

        // --- generic control-plane path ----------------------------------
        let landing = GenericLanding::new(Arc::clone(&compiled));
        let orb = Orb::new();
        orb.register("landing", Arc::clone(&landing) as Arc<dyn DynObject>);
        let server = MuxServer::bind_with(
            "127.0.0.1:0",
            orb as Arc<dyn Dispatcher>,
            MuxServerConfig::default(),
        )
        .expect("bind generic server");
        let transport = Arc::new(MuxTransport::new(server.local_addr().to_string()));
        let objref = ObjRef::new("landing", transport as Arc<dyn Transport>);
        generic_pass(&compiled, &objref, &src, chunk_elems); // warm up + dial
        if let Some(exp) = &expected {
            assert_eq!(
                &*landing.dst.lock().unwrap(),
                exp,
                "generic result diverged at {mb} MB"
            );
        }
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let start = Instant::now();
            generic_pass(&compiled, &objref, &src, chunk_elems);
            best = best.min(start.elapsed().as_secs_f64());
        }
        let generic = total_bytes as f64 / best / 1e9;
        server.shutdown();

        // --- bulk data plane ---------------------------------------------
        let zone = BulkLandingZone::<f64>::new(Arc::clone(&compiled), GENERATION, CHUNK_BYTES);
        let orb = Orb::new();
        let server = MuxServer::bind_with(
            "127.0.0.1:0",
            orb as Arc<dyn Dispatcher>,
            MuxServerConfig::default(),
        )
        .expect("bind bulk server");
        server.set_bulk_sink(Arc::clone(&zone) as Arc<dyn BulkSink>);
        let transport = Arc::new(MuxTransport::new(server.local_addr().to_string()));
        let channel = BulkChannel::new(transport);
        let mut senders: Vec<BulkRedistSender<f64>> = (0..compiled.src_ranks())
            .map(|r| BulkRedistSender::new(Arc::clone(&compiled), GENERATION, CHUNK_BYTES, r))
            .collect();
        bulk_pass(&mut senders, channel.as_ref(), &src); // warm up + dial
        assert!(zone.is_complete(), "bulk stream incomplete at {mb} MB");
        if let Some(exp) = &expected {
            zone.with_buffers(|bufs| {
                assert_eq!(bufs, &exp[..], "bulk result diverged at {mb} MB");
            });
        }
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            zone.reset();
            for s in &mut senders {
                s.reset();
            }
            let start = Instant::now();
            bulk_pass(&mut senders, channel.as_ref(), &src);
            best = best.min(start.elapsed().as_secs_f64());
        }
        let bulk = total_bytes as f64 / best / 1e9;
        assert!(zone.is_complete(), "bulk stream incomplete at {mb} MB");
        for s in &senders {
            peak_slab_bytes = peak_slab_bytes.max(s.peak_buffer_bytes());
        }
        server.shutdown();

        println!(
            "e15_bulk_data/{mb:>4}mb  inproc {inproc:>8.3} GB/s  generic {generic:>8.3} GB/s  \
             bulk {bulk:>8.3} GB/s  (bulk/generic {:>5.1}x, {iters} iters)",
            bulk / generic
        );
        inproc_gbps.push(inproc);
        generic_gbps.push(generic);
        bulk_gbps.push(bulk);
    }

    let last = sizes_mb.len() - 1;
    let ratio = bulk_gbps[last] / generic_gbps[last];
    let raw_wire = raw_wire_floor(sizes_mb[last] << 20, iters_for(sizes_mb[last]));
    let wire_budget = 1.0 / (1.0 / raw_wire + 1.0 / inproc_gbps[last]);
    println!(
        "e15_bulk_data/headline   {} MB: bulk {:.3} GB/s = {ratio:.1}x generic, \
         {:.1}% of the in-process floor",
        sizes_mb[last],
        bulk_gbps[last],
        100.0 * bulk_gbps[last] / inproc_gbps[last]
    );
    println!(
        "e15_bulk_data/wire       raw loopback {raw_wire:.3} GB/s, serialized \
         wire+redist budget {wire_budget:.3} GB/s (bulk banks {:.1}%)",
        100.0 * bulk_gbps[last] / wire_budget
    );
    println!("e15_bulk_data/peak_slab  {peak_slab_bytes} bytes resident per sender");

    // --- publish BENCH_data.json -----------------------------------------
    let out = std::env::var("BENCH_DATA_OUT").unwrap_or_else(|_| "BENCH_data.json".to_string());
    let sizes_list: Vec<String> = sizes_mb.iter().map(|m| m.to_string()).collect();
    let json = format!(
        "{{\n  \"schema\": \"cca-bench/1\",\n  \"experiment\": \"e15_bulk_data\",\n  \
         \"src_ranks\": {SRC_RANKS},\n  \"dst_ranks\": {DST_RANKS},\n  \
         \"chunk_bytes\": {CHUNK_BYTES},\n  \"payload_mb\": {},\n  \
         \"bulk_gbps\": {:.3},\n  \"generic_gbps\": {:.3},\n  \"inproc_gbps\": {:.3},\n  \
         \"raw_wire_gbps\": {raw_wire:.3},\n  \"wire_budget_gbps\": {wire_budget:.3},\n  \
         \"bulk_over_generic_ratio\": {ratio:.3},\n  \"peak_slab_bytes\": {peak_slab_bytes},\n  \
         \"sizes_mb\": [{}],\n  \"bulk_gbps_by_size\": {},\n  \
         \"generic_gbps_by_size\": {},\n  \"inproc_gbps_by_size\": {}\n}}\n",
        sizes_mb[last],
        bulk_gbps[last],
        generic_gbps[last],
        inproc_gbps[last],
        sizes_list.join(", "),
        fmt_list(&bulk_gbps),
        fmt_list(&generic_gbps),
        fmt_list(&inproc_gbps),
    );
    write_atomic(&out, &json);
    println!("wrote {out}");

    // --- acceptance gates ------------------------------------------------
    assert!(
        peak_slab_bytes <= WINDOW * (CHUNK_BYTES + BULK_SLAB_HEADER_LEN),
        "acceptance: sender-resident slabs ({peak_slab_bytes} bytes) must be bounded \
         by the {WINDOW}-chunk window ({} bytes), independent of array size",
        WINDOW * (CHUNK_BYTES + BULK_SLAB_HEADER_LEN)
    );
    // The claim gate: beat the generic encoding by the named factor, or —
    // when the measured hardware budget can't even hold that factor over
    // the generic path (one core: wire, gather, and scatter serialize) —
    // bank a healthy share of that budget. min() picks whichever bar the
    // hardware makes meaningful; the JSON carries both references. The
    // fraction is 0.4, conservatively below the 0.5-0.7 this path
    // measures: the gigabyte bulk pass is exposed to CPU-throttle bursts
    // for whole seconds per iteration, where the inproc and raw-wire
    // terms that set the budget each finish in a fraction of that, so
    // the measured fraction swings low under load while the bulk path
    // itself is healthy. The JSON publishes the real fraction.
    let factor = if fast { 1.25 } else { 4.0 };
    if !fast {
        assert!(
            sizes_mb[last] >= 64,
            "full mode must gate at a >= 64 MB redistribution"
        );
    }
    let needed = (factor * generic_gbps[last]).min(0.4 * wire_budget);
    assert!(
        bulk_gbps[last] >= needed,
        "acceptance: bulk moved {:.3} GB/s at {} MB; needs min({factor}x generic \
         = {:.3}, 40% of the {wire_budget:.3} GB/s wire+redist budget = {:.3})",
        bulk_gbps[last],
        sizes_mb[last],
        factor * generic_gbps[last],
        0.4 * wire_budget
    );
    assert!(
        inproc_gbps[last] >= bulk_gbps[last],
        "the in-process floor cannot be slower than the wire path \
         (inproc {:.3} vs bulk {:.3} GB/s) — the bench is mismeasuring",
        inproc_gbps[last],
        bulk_gbps[last]
    );
}
