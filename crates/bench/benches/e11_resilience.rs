//! E11 — resilience overhead gate, recorded to `BENCH_resilience.json`.
//!
//! The tentpole claim: attaching a `CallPolicy` to a uses port must not
//! disturb §6.2's "no penalty" story while nothing is failing. While a
//! connection's circuit breaker stays **closed**, the policy check on the
//! `CachedPort` fast path is one relaxed load of the breaker's packed
//! state word — gated here at ≤1.1× the PR-1 cached call:
//!
//! * `pr1_replica_ns` — the same hand-written pre-observability CachedPort
//!   replica E10 gates against (generation load + compare + memo borrow);
//! * `cached_plain_ns` — today's `CachedPort::get` on a policy-less slot
//!   (the E10 `cached_off` quantity, re-measured in this process);
//! * `cached_breaker_closed_ns` — `CachedPort::get` on a slot whose
//!   connection carries a closed breaker. Acceptance: ≤1.1× the replica;
//! * `call_with_policy_ns` — the full `CachedPort::call` path (admission,
//!   success reporting, retry plumbing) on a healthy provider, reported
//!   for context, not gated;
//! * `breaker_admit_ns` — one `CircuitBreaker::admit` in the closed state,
//!   the isolated cost of the added load.
//!
//! The gated pair runs as alternating baseline/probe rounds (as in E14),
//! gating on the minimum per-round ratio: sub-nanosecond deltas need the
//! L1-hot floor, and interleaving keeps clock or cache drift between two
//! long separate windows from failing the gate — a genuinely slower
//! probe is slower in every round.

use cca_core::resilience::{BreakerPolicy, CallPolicy, MockClock};
use cca_core::{CcaServices, PortHandle};
use cca_data::TypeMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

trait WorkPort: Send + Sync {
    fn accumulate(&self, x: f64) -> f64;
}

struct WorkImpl {
    bias: f64,
}

impl WorkPort for WorkImpl {
    fn accumulate(&self, x: f64) -> f64 {
        x * 1.0000001 + self.bias
    }
}

/// PR-1's `CachedPort`, the same transplant E10 uses as its baseline.
struct Pr1Replica<P: ?Sized + Send + Sync + 'static> {
    services: Arc<CcaServices>,
    name: Arc<str>,
    seen_generation: u64,
    port: Option<Arc<P>>,
}

impl<P: ?Sized + Send + Sync + 'static> Pr1Replica<P> {
    fn new(services: Arc<CcaServices>, name: impl Into<Arc<str>>) -> Self {
        Pr1Replica {
            services,
            name: name.into(),
            seen_generation: 0,
            port: None,
        }
    }

    #[inline]
    fn get(&mut self) -> Result<&Arc<P>, cca_core::CcaError> {
        let generation = self.services.generation();
        if self.port.is_none() || generation != self.seen_generation {
            self.revalidate(generation)?;
        }
        Ok(self.port.as_ref().unwrap())
    }

    #[cold]
    fn revalidate(&mut self, generation: u64) -> Result<(), cca_core::CcaError> {
        self.port = None;
        let resolved = self.services.get_port_as::<P>(&self.name)?;
        self.port = Some(resolved);
        self.seen_generation = generation;
        Ok(())
    }
}

fn time_iters<R>(iters: u64, f: &mut impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Calibrates a batch size so one run of `f` takes roughly `target`.
fn calibrate<R>(target: Duration, f: &mut impl FnMut() -> R) -> u64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= 1 << 28 {
            return iters;
        }
        iters = if elapsed.is_zero() {
            iters * 16
        } else {
            let scale = target.as_secs_f64() / elapsed.as_secs_f64();
            ((iters as f64 * scale.clamp(1.2, 16.0)) as u64).max(iters + 1)
        };
    }
}

/// Minimum ns/iter over `samples` batches, each auto-calibrated to roughly
/// `target` wall-clock.
fn measure_min<R>(samples: usize, target: Duration, mut f: impl FnMut() -> R) -> f64 {
    let iters = calibrate(target, &mut f);
    (0..samples)
        .map(|_| time_iters(iters, &mut f))
        .fold(f64::INFINITY, f64::min)
}

/// Alternating A/B measurement for a gated ratio: each round times the
/// baseline and the probe back to back, keeping the minimum of each and
/// the minimum per-round `probe/baseline` ratio (see the module doc).
fn measure_ratio<RA, RB>(
    samples: usize,
    target: Duration,
    mut baseline: impl FnMut() -> RA,
    mut probe: impl FnMut() -> RB,
) -> (f64, f64, f64) {
    let iters = calibrate(target, &mut baseline);
    calibrate(target, &mut probe); // warm the probe path too
    let (mut best_a, mut best_b, mut best_ratio) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..samples {
        let a = time_iters(iters, &mut baseline);
        let b = time_iters(iters, &mut probe);
        best_a = best_a.min(a);
        best_b = best_b.min(b);
        best_ratio = best_ratio.min(b / a);
    }
    (best_a, best_b, best_ratio)
}

/// One provider/user pair; `with_breaker` additionally installs a call
/// policy (closed breaker, generous threshold) on the uses slot before
/// connecting, so the delivered handle carries a breaker.
fn wire(with_breaker: bool) -> Arc<CcaServices> {
    let provider = CcaServices::new("provider");
    let obj: Arc<dyn WorkPort> = Arc::new(WorkImpl { bias: 0.5 });
    provider
        .add_provides_port(PortHandle::new("work", "bench.WorkPort", obj))
        .unwrap();
    let user = CcaServices::new("user");
    user.register_uses_port("in", "bench.WorkPort", TypeMap::new())
        .unwrap();
    if with_breaker {
        let policy = CallPolicy::with_clock(MockClock::new())
            .with_breaker(BreakerPolicy::new(1_000_000, 1_000));
        user.set_call_policy("in", Arc::new(policy)).unwrap();
    }
    user.connect_uses("in", provider.get_provides_port("work").unwrap())
        .unwrap();
    user
}

/// Atomic publication: write next to the target, then rename. A crashed or
/// ctrl-C'd bench run never leaves a truncated JSON for CI to trip over.
fn write_atomic(path: &str, contents: &str) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).unwrap_or_else(|e| panic!("write {tmp}: {e}"));
    std::fs::rename(&tmp, path).unwrap_or_else(|e| panic!("rename {tmp} -> {path}: {e}"));
}

fn main() {
    let fast = std::env::var_os("CCA_BENCH_FAST").is_some();
    let samples = if fast { 7 } else { 15 };
    let target = Duration::from_millis(if fast { 2 } else { 8 });

    cca_obs::set_tracing(false);
    cca_obs::set_counters(false);

    // --- the gated pair: PR-1 replica vs CachedPort behind a closed
    // breaker, in alternating rounds ------------------------------------
    let plain_user = wire(false);
    let mut replica = Pr1Replica::<dyn WorkPort>::new(Arc::clone(&plain_user), "in");
    replica.get().unwrap();
    let guarded_user = wire(true);
    let mut cached_guarded = guarded_user.cached_port::<dyn WorkPort>("in");
    cached_guarded.get().unwrap();
    assert!(
        cached_guarded.breaker().is_some(),
        "the guarded slot must actually carry a breaker"
    );
    let (pr1, guarded, guarded_ratio) = measure_ratio(
        samples,
        target,
        || {
            black_box(&mut replica)
                .get()
                .unwrap()
                .accumulate(black_box(1.0))
        },
        || {
            black_box(&mut cached_guarded)
                .get()
                .unwrap()
                .accumulate(black_box(1.0))
        },
    );

    // --- today's CachedPort, no policy (informational) ------------------
    let mut cached_plain = plain_user.cached_port::<dyn WorkPort>("in");
    cached_plain.get().unwrap();
    let plain = measure_min(samples, target, || {
        black_box(&mut cached_plain)
            .get()
            .unwrap()
            .accumulate(black_box(1.0))
    });

    // --- the full policy call path (healthy provider) -------------------
    let call_with_policy = measure_min(samples, target, || {
        black_box(&mut cached_guarded)
            .call(|p| Ok(p.accumulate(black_box(1.0))))
            .unwrap()
    });

    // --- isolated closed-state admission --------------------------------
    let breaker = Arc::clone(cached_guarded.breaker().unwrap());
    let admit = measure_min(samples, target, || black_box(&breaker).admit());

    // --- report ----------------------------------------------------------
    let plain_ratio = plain / pr1;
    println!("e11_resilience/pr1_replica            {pr1:>10.2} ns/iter");
    println!(
        "e11_resilience/cached_plain           {plain:>10.2} ns/iter  ({plain_ratio:.3}x pr1)"
    );
    println!(
        "e11_resilience/cached_breaker_closed  {guarded:>10.2} ns/iter  ({guarded_ratio:.3}x pr1)"
    );
    println!("e11_resilience/call_with_policy       {call_with_policy:>10.2} ns/iter");
    println!("e11_resilience/breaker_admit          {admit:>10.2} ns/iter");

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"cca-bench/1\",\n",
            "  \"experiment\": \"e11_resilience\",\n",
            "  \"pr1_replica_ns\": {:.3},\n",
            "  \"cached_plain_ns\": {:.3},\n",
            "  \"cached_breaker_closed_ns\": {:.3},\n",
            "  \"call_with_policy_ns\": {:.3},\n",
            "  \"breaker_admit_ns\": {:.3},\n",
            "  \"plain_over_pr1_ratio\": {:.3},\n",
            "  \"breaker_closed_over_pr1_ratio\": {:.3}\n",
            "}}\n"
        ),
        pr1, plain, guarded, call_with_policy, admit, plain_ratio, guarded_ratio
    );
    let out = std::env::var("BENCH_RESILIENCE_OUT")
        .unwrap_or_else(|_| "BENCH_resilience.json".to_string());
    write_atomic(&out, &json);
    println!("wrote {out}");

    // --- acceptance gate -------------------------------------------------
    assert!(
        guarded_ratio <= 1.1,
        "acceptance: a closed breaker on the CachedPort fast path must stay \
         within 1.1x of the PR-1 cached call (measured {guarded_ratio:.3}x)"
    );
}
