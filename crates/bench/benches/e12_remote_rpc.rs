//! E12 — remote invocation over real sockets, recorded to `BENCH_rpc.json`.
//!
//! PR-5's tentpole claim: the TCP transport makes a port remote without
//! changing its shape, and a loopback round trip stays interactive. The
//! acceptance gate is on the **median** single-call latency — a network
//! path is gated on typical latency, not the L1-hot minimum the in-process
//! experiments use:
//!
//! * `roundtrip_median_ns` — one `ObjRef::invoke` through a pooled
//!   `TcpTransport` into a `TcpServer` on 127.0.0.1 (marshal → frame →
//!   socket → dispatch → frame → demarshal). Acceptance: < 100 µs;
//! * `roundtrip_p90_ns` / `roundtrip_min_ns` — spread of the same samples;
//! * `loopback_orb_ns` — the E3 in-process ORB configuration re-measured
//!   in this process: the marshal/dispatch cost floor without sockets, so
//!   the delta to the median is the price of the real network stack;
//! * `frame_encode_ns` — `encode_frame` of a typical request payload, the
//!   codec's own contribution to the round trip.

use cca_rpc::frame::{encode_frame, FrameKind, DEFAULT_MAX_PAYLOAD};
use cca_rpc::transport::Dispatcher;
use cca_rpc::{ObjRef, Orb, TcpServer, TcpTransport, Transport};
use cca_sidl::{DynObject, DynValue, SidlError};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Echo;

impl DynObject for Echo {
    fn sidl_type(&self) -> &str {
        "bench.Echo"
    }
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        match method {
            "echo" => Ok(args.into_iter().next().unwrap_or(DynValue::Double(0.0))),
            other => Err(SidlError::invoke(format!("no method '{other}'"))),
        }
    }
}

/// Minimum ns/iter over `samples` batches, each auto-calibrated to roughly
/// `target` wall-clock (the in-process quantities use the hot floor, as in
/// E10/E11).
fn measure_min<R>(samples: usize, target: Duration, mut f: impl FnMut() -> R) -> f64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= target || iters >= 1 << 28 {
            break;
        }
        iters = if elapsed.is_zero() {
            iters * 16
        } else {
            let scale = target.as_secs_f64() / elapsed.as_secs_f64();
            ((iters as f64 * scale.clamp(1.2, 16.0)) as u64).max(iters + 1)
        };
    }
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Atomic publication: write next to the target, then rename. A crashed or
/// ctrl-C'd bench run never leaves a truncated JSON for CI to trip over.
fn write_atomic(path: &str, contents: &str) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).unwrap_or_else(|e| panic!("write {tmp}: {e}"));
    std::fs::rename(&tmp, path).unwrap_or_else(|e| panic!("rename {tmp} -> {path}: {e}"));
}

fn main() {
    let fast = std::env::var_os("CCA_BENCH_FAST").is_some();
    let calls = if fast { 2_000 } else { 20_000 };
    let samples = if fast { 7 } else { 15 };
    let target = Duration::from_millis(if fast { 2 } else { 8 });

    cca_obs::set_tracing(false);
    cca_obs::set_counters(false);

    // --- the remote configuration: server + pooled client ---------------
    let orb = Orb::new();
    orb.register("echo", Arc::new(Echo));
    let server = TcpServer::bind("127.0.0.1:0", Arc::clone(&orb) as Arc<dyn Dispatcher>)
        .expect("bind ephemeral port");
    let transport = Arc::new(TcpTransport::new(server.local_addr().to_string()).with_pool_size(1));
    let remote = ObjRef::new("echo", Arc::clone(&transport) as Arc<dyn Transport>);

    // Warm up: dial, fill caches, settle the scheduler.
    for _ in 0..200 {
        remote.invoke("echo", vec![DynValue::Double(1.0)]).unwrap();
    }

    // Per-call samples for the distribution quantities.
    let mut roundtrips: Vec<u64> = (0..calls)
        .map(|i| {
            let start = Instant::now();
            black_box(
                remote
                    .invoke("echo", vec![DynValue::Double(i as f64)])
                    .unwrap(),
            );
            start.elapsed().as_nanos() as u64
        })
        .collect();
    roundtrips.sort_unstable();
    let median = roundtrips[roundtrips.len() / 2] as f64;
    let p90 = roundtrips[roundtrips.len() * 9 / 10] as f64;
    let min = roundtrips[0] as f64;

    // --- the in-process floor: same ORB, no sockets ----------------------
    let local = ObjRef::loopback("echo", orb);
    let loopback = measure_min(samples, target, || {
        local.invoke("echo", vec![DynValue::Double(1.0)]).unwrap()
    });

    // --- the codec's own contribution ------------------------------------
    let payload: Vec<u8> = (0..128u8).collect();
    let frame_encode = measure_min(samples, target, || {
        encode_frame(FrameKind::Request, 7, &payload, DEFAULT_MAX_PAYLOAD).unwrap()
    });

    server.shutdown();

    // --- report ----------------------------------------------------------
    println!("e12_remote_rpc/roundtrip_median   {median:>12.2} ns/call  ({calls} calls)");
    println!("e12_remote_rpc/roundtrip_p90      {p90:>12.2} ns/call");
    println!("e12_remote_rpc/roundtrip_min      {min:>12.2} ns/call");
    println!("e12_remote_rpc/loopback_orb       {loopback:>12.2} ns/iter");
    println!("e12_remote_rpc/frame_encode       {frame_encode:>12.2} ns/iter");

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"cca-bench/1\",\n",
            "  \"experiment\": \"e12_remote_rpc\",\n",
            "  \"calls\": {},\n",
            "  \"roundtrip_median_ns\": {:.3},\n",
            "  \"roundtrip_p90_ns\": {:.3},\n",
            "  \"roundtrip_min_ns\": {:.3},\n",
            "  \"loopback_orb_ns\": {:.3},\n",
            "  \"frame_encode_ns\": {:.3}\n",
            "}}\n"
        ),
        calls, median, p90, min, loopback, frame_encode
    );
    let out = std::env::var("BENCH_RPC_OUT").unwrap_or_else(|_| "BENCH_rpc.json".to_string());
    write_atomic(&out, &json);
    println!("wrote {out}");

    // --- acceptance gate -------------------------------------------------
    assert!(
        median < 100_000.0,
        "acceptance: the loopback TCP round-trip median must stay under \
         100 us (measured {median:.0} ns)"
    );
}
