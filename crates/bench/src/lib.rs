//! cca-bench: criterion benchmark harness (see benches/).
