#![warn(missing_docs)]
// Index-based loops over multiple same-length buffers are the clearest
// idiom for stencil/linear-algebra kernels; the iterator rewrites clippy
// suggests obscure them.
#![allow(clippy::needless_range_loop)]
//! # cca-data — scientific data types for the Common Component Architecture
//!
//! This crate provides the data-model substrate that the paper's Scientific
//! Interface Definition Language (SIDL) requires but which mainstream IDLs of
//! the era (CORBA IDL, COM MIDL, Java) lacked:
//!
//! * [`Complex`] — complex numbers as an IDL *primitive* type (§5 of the
//!   paper: "IDL primitive data types for complex numbers").
//! * [`NdArray`] — dynamically dimensioned, Fortran-style (column-major)
//!   multidimensional arrays with arbitrary lower bounds and strided views
//!   (§5: "Fortran-style dynamic multidimensional arrays").
//! * [`dist`] — descriptors for block / cyclic / block-cyclic data
//!   distributions of such arrays over a set of SPMD processes.
//! * [`redist`] — M×N redistribution plans between two differently
//!   distributed parallel components, the data-movement core of the paper's
//!   *collective ports* (§6.3).
//! * [`TypeMap`] — the heterogeneous property map used throughout the CCA
//!   services for component metadata and port properties.
//!
//! Everything in this crate is framework-agnostic: no threads, no ports, no
//! I/O — just data layout and the algebra of moving it around.

pub mod complex;
pub mod dist;
pub mod error;
pub mod ndarray;
pub mod redist;
pub mod typemap;

pub use complex::{Complex, Complex32, Complex64};
pub use dist::{DimDist, DistArrayDesc, Distribution, ProcessGrid};
pub use error::DataError;
pub use ndarray::{NdArray, NdView, Order, Slice, ViewStorage};
pub use redist::{CompiledPlan, CompiledTransfer, RedistPlan, Transfer, WireLayout};
pub use typemap::{TypeMap, TypeMapValue};
