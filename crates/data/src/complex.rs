//! Complex numbers as a SIDL primitive type.
//!
//! §5 of the paper: "We have also added IDL primitive data types for complex
//! numbers and multidimensional arrays for expressibility and efficiency when
//! mapping to implementation languages." `Complex<T>` is `repr(C)` so that a
//! generated C binding (`codegen_c` in `cca-sidl`) can pass it by value with
//! the layout Fortran `COMPLEX`/`DOUBLE COMPLEX` and C99 `_Complex` use.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with real and imaginary parts of type `T`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Single-precision complex, the SIDL `fcomplex` type.
pub type Complex32 = Complex<f32>;
/// Double-precision complex, the SIDL `dcomplex` type.
pub type Complex64 = Complex<f64>;

impl<T> Complex<T> {
    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }
}

macro_rules! impl_complex_float {
    ($t:ty) => {
        impl Complex<$t> {
            /// The additive identity `0 + 0i`.
            pub const ZERO: Self = Complex { re: 0.0, im: 0.0 };
            /// The multiplicative identity `1 + 0i`.
            pub const ONE: Self = Complex { re: 1.0, im: 0.0 };
            /// The imaginary unit `0 + 1i`.
            pub const I: Self = Complex { re: 0.0, im: 1.0 };

            /// Complex conjugate `re - im·i`.
            #[inline]
            pub fn conj(self) -> Self {
                Complex::new(self.re, -self.im)
            }

            /// Squared magnitude `re² + im²` (avoids the square root).
            #[inline]
            pub fn norm_sqr(self) -> $t {
                self.re * self.re + self.im * self.im
            }

            /// Magnitude `|z|`, computed with `hypot` for robustness against
            /// overflow in the squares.
            #[inline]
            pub fn abs(self) -> $t {
                self.re.hypot(self.im)
            }

            /// Argument (phase angle) in radians.
            #[inline]
            pub fn arg(self) -> $t {
                self.im.atan2(self.re)
            }

            /// Multiplicative inverse `1/z`.
            #[inline]
            pub fn recip(self) -> Self {
                let d = self.norm_sqr();
                Complex::new(self.re / d, -self.im / d)
            }

            /// Constructs a complex from polar form `r·e^{iθ}`.
            #[inline]
            pub fn from_polar(r: $t, theta: $t) -> Self {
                Complex::new(r * theta.cos(), r * theta.sin())
            }

            /// Complex exponential `e^z`.
            #[inline]
            pub fn exp(self) -> Self {
                Self::from_polar(self.re.exp(), self.im)
            }

            /// Scales by a real factor.
            #[inline]
            pub fn scale(self, s: $t) -> Self {
                Complex::new(self.re * s, self.im * s)
            }

            /// True if either part is NaN.
            #[inline]
            pub fn is_nan(self) -> bool {
                self.re.is_nan() || self.im.is_nan()
            }
        }

        impl From<$t> for Complex<$t> {
            #[inline]
            fn from(re: $t) -> Self {
                Complex::new(re, 0.0)
            }
        }

        impl Add for Complex<$t> {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Complex::new(self.re + rhs.re, self.im + rhs.im)
            }
        }

        impl Sub for Complex<$t> {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Complex::new(self.re - rhs.re, self.im - rhs.im)
            }
        }

        impl Mul for Complex<$t> {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                Complex::new(
                    self.re * rhs.re - self.im * rhs.im,
                    self.re * rhs.im + self.im * rhs.re,
                )
            }
        }

        impl Div for Complex<$t> {
            type Output = Self;
            #[inline]
            #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * (1/w)
            fn div(self, rhs: Self) -> Self {
                self * rhs.recip()
            }
        }

        impl Mul<$t> for Complex<$t> {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: $t) -> Self {
                self.scale(rhs)
            }
        }

        impl Div<$t> for Complex<$t> {
            type Output = Self;
            #[inline]
            fn div(self, rhs: $t) -> Self {
                Complex::new(self.re / rhs, self.im / rhs)
            }
        }

        impl Neg for Complex<$t> {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Complex::new(-self.re, -self.im)
            }
        }

        impl AddAssign for Complex<$t> {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl SubAssign for Complex<$t> {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl MulAssign for Complex<$t> {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl DivAssign for Complex<$t> {
            #[inline]
            fn div_assign(&mut self, rhs: Self) {
                *self = *self / rhs;
            }
        }

        impl Sum for Complex<$t> {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |a, b| a + b)
            }
        }

        impl fmt::Display for Complex<$t> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.im >= 0.0 {
                    write!(f, "{}+{}i", self.re, self.im)
                } else {
                    write!(f, "{}{}i", self.re, self.im)
                }
            }
        }
    };
}

impl_complex_float!(f32);
impl_complex_float!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(-z, Complex64::new(-3.0, 4.0));
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        // (1+2i)(3+4i) = 3+4i+6i+8i² = -5+10i
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, 4.0);
        assert_eq!(a * b, Complex64::new(-5.0, 10.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.25, 4.0);
        assert!(close(a * b / b, a, 1e-12));
    }

    #[test]
    fn conjugate_and_norms() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        // z · conj(z) = |z|²
        assert_eq!(z * z.conj(), Complex64::new(25.0, 0.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn euler_identity() {
        // e^{iπ} = -1
        let z = (Complex64::I * std::f64::consts::PI).exp();
        assert!(close(z, Complex64::new(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn recip_of_i() {
        // 1/i = -i
        assert!(close(Complex64::I.recip(), -Complex64::I, 1e-15));
    }

    #[test]
    fn compound_assignment() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::new(1.0, 0.0);
        z -= Complex64::new(0.0, 1.0);
        z *= Complex64::new(2.0, 0.0);
        z /= Complex64::new(4.0, 0.0);
        assert!(close(z, Complex64::new(1.0, 0.0), 1e-12));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn real_scalar_ops_and_conversion() {
        let z: Complex64 = 2.0.into();
        assert_eq!(z, Complex64::new(2.0, 0.0));
        assert_eq!(z * 3.0, Complex64::new(6.0, 0.0));
        assert_eq!(z / 2.0, Complex64::ONE);
    }

    #[test]
    fn single_precision_variant_works() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(3.0, 4.0);
        assert_eq!(a * b, Complex32::new(-5.0, 10.0));
    }

    #[test]
    fn layout_is_two_scalars() {
        // Required for by-value passing across the generated C binding.
        assert_eq!(std::mem::size_of::<Complex64>(), 16);
        assert_eq!(std::mem::size_of::<Complex32>(), 8);
    }

    #[test]
    fn nan_detection() {
        assert!(Complex64::new(f64::NAN, 0.0).is_nan());
        assert!(!Complex64::new(1.0, 2.0).is_nan());
    }
}
