//! Error type shared by the data-model substrate.

use std::fmt;

/// Errors produced by the data layer (shape mismatches, invalid
/// distributions, out-of-range indices, type-map type confusion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Array shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// The shape the operation required.
        expected: Vec<usize>,
        /// The shape that was supplied.
        found: Vec<usize>,
    },
    /// A multi-index was outside the array bounds.
    IndexOutOfBounds {
        /// The offending multi-index.
        index: Vec<isize>,
        /// The array's lower bounds.
        lower: Vec<isize>,
        /// The array's extents.
        extents: Vec<usize>,
    },
    /// The requested rank is unsupported or inconsistent.
    RankMismatch {
        /// The rank the operation required.
        expected: usize,
        /// The rank that was supplied.
        found: usize,
    },
    /// A distribution descriptor is invalid (e.g. zero block size, empty
    /// process grid, grid rank != array rank).
    InvalidDistribution(String),
    /// A slice specification is invalid (zero step, inverted range, ...).
    InvalidSlice(String),
    /// A `TypeMap` entry exists but has a different type than requested.
    TypeMismatch {
        /// The map key that was accessed.
        key: String,
        /// The requested type name.
        expected: &'static str,
        /// The stored type name.
        found: &'static str,
    },
    /// A `TypeMap` key is absent.
    KeyNotFound(String),
    /// Redistribution endpoints disagree on the global array.
    GlobalShapeMismatch {
        /// Global extents on the source side.
        source: Vec<usize>,
        /// Global extents on the target side.
        target: Vec<usize>,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected:?}, found {found:?}")
            }
            DataError::IndexOutOfBounds {
                index,
                lower,
                extents,
            } => write!(
                f,
                "index {index:?} out of bounds (lower {lower:?}, extents {extents:?})"
            ),
            DataError::RankMismatch { expected, found } => {
                write!(f, "rank mismatch: expected {expected}, found {found}")
            }
            DataError::InvalidDistribution(msg) => write!(f, "invalid distribution: {msg}"),
            DataError::InvalidSlice(msg) => write!(f, "invalid slice: {msg}"),
            DataError::TypeMismatch {
                key,
                expected,
                found,
            } => write!(
                f,
                "type map entry '{key}' has type {found}, expected {expected}"
            ),
            DataError::KeyNotFound(key) => write!(f, "type map key '{key}' not found"),
            DataError::GlobalShapeMismatch { source, target } => write!(
                f,
                "redistribution endpoints disagree on global shape: source {source:?}, target {target:?}"
            ),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_all_variants() {
        let cases: Vec<DataError> = vec![
            DataError::ShapeMismatch {
                expected: vec![2, 3],
                found: vec![3, 2],
            },
            DataError::IndexOutOfBounds {
                index: vec![5],
                lower: vec![0],
                extents: vec![4],
            },
            DataError::RankMismatch {
                expected: 2,
                found: 3,
            },
            DataError::InvalidDistribution("empty grid".into()),
            DataError::InvalidSlice("zero step".into()),
            DataError::TypeMismatch {
                key: "tol".into(),
                expected: "f64",
                found: "i64",
            },
            DataError::KeyNotFound("missing".into()),
            DataError::GlobalShapeMismatch {
                source: vec![10],
                target: vec![12],
            },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            DataError::KeyNotFound("x".into()),
            DataError::KeyNotFound("x".into())
        );
        assert_ne!(
            DataError::KeyNotFound("x".into()),
            DataError::KeyNotFound("y".into())
        );
    }
}
