//! Data-distribution descriptors for parallel components.
//!
//! §6.3 of the paper: "The creation of a collective port requires that the
//! programmer specify the mapping of data (or processes participating) in
//! the operations on this port." This module provides that mapping
//! vocabulary: a cartesian [`ProcessGrid`], per-dimension distributions
//! ([`DimDist`]: block, cyclic, block-cyclic — the HPF trio the CCA-era
//! systems PAWS/CUMULVS/PARDIS all spoke), and a [`DistArrayDesc`] that ties
//! a global array shape to a distribution and answers ownership and
//! index-translation queries.
//!
//! A *serial* component is simply a 1-rank grid, which is how the paper's
//! "serial component interacts with a parallel component" case (broadcast /
//! gather / scatter semantics) falls out of the general M×N machinery.

use crate::error::DataError;

/// A cartesian grid of SPMD processes. Ranks are numbered in column-major
/// order over the grid coordinates (first grid dimension varies fastest).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcessGrid {
    extents: Vec<usize>,
}

impl ProcessGrid {
    /// Creates a grid with the given per-dimension process counts.
    pub fn new(extents: &[usize]) -> Result<Self, DataError> {
        if extents.is_empty() || extents.contains(&0) {
            return Err(DataError::InvalidDistribution(format!(
                "process grid extents must be non-empty and positive, got {extents:?}"
            )));
        }
        Ok(ProcessGrid {
            extents: extents.to_vec(),
        })
    }

    /// A 1-D grid of `n` processes.
    pub fn linear(n: usize) -> Result<Self, DataError> {
        Self::new(&[n])
    }

    /// Grid rank (number of grid dimensions).
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Per-dimension process counts.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Total number of processes in the grid.
    pub fn size(&self) -> usize {
        self.extents.iter().product()
    }

    /// Converts grid coordinates to a linear rank.
    pub fn rank_of(&self, coords: &[usize]) -> Result<usize, DataError> {
        if coords.len() != self.rank() {
            return Err(DataError::RankMismatch {
                expected: self.rank(),
                found: coords.len(),
            });
        }
        let mut rank = 0usize;
        let mut stride = 1usize;
        for (d, &c) in coords.iter().enumerate() {
            if c >= self.extents[d] {
                return Err(DataError::InvalidDistribution(format!(
                    "grid coordinate {c} out of range for dimension {d} (extent {})",
                    self.extents[d]
                )));
            }
            rank += c * stride;
            stride *= self.extents[d];
        }
        Ok(rank)
    }

    /// Converts a linear rank to grid coordinates.
    pub fn coords_of(&self, mut rank: usize) -> Result<Vec<usize>, DataError> {
        if rank >= self.size() {
            return Err(DataError::InvalidDistribution(format!(
                "rank {rank} out of range for grid of size {}",
                self.size()
            )));
        }
        let mut coords = Vec::with_capacity(self.rank());
        for &e in &self.extents {
            coords.push(rank % e);
            rank /= e;
        }
        Ok(coords)
    }
}

/// How one array dimension is split over one process-grid dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DimDist {
    /// Contiguous blocks of `ceil(n/p)` elements per process (HPF `BLOCK`).
    Block,
    /// Round-robin single elements (HPF `CYCLIC`).
    Cyclic,
    /// Round-robin blocks of the given size (HPF `CYCLIC(b)`).
    BlockCyclic {
        /// Block size; must be >= 1.
        block: usize,
    },
}

impl DimDist {
    /// The effective block size for a dimension of extent `n` over `p`
    /// processes.
    fn block_size(&self, n: usize, p: usize) -> Result<usize, DataError> {
        match *self {
            DimDist::Block => Ok(n.div_ceil(p).max(1)),
            DimDist::Cyclic => Ok(1),
            DimDist::BlockCyclic { block } => {
                if block == 0 {
                    Err(DataError::InvalidDistribution(
                        "block-cyclic block size must be >= 1".into(),
                    ))
                } else {
                    Ok(block)
                }
            }
        }
    }
}

/// A rectangular region of a global index space: `start[d] .. start[d] +
/// len[d]` in each dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Inclusive start of the region in each dimension.
    pub start: Vec<usize>,
    /// Extent of the region in each dimension.
    pub len: Vec<usize>,
}

impl Region {
    /// Number of elements covered.
    pub fn count(&self) -> usize {
        self.len.iter().product()
    }

    /// Intersection of two same-rank regions, or `None` if disjoint/empty.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        debug_assert_eq!(self.start.len(), other.start.len());
        let rank = self.start.len();
        let mut start = Vec::with_capacity(rank);
        let mut len = Vec::with_capacity(rank);
        for d in 0..rank {
            let s = self.start[d].max(other.start[d]);
            let e = (self.start[d] + self.len[d]).min(other.start[d] + other.len[d]);
            if e <= s {
                return None;
            }
            start.push(s);
            len.push(e - s);
        }
        Some(Region { start, len })
    }

    /// Iterates over every global multi-index in the region, first dimension
    /// fastest (column-major traversal).
    pub fn indices(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        let total = self.count();
        (0..total).map(move |mut k| {
            let mut idx = Vec::with_capacity(self.start.len());
            for d in 0..self.start.len() {
                idx.push(self.start[d] + k % self.len[d]);
                k /= self.len[d];
            }
            idx
        })
    }
}

/// A complete distribution: a process grid plus one [`DimDist`] per array
/// dimension. Array dimension `d` is distributed over grid dimension `d`;
/// the grid must therefore have the same rank as the array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Distribution {
    grid: ProcessGrid,
    dims: Vec<DimDist>,
}

impl Distribution {
    /// Creates a distribution; `dims.len()` must equal the grid rank.
    pub fn new(grid: ProcessGrid, dims: &[DimDist]) -> Result<Self, DataError> {
        if dims.len() != grid.rank() {
            return Err(DataError::InvalidDistribution(format!(
                "distribution has {} dim specs but grid rank is {}",
                dims.len(),
                grid.rank()
            )));
        }
        Ok(Distribution {
            grid,
            dims: dims.to_vec(),
        })
    }

    /// Block distribution of every dimension over a linear grid of `p`
    /// processes in the first dimension (remaining dims undistributed) —
    /// the common row-block layout for matrices and meshes.
    pub fn block_1d(p: usize, rank: usize) -> Result<Self, DataError> {
        let mut grid_extents = vec![1usize; rank];
        grid_extents[0] = p;
        let grid = ProcessGrid::new(&grid_extents)?;
        Self::new(grid, &vec![DimDist::Block; rank])
    }

    /// A serial (single-process) "distribution" of the given rank.
    pub fn serial(rank: usize) -> Result<Self, DataError> {
        let grid = ProcessGrid::new(&vec![1usize; rank])?;
        Self::new(grid, &vec![DimDist::Block; rank])
    }

    /// The underlying process grid.
    pub fn grid(&self) -> &ProcessGrid {
        &self.grid
    }

    /// Per-dimension distribution kinds.
    pub fn dims(&self) -> &[DimDist] {
        &self.dims
    }
}

/// A global array shape bound to a [`Distribution`]: the descriptor a
/// collective port exchanges so each side can compute the M×N transfer
/// pattern without any central coordinator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DistArrayDesc {
    global_extents: Vec<usize>,
    dist: Distribution,
}

impl DistArrayDesc {
    /// Binds a global shape to a distribution (ranks must agree).
    pub fn new(global_extents: &[usize], dist: Distribution) -> Result<Self, DataError> {
        if global_extents.len() != dist.grid().rank() {
            return Err(DataError::InvalidDistribution(format!(
                "array rank {} != distribution rank {}",
                global_extents.len(),
                dist.grid().rank()
            )));
        }
        if global_extents.contains(&0) {
            return Err(DataError::InvalidDistribution(format!(
                "global extents must be positive, got {global_extents:?}"
            )));
        }
        // Validate block sizes eagerly.
        for (d, dd) in dist.dims().iter().enumerate() {
            dd.block_size(global_extents[d], dist.grid().extents()[d])?;
        }
        Ok(DistArrayDesc {
            global_extents: global_extents.to_vec(),
            dist,
        })
    }

    /// Global array extents.
    pub fn global_extents(&self) -> &[usize] {
        &self.global_extents
    }

    /// The distribution.
    pub fn distribution(&self) -> &Distribution {
        &self.dist
    }

    /// Array/grid rank.
    pub fn rank(&self) -> usize {
        self.global_extents.len()
    }

    /// Number of participating processes.
    pub fn nranks(&self) -> usize {
        self.dist.grid().size()
    }

    /// The grid coordinate along dimension `d` that owns global index `i`.
    fn dim_owner(&self, d: usize, i: usize) -> usize {
        let n = self.global_extents[d];
        let p = self.dist.grid().extents()[d];
        let b = self.dist.dims()[d].block_size(n, p).expect("validated");
        (i / b) % p
    }

    /// The local index along dimension `d` of global index `i` on its owner.
    fn dim_local(&self, d: usize, i: usize) -> usize {
        let n = self.global_extents[d];
        let p = self.dist.grid().extents()[d];
        let b = self.dist.dims()[d].block_size(n, p).expect("validated");
        (i / (p * b)) * b + i % b
    }

    /// The global index along dimension `d` of local index `l` on the
    /// process with grid coordinate `coord` in that dimension.
    fn dim_global(&self, d: usize, coord: usize, l: usize) -> usize {
        let n = self.global_extents[d];
        let p = self.dist.grid().extents()[d];
        let b = self.dist.dims()[d].block_size(n, p).expect("validated");
        ((l / b) * p + coord) * b + l % b
    }

    /// Number of locally owned indices along dimension `d` on grid
    /// coordinate `coord`.
    fn dim_local_extent(&self, d: usize, coord: usize) -> usize {
        let n = self.global_extents[d];
        let p = self.dist.grid().extents()[d];
        let b = self.dist.dims()[d].block_size(n, p).expect("validated");
        let cycle = p * b;
        let full_cycles = n / cycle;
        let rem = n % cycle;
        let extra = rem.saturating_sub(coord * b).min(b);
        full_cycles * b + extra
    }

    /// The linear rank that owns a global multi-index.
    pub fn owner_of(&self, index: &[usize]) -> Result<usize, DataError> {
        self.check_global(index)?;
        let coords: Vec<usize> = (0..self.rank())
            .map(|d| self.dim_owner(d, index[d]))
            .collect();
        self.dist.grid().rank_of(&coords)
    }

    /// Local extents of the portion owned by `rank`.
    pub fn local_extents(&self, rank: usize) -> Result<Vec<usize>, DataError> {
        let coords = self.dist.grid().coords_of(rank)?;
        Ok((0..self.rank())
            .map(|d| self.dim_local_extent(d, coords[d]))
            .collect())
    }

    /// Number of elements owned by `rank`.
    pub fn local_count(&self, rank: usize) -> Result<usize, DataError> {
        Ok(self.local_extents(rank)?.iter().product())
    }

    /// Maps a global multi-index to `(owner_rank, local_index)`.
    pub fn global_to_local(&self, index: &[usize]) -> Result<(usize, Vec<usize>), DataError> {
        let rank = self.owner_of(index)?;
        let local: Vec<usize> = (0..self.rank())
            .map(|d| self.dim_local(d, index[d]))
            .collect();
        Ok((rank, local))
    }

    /// Maps `(rank, local_index)` back to the global multi-index.
    pub fn local_to_global(&self, rank: usize, local: &[usize]) -> Result<Vec<usize>, DataError> {
        let coords = self.dist.grid().coords_of(rank)?;
        if local.len() != self.rank() {
            return Err(DataError::RankMismatch {
                expected: self.rank(),
                found: local.len(),
            });
        }
        let mut global = Vec::with_capacity(self.rank());
        for d in 0..self.rank() {
            if local[d] >= self.dim_local_extent(d, coords[d]) {
                return Err(DataError::IndexOutOfBounds {
                    index: local.iter().map(|&x| x as isize).collect(),
                    lower: vec![0; self.rank()],
                    extents: self.local_extents(rank)?,
                });
            }
            global.push(self.dim_global(d, coords[d], local[d]));
        }
        Ok(global)
    }

    /// The contiguous global intervals owned along dimension `d` by grid
    /// coordinate `coord`, as `(start, len)` pairs in ascending order.
    pub fn dim_intervals(&self, d: usize, coord: usize) -> Vec<(usize, usize)> {
        let n = self.global_extents[d];
        let p = self.dist.grid().extents()[d];
        let b = self.dist.dims()[d].block_size(n, p).expect("validated");
        let mut out = Vec::new();
        let mut cycle = 0usize;
        loop {
            let start = (cycle * p + coord) * b;
            if start >= n {
                break;
            }
            out.push((start, b.min(n - start)));
            cycle += 1;
        }
        out
    }

    /// All rectangular global regions owned by `rank` (cartesian product of
    /// per-dimension intervals). For a pure block distribution this is a
    /// single region; cyclic distributions produce many small ones.
    pub fn owned_regions(&self, rank: usize) -> Result<Vec<Region>, DataError> {
        let coords = self.dist.grid().coords_of(rank)?;
        let per_dim: Vec<Vec<(usize, usize)>> = (0..self.rank())
            .map(|d| self.dim_intervals(d, coords[d]))
            .collect();
        let mut regions = vec![Region {
            start: vec![],
            len: vec![],
        }];
        for intervals in &per_dim {
            let mut next = Vec::with_capacity(regions.len() * intervals.len());
            for r in &regions {
                for &(s, l) in intervals {
                    let mut start = r.start.clone();
                    let mut len = r.len.clone();
                    start.push(s);
                    len.push(l);
                    next.push(Region { start, len });
                }
            }
            regions = next;
        }
        Ok(regions)
    }

    fn check_global(&self, index: &[usize]) -> Result<(), DataError> {
        if index.len() != self.rank() {
            return Err(DataError::RankMismatch {
                expected: self.rank(),
                found: index.len(),
            });
        }
        for d in 0..self.rank() {
            if index[d] >= self.global_extents[d] {
                return Err(DataError::IndexOutOfBounds {
                    index: index.iter().map(|&x| x as isize).collect(),
                    lower: vec![0; self.rank()],
                    extents: self.global_extents.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_rank_coord_round_trip() {
        let g = ProcessGrid::new(&[3, 2]).unwrap();
        assert_eq!(g.size(), 6);
        for r in 0..6 {
            let c = g.coords_of(r).unwrap();
            assert_eq!(g.rank_of(&c).unwrap(), r);
        }
        assert_eq!(g.rank_of(&[1, 1]).unwrap(), 4); // column-major: 1 + 1*3
        assert!(g.rank_of(&[3, 0]).is_err());
        assert!(g.coords_of(6).is_err());
    }

    #[test]
    fn grid_validation() {
        assert!(ProcessGrid::new(&[]).is_err());
        assert!(ProcessGrid::new(&[0, 2]).is_err());
        assert!(ProcessGrid::linear(4).is_ok());
    }

    #[test]
    fn block_distribution_ownership() {
        // 10 elements over 4 procs, block => blocks of 3: [0..3)->0, [3..6)->1,
        // [6..9)->2, [9..10)->3.
        let d = DistArrayDesc::new(&[10], Distribution::block_1d(4, 1).unwrap()).unwrap();
        let owners: Vec<usize> = (0..10).map(|i| d.owner_of(&[i]).unwrap()).collect();
        assert_eq!(owners, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        assert_eq!(d.local_count(0).unwrap(), 3);
        assert_eq!(d.local_count(3).unwrap(), 1);
    }

    #[test]
    fn cyclic_distribution_ownership() {
        let dist = Distribution::new(ProcessGrid::linear(3).unwrap(), &[DimDist::Cyclic]).unwrap();
        let d = DistArrayDesc::new(&[7], dist).unwrap();
        let owners: Vec<usize> = (0..7).map(|i| d.owner_of(&[i]).unwrap()).collect();
        assert_eq!(owners, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(d.local_count(0).unwrap(), 3);
        assert_eq!(d.local_count(1).unwrap(), 2);
        assert_eq!(d.local_count(2).unwrap(), 2);
    }

    #[test]
    fn block_cyclic_distribution_ownership() {
        let dist = Distribution::new(
            ProcessGrid::linear(2).unwrap(),
            &[DimDist::BlockCyclic { block: 2 }],
        )
        .unwrap();
        let d = DistArrayDesc::new(&[9], dist).unwrap();
        // blocks of 2: [0,1]->0 [2,3]->1 [4,5]->0 [6,7]->1 [8]->0
        let owners: Vec<usize> = (0..9).map(|i| d.owner_of(&[i]).unwrap()).collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 0, 0, 1, 1, 0]);
    }

    #[test]
    fn global_local_round_trip_2d() {
        let dist = Distribution::new(
            ProcessGrid::new(&[2, 2]).unwrap(),
            &[DimDist::Block, DimDist::Cyclic],
        )
        .unwrap();
        let d = DistArrayDesc::new(&[5, 6], dist).unwrap();
        for i in 0..5 {
            for j in 0..6 {
                let (rank, local) = d.global_to_local(&[i, j]).unwrap();
                let back = d.local_to_global(rank, &local).unwrap();
                assert_eq!(back, vec![i, j]);
            }
        }
    }

    #[test]
    fn local_counts_partition_global_count() {
        let dist = Distribution::new(
            ProcessGrid::new(&[3, 2]).unwrap(),
            &[DimDist::BlockCyclic { block: 2 }, DimDist::Block],
        )
        .unwrap();
        let d = DistArrayDesc::new(&[11, 7], dist).unwrap();
        let total: usize = (0..d.nranks()).map(|r| d.local_count(r).unwrap()).sum();
        assert_eq!(total, 77);
    }

    #[test]
    fn owned_regions_cover_local_elements() {
        let dist = Distribution::new(ProcessGrid::linear(3).unwrap(), &[DimDist::Cyclic]).unwrap();
        let d = DistArrayDesc::new(&[8], dist).unwrap();
        for r in 0..3 {
            let regions = d.owned_regions(r).unwrap();
            let covered: usize = regions.iter().map(|g| g.count()).sum();
            assert_eq!(covered, d.local_count(r).unwrap());
            for g in &regions {
                for idx in g.indices() {
                    assert_eq!(d.owner_of(&idx).unwrap(), r);
                }
            }
        }
    }

    #[test]
    fn serial_distribution_owns_everything() {
        let d = DistArrayDesc::new(&[4, 4], Distribution::serial(2).unwrap()).unwrap();
        assert_eq!(d.nranks(), 1);
        assert_eq!(d.local_count(0).unwrap(), 16);
        assert_eq!(d.owner_of(&[3, 3]).unwrap(), 0);
        let regions = d.owned_regions(0).unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].count(), 16);
    }

    #[test]
    fn region_intersection() {
        let a = Region {
            start: vec![0, 0],
            len: vec![4, 4],
        };
        let b = Region {
            start: vec![2, 3],
            len: vec![4, 4],
        };
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.start, vec![2, 3]);
        assert_eq!(i.len, vec![2, 1]);
        let c = Region {
            start: vec![4, 0],
            len: vec![1, 1],
        };
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn region_indices_column_major() {
        let r = Region {
            start: vec![1, 10],
            len: vec![2, 2],
        };
        let idx: Vec<Vec<usize>> = r.indices().collect();
        assert_eq!(
            idx,
            vec![vec![1, 10], vec![2, 10], vec![1, 11], vec![2, 11]]
        );
    }

    #[test]
    fn invalid_descriptors_rejected() {
        assert!(DistArrayDesc::new(&[4], Distribution::serial(2).unwrap()).is_err());
        assert!(DistArrayDesc::new(&[0], Distribution::serial(1).unwrap()).is_err());
        let bad = Distribution::new(
            ProcessGrid::linear(2).unwrap(),
            &[DimDist::BlockCyclic { block: 0 }],
        )
        .unwrap();
        assert!(DistArrayDesc::new(&[4], bad).is_err());
    }

    #[test]
    fn more_procs_than_elements() {
        let d = DistArrayDesc::new(&[2], Distribution::block_1d(5, 1).unwrap()).unwrap();
        assert_eq!(d.owner_of(&[0]).unwrap(), 0);
        assert_eq!(d.owner_of(&[1]).unwrap(), 1);
        assert_eq!(d.local_count(0).unwrap(), 1);
        assert_eq!(d.local_count(4).unwrap(), 0);
        assert!(d.owned_regions(4).unwrap().is_empty() || d.local_count(4).unwrap() == 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_dimdist() -> impl Strategy<Value = DimDist> {
        prop_oneof![
            Just(DimDist::Block),
            Just(DimDist::Cyclic),
            (1usize..4).prop_map(|b| DimDist::BlockCyclic { block: b }),
        ]
    }

    fn arb_desc() -> impl Strategy<Value = DistArrayDesc> {
        (1usize..=3)
            .prop_flat_map(|rank| {
                (
                    proptest::collection::vec(1usize..12, rank),
                    proptest::collection::vec(1usize..4, rank),
                    proptest::collection::vec(arb_dimdist(), rank),
                )
            })
            .prop_map(|(extents, grid, dims)| {
                let grid = ProcessGrid::new(&grid).unwrap();
                let dist = Distribution::new(grid, &dims).unwrap();
                DistArrayDesc::new(&extents, dist).unwrap()
            })
    }

    proptest! {
        #[test]
        fn every_global_index_has_exactly_one_owner(d in arb_desc()) {
            let full = Region {
                start: vec![0; d.rank()],
                len: d.global_extents().to_vec(),
            };
            let mut counts = vec![0usize; d.nranks()];
            for idx in full.indices() {
                let owner = d.owner_of(&idx).unwrap();
                counts[owner] += 1;
            }
            for r in 0..d.nranks() {
                prop_assert_eq!(counts[r], d.local_count(r).unwrap());
            }
            let total: usize = counts.iter().sum();
            prop_assert_eq!(total, full.count());
        }

        #[test]
        fn global_local_bijection(d in arb_desc()) {
            let full = Region {
                start: vec![0; d.rank()],
                len: d.global_extents().to_vec(),
            };
            for idx in full.indices() {
                let (rank, local) = d.global_to_local(&idx).unwrap();
                let back = d.local_to_global(rank, &local).unwrap();
                prop_assert_eq!(back, idx);
            }
        }

        #[test]
        fn owned_regions_partition_ownership(d in arb_desc()) {
            let mut owned_via_regions = vec![0usize; d.nranks()];
            for r in 0..d.nranks() {
                for g in d.owned_regions(r).unwrap() {
                    for idx in g.indices() {
                        prop_assert_eq!(d.owner_of(&idx).unwrap(), r);
                        owned_via_regions[r] += 1;
                    }
                }
            }
            for r in 0..d.nranks() {
                prop_assert_eq!(owned_via_regions[r], d.local_count(r).unwrap());
            }
        }
    }
}
