//! M×N data redistribution between differently distributed components.
//!
//! §6.3: "Collective ports are defined generally enough to allow data to be
//! distributed arbitrarily in the connected components; ... this capability
//! is useful in connecting a parallel numerical simulation with differently
//! distributed visualization tools."
//!
//! A [`RedistPlan`] is the pure-data core of that capability: given a source
//! descriptor over M ranks and a target descriptor over N ranks for the same
//! global array, it computes the exact set of [`Transfer`]s (source rank →
//! destination rank, global region) needed so that every element arrives at
//! its new owner exactly once. The plan is deterministic and symmetric —
//! both sides can compute it independently from the two descriptors, which
//! is how the paper's collective ports avoid any central coordinator.
//!
//! Planning is separated from execution: `cca-parallel` executes plans with
//! messages between SPMD ranks, while [`RedistPlan::apply`] executes them
//! in-memory for testing and for same-address-space connections.

use crate::dist::{DistArrayDesc, Region};
use crate::error::DataError;

/// One message of a redistribution: move the elements of `region` (a global
/// index-space rectangle) from `src_rank`'s local buffer to `dst_rank`'s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Rank in the *source* decomposition that owns the region now.
    pub src_rank: usize,
    /// Rank in the *target* decomposition that must own it afterwards.
    pub dst_rank: usize,
    /// The global region to move.
    pub region: Region,
}

impl Transfer {
    /// Number of elements this transfer moves.
    pub fn count(&self) -> usize {
        self.region.count()
    }
}

/// A complete, deterministic M×N redistribution plan.
///
/// ```
/// use cca_data::{DistArrayDesc, Distribution, RedistPlan};
/// // 12 elements: 3-way block source, serial target (a gather).
/// let src = DistArrayDesc::new(&[12], Distribution::block_1d(3, 1)?)?;
/// let dst = DistArrayDesc::new(&[12], Distribution::serial(1)?)?;
/// let plan = RedistPlan::build(&src, &dst)?;
/// assert_eq!(plan.total_elements(), 12);
/// let out = plan.apply(&[vec![0.0; 4], vec![1.0; 4], vec![2.0; 4]])?;
/// assert_eq!(out[0][4], 1.0); // rank 1's block landed in the middle
/// # Ok::<(), cca_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RedistPlan {
    source: DistArrayDesc,
    target: DistArrayDesc,
    transfers: Vec<Transfer>,
}

/// Process-wide count of [`RedistPlan::build`] invocations. Lets callers
/// (and the plan-cache tests/benches) assert that steady-state timesteps
/// build no new plans.
static BUILD_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl RedistPlan {
    /// Number of times [`RedistPlan::build`] has run in this process.
    pub fn build_count() -> u64 {
        BUILD_COUNT.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Builds the plan by intersecting every source-owned region with every
    /// target-owned region. Cost is O(M·N·regions²) in the worst (cyclic)
    /// case, which is why plans are built once and reused across timesteps
    /// (see the E4 ablation).
    pub fn build(source: &DistArrayDesc, target: &DistArrayDesc) -> Result<Self, DataError> {
        BUILD_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if source.global_extents() != target.global_extents() {
            return Err(DataError::GlobalShapeMismatch {
                source: source.global_extents().to_vec(),
                target: target.global_extents().to_vec(),
            });
        }
        let mut transfers = Vec::new();
        for src_rank in 0..source.nranks() {
            let src_regions = source.owned_regions(src_rank)?;
            if src_regions.is_empty() {
                continue;
            }
            for dst_rank in 0..target.nranks() {
                for dst_region in target.owned_regions(dst_rank)? {
                    for src_region in &src_regions {
                        if let Some(overlap) = src_region.intersect(&dst_region) {
                            transfers.push(Transfer {
                                src_rank,
                                dst_rank,
                                region: overlap,
                            });
                        }
                    }
                }
            }
        }
        Ok(RedistPlan {
            source: source.clone(),
            target: target.clone(),
            transfers,
        })
    }

    /// The individual transfers, ordered by (src, dst).
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }

    /// Source descriptor the plan was built for.
    pub fn source(&self) -> &DistArrayDesc {
        &self.source
    }

    /// Target descriptor the plan was built for.
    pub fn target(&self) -> &DistArrayDesc {
        &self.target
    }

    /// Total number of elements moved (equals the global element count).
    pub fn total_elements(&self) -> usize {
        self.transfers.iter().map(Transfer::count).sum()
    }

    /// Number of elements whose source and destination rank coincide —
    /// with matched decompositions this is *all* of them, the paper's "data
    /// would not need redistribution" fast path.
    pub fn resident_elements(&self) -> usize {
        self.transfers
            .iter()
            .filter(|t| t.src_rank == t.dst_rank)
            .map(Transfer::count)
            .sum()
    }

    /// Number of elements that must cross ranks.
    pub fn moved_elements(&self) -> usize {
        self.total_elements() - self.resident_elements()
    }

    /// True when the two decompositions are element-for-element identical,
    /// so the collective port may skip communication entirely.
    pub fn is_matched(&self) -> bool {
        self.moved_elements() == 0 && self.source.nranks() == self.target.nranks()
    }

    /// Transfers originating at `src_rank` (what that rank must send).
    pub fn sends_from(&self, src_rank: usize) -> impl Iterator<Item = &Transfer> + '_ {
        self.transfers
            .iter()
            .filter(move |t| t.src_rank == src_rank)
    }

    /// Transfers terminating at `dst_rank` (what that rank must receive).
    pub fn receives_at(&self, dst_rank: usize) -> impl Iterator<Item = &Transfer> + '_ {
        self.transfers
            .iter()
            .filter(move |t| t.dst_rank == dst_rank)
    }

    /// Flat column-major offset of a *global* index within `rank`'s local
    /// buffer under descriptor `desc`.
    pub fn local_offset(
        desc: &DistArrayDesc,
        rank: usize,
        global: &[usize],
    ) -> Result<usize, DataError> {
        let (owner, local) = desc.global_to_local(global)?;
        if owner != rank {
            return Err(DataError::InvalidDistribution(format!(
                "global index {global:?} owned by rank {owner}, not {rank}"
            )));
        }
        let extents = desc.local_extents(rank)?;
        let mut off = 0usize;
        let mut stride = 1usize;
        for d in 0..extents.len() {
            off += local[d] * stride;
            stride *= extents[d];
        }
        Ok(off)
    }

    /// Packs the elements of one transfer out of the source rank's local
    /// buffer, in the region's canonical (column-major) traversal order.
    pub fn pack<T: Clone>(&self, t: &Transfer, src_local: &[T]) -> Result<Vec<T>, DataError> {
        let mut out = Vec::with_capacity(t.count());
        self.pack_into(t, src_local, &mut out)?;
        Ok(out)
    }

    /// Buffer-reuse variant of [`pack`](Self::pack): clears `out` and packs
    /// into it, so a steady-state timestep loop reuses one scratch
    /// allocation across every transfer instead of allocating per transfer
    /// (pinned at zero steady-state allocations by `alloc_free.rs`).
    pub fn pack_into<T: Clone>(
        &self,
        t: &Transfer,
        src_local: &[T],
        out: &mut Vec<T>,
    ) -> Result<(), DataError> {
        out.clear();
        out.reserve(t.count());
        for idx in t.region.indices() {
            let off = Self::local_offset(&self.source, t.src_rank, &idx)?;
            out.push(src_local[off].clone());
        }
        Ok(())
    }

    /// Unpacks one transfer's payload into the destination rank's local
    /// buffer (payload must be in the canonical traversal order).
    pub fn unpack<T: Clone>(
        &self,
        t: &Transfer,
        payload: &[T],
        dst_local: &mut [T],
    ) -> Result<(), DataError> {
        if payload.len() != t.count() {
            return Err(DataError::ShapeMismatch {
                expected: vec![t.count()],
                found: vec![payload.len()],
            });
        }
        for (k, idx) in t.region.indices().enumerate() {
            let off = Self::local_offset(&self.target, t.dst_rank, &idx)?;
            dst_local[off] = payload[k].clone();
        }
        Ok(())
    }

    /// Executes the whole plan in memory: given every source rank's local
    /// buffer, produces every target rank's local buffer. Used for testing
    /// and for same-address-space collective connections.
    pub fn apply<T: Clone + Default>(
        &self,
        src_buffers: &[Vec<T>],
    ) -> Result<Vec<Vec<T>>, DataError> {
        if src_buffers.len() != self.source.nranks() {
            return Err(DataError::ShapeMismatch {
                expected: vec![self.source.nranks()],
                found: vec![src_buffers.len()],
            });
        }
        for (r, buf) in src_buffers.iter().enumerate() {
            let want = self.source.local_count(r)?;
            if buf.len() != want {
                return Err(DataError::ShapeMismatch {
                    expected: vec![want],
                    found: vec![buf.len()],
                });
            }
        }
        let mut dst: Vec<Vec<T>> = (0..self.target.nranks())
            .map(|r| vec![T::default(); self.target.local_count(r).unwrap_or(0)])
            .collect();
        // One scratch payload reused across every transfer.
        let mut payload = Vec::new();
        for t in &self.transfers {
            self.pack_into(t, &src_buffers[t.src_rank], &mut payload)?;
            self.unpack(t, &payload, &mut dst[t.dst_rank])?;
        }
        Ok(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{DimDist, Distribution, ProcessGrid};

    fn block_desc(n: usize, p: usize) -> DistArrayDesc {
        DistArrayDesc::new(&[n], Distribution::block_1d(p, 1).unwrap()).unwrap()
    }

    fn cyclic_desc(n: usize, p: usize) -> DistArrayDesc {
        let dist = Distribution::new(ProcessGrid::linear(p).unwrap(), &[DimDist::Cyclic]).unwrap();
        DistArrayDesc::new(&[n], dist).unwrap()
    }

    /// Fill each source rank's buffer with the global linear index of each
    /// element, so correctness after redistribution is directly checkable.
    fn tagged_buffers(desc: &DistArrayDesc) -> Vec<Vec<u64>> {
        (0..desc.nranks())
            .map(|r| {
                let n = desc.local_count(r).unwrap();
                let mut buf = vec![0u64; n];
                for region in desc.owned_regions(r).unwrap() {
                    for idx in region.indices() {
                        let off = RedistPlan::local_offset(desc, r, &idx).unwrap();
                        let gid: u64 = global_id(desc.global_extents(), &idx);
                        buf[off] = gid;
                    }
                }
                buf
            })
            .collect()
    }

    fn global_id(extents: &[usize], idx: &[usize]) -> u64 {
        let mut id = 0u64;
        let mut stride = 1u64;
        for d in 0..extents.len() {
            id += idx[d] as u64 * stride;
            stride *= extents[d] as u64;
        }
        id
    }

    fn check_redistributed(desc: &DistArrayDesc, buffers: &[Vec<u64>]) {
        for r in 0..desc.nranks() {
            for region in desc.owned_regions(r).unwrap() {
                for idx in region.indices() {
                    let off = RedistPlan::local_offset(desc, r, &idx).unwrap();
                    assert_eq!(
                        buffers[r][off],
                        global_id(desc.global_extents(), &idx),
                        "rank {r} index {idx:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn matched_decomposition_moves_nothing() {
        let src = block_desc(12, 4);
        let dst = block_desc(12, 4);
        let plan = RedistPlan::build(&src, &dst).unwrap();
        assert!(plan.is_matched());
        assert_eq!(plan.moved_elements(), 0);
        assert_eq!(plan.total_elements(), 12);
    }

    #[test]
    fn serial_to_parallel_is_scatter() {
        let src = block_desc(12, 1);
        let dst = block_desc(12, 4);
        let plan = RedistPlan::build(&src, &dst).unwrap();
        // Everything leaves rank 0 except the part rank 0 keeps.
        assert_eq!(plan.total_elements(), 12);
        assert_eq!(plan.resident_elements(), 3);
        assert_eq!(plan.sends_from(0).count(), 4);
        let out = plan.apply(&tagged_buffers(&src)).unwrap();
        check_redistributed(&dst, &out);
    }

    #[test]
    fn parallel_to_serial_is_gather() {
        let src = block_desc(10, 3);
        let dst = block_desc(10, 1);
        let plan = RedistPlan::build(&src, &dst).unwrap();
        assert_eq!(plan.receives_at(0).count(), 3);
        let out = plan.apply(&tagged_buffers(&src)).unwrap();
        assert_eq!(out.len(), 1);
        check_redistributed(&dst, &out);
    }

    #[test]
    fn block_to_cyclic_mxn() {
        let src = block_desc(16, 4);
        let dst = cyclic_desc(16, 3);
        let plan = RedistPlan::build(&src, &dst).unwrap();
        assert_eq!(plan.total_elements(), 16);
        let out = plan.apply(&tagged_buffers(&src)).unwrap();
        check_redistributed(&dst, &out);
    }

    #[test]
    fn shrinking_rank_count_4_to_2() {
        let src = block_desc(20, 4);
        let dst = block_desc(20, 2);
        let plan = RedistPlan::build(&src, &dst).unwrap();
        let out = plan.apply(&tagged_buffers(&src)).unwrap();
        check_redistributed(&dst, &out);
        // Only src rank 0's block lands on the same-numbered dst rank
        // (src 1 -> dst 0, src 2/3 -> dst 1).
        assert_eq!(plan.resident_elements(), 5);
        assert_eq!(plan.moved_elements(), 15);
    }

    #[test]
    fn two_dimensional_redistribution() {
        let src = DistArrayDesc::new(
            &[6, 6],
            Distribution::new(
                ProcessGrid::new(&[2, 1]).unwrap(),
                &[DimDist::Block, DimDist::Block],
            )
            .unwrap(),
        )
        .unwrap();
        let dst = DistArrayDesc::new(
            &[6, 6],
            Distribution::new(
                ProcessGrid::new(&[1, 3]).unwrap(),
                &[DimDist::Block, DimDist::Cyclic],
            )
            .unwrap(),
        )
        .unwrap();
        let plan = RedistPlan::build(&src, &dst).unwrap();
        assert_eq!(plan.total_elements(), 36);
        let out = plan.apply(&tagged_buffers(&src)).unwrap();
        check_redistributed(&dst, &out);
    }

    #[test]
    fn mismatched_global_shapes_rejected() {
        let src = block_desc(10, 2);
        let dst = block_desc(12, 2);
        assert!(matches!(
            RedistPlan::build(&src, &dst),
            Err(DataError::GlobalShapeMismatch { .. })
        ));
    }

    #[test]
    fn apply_validates_buffer_shapes() {
        let src = block_desc(8, 2);
        let dst = block_desc(8, 2);
        let plan = RedistPlan::build(&src, &dst).unwrap();
        // Wrong number of buffers.
        assert!(plan.apply(&[vec![0u64; 4]]).is_err());
        // Wrong buffer length.
        assert!(plan.apply(&[vec![0u64; 3], vec![0u64; 4]]).is_err());
    }

    #[test]
    fn pack_unpack_round_trip_single_transfer() {
        let src = block_desc(8, 2);
        let dst = block_desc(8, 4);
        let plan = RedistPlan::build(&src, &dst).unwrap();
        let bufs = tagged_buffers(&src);
        let mut out: Vec<Vec<u64>> = (0..4)
            .map(|r| vec![0; dst.local_count(r).unwrap()])
            .collect();
        for t in plan.transfers() {
            let payload = plan.pack(t, &bufs[t.src_rank]).unwrap();
            plan.unpack(t, &payload, &mut out[t.dst_rank]).unwrap();
        }
        check_redistributed(&dst, &out);
    }

    #[test]
    fn unpack_rejects_wrong_payload_length() {
        let src = block_desc(8, 2);
        let dst = block_desc(8, 4);
        let plan = RedistPlan::build(&src, &dst).unwrap();
        let t = &plan.transfers()[0];
        let mut out = vec![0u64; dst.local_count(t.dst_rank).unwrap()];
        assert!(plan
            .unpack(t, &vec![0u64; t.count() + 1], &mut out)
            .is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::dist::{DimDist, Distribution, ProcessGrid};
    use proptest::prelude::*;

    fn arb_dist(rank: usize) -> impl Strategy<Value = Distribution> {
        (
            proptest::collection::vec(1usize..4, rank),
            proptest::collection::vec(
                prop_oneof![
                    Just(DimDist::Block),
                    Just(DimDist::Cyclic),
                    (1usize..3).prop_map(|b| DimDist::BlockCyclic { block: b }),
                ],
                rank,
            ),
        )
            .prop_map(|(grid, dims)| {
                Distribution::new(ProcessGrid::new(&grid).unwrap(), &dims).unwrap()
            })
    }

    fn arb_pair() -> impl Strategy<Value = (DistArrayDesc, DistArrayDesc)> {
        (1usize..=2)
            .prop_flat_map(|rank| {
                (
                    proptest::collection::vec(1usize..10, rank),
                    arb_dist(rank),
                    arb_dist(rank),
                )
            })
            .prop_map(|(extents, d1, d2)| {
                (
                    DistArrayDesc::new(&extents, d1).unwrap(),
                    DistArrayDesc::new(&extents, d2).unwrap(),
                )
            })
    }

    proptest! {
        #[test]
        fn plan_moves_every_element_exactly_once((src, dst) in arb_pair()) {
            let plan = RedistPlan::build(&src, &dst).unwrap();
            let global: usize = src.global_extents().iter().product();
            prop_assert_eq!(plan.total_elements(), global);
            // No two transfers overlap: mark every (global index) once.
            let mut seen = vec![false; global];
            for t in plan.transfers() {
                for idx in t.region.indices() {
                    let mut id = 0usize;
                    let mut stride = 1usize;
                    for d in 0..idx.len() {
                        id += idx[d] * stride;
                        stride *= src.global_extents()[d];
                    }
                    prop_assert!(!seen[id], "element {:?} moved twice", idx);
                    seen[id] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn apply_delivers_correct_values((src, dst) in arb_pair()) {
            let plan = RedistPlan::build(&src, &dst).unwrap();
            // Tag every element with its global id.
            let bufs: Vec<Vec<u64>> = (0..src.nranks()).map(|r| {
                let mut buf = vec![0u64; src.local_count(r).unwrap()];
                for region in src.owned_regions(r).unwrap() {
                    for idx in region.indices() {
                        let off = RedistPlan::local_offset(&src, r, &idx).unwrap();
                        let mut id = 0u64;
                        let mut stride = 1u64;
                        for d in 0..idx.len() {
                            id += idx[d] as u64 * stride;
                            stride *= src.global_extents()[d] as u64;
                        }
                        buf[off] = id;
                    }
                }
                buf
            }).collect();
            let out = plan.apply(&bufs).unwrap();
            for r in 0..dst.nranks() {
                for region in dst.owned_regions(r).unwrap() {
                    for idx in region.indices() {
                        let off = RedistPlan::local_offset(&dst, r, &idx).unwrap();
                        let mut id = 0u64;
                        let mut stride = 1u64;
                        for d in 0..idx.len() {
                            id += idx[d] as u64 * stride;
                            stride *= dst.global_extents()[d] as u64;
                        }
                        prop_assert_eq!(out[r][off], id);
                    }
                }
            }
        }

        #[test]
        fn identical_descriptors_are_matched(desc in arb_pair().prop_map(|(s, _)| s)) {
            let plan = RedistPlan::build(&desc, &desc).unwrap();
            prop_assert!(plan.is_matched());
        }

        #[test]
        fn compiled_plan_equals_interpreted_plan((src, dst) in arb_pair()) {
            let plan = RedistPlan::build(&src, &dst).unwrap();
            let compiled = plan.compile().unwrap();
            let bufs: Vec<Vec<u64>> = (0..src.nranks()).map(|r| {
                let n = src.local_count(r).unwrap();
                (0..n as u64).map(|k| k * 1000 + r as u64).collect()
            }).collect();
            prop_assert_eq!(plan.apply(&bufs).unwrap(), compiled.apply(&bufs).unwrap());
        }
    }
}

/// A [`RedistPlan`] with per-transfer flat offsets precomputed — the form
/// a collective port actually executes every timestep.
///
/// [`RedistPlan::pack`]/[`RedistPlan::unpack`] translate every element's
/// global index to a local offset on every call (division-heavy, ~100s of
/// ns/element). Compiling does that translation once per connection; the
/// per-timestep work collapses to indexed gathers/scatters. Experiment E4
/// measures both paths as the plan-reuse ablation called out in DESIGN.md.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    transfers: Vec<CompiledTransfer>,
    src_counts: Vec<usize>,
    dst_counts: Vec<usize>,
}

/// One transfer with its gather/scatter index lists.
#[derive(Debug, Clone)]
pub struct CompiledTransfer {
    /// Source rank.
    pub src_rank: usize,
    /// Destination rank.
    pub dst_rank: usize,
    /// Flat offsets into the source rank's local buffer, in payload order.
    pub src_offsets: Box<[usize]>,
    /// Flat offsets into the destination rank's local buffer, same order.
    pub dst_offsets: Box<[usize]>,
}

impl CompiledTransfer {
    /// Elements moved by this transfer.
    pub fn count(&self) -> usize {
        self.src_offsets.len()
    }

    /// Gathers this transfer's payload from the source local buffer.
    pub fn pack<T: Clone>(&self, src_local: &[T]) -> Vec<T> {
        self.src_offsets
            .iter()
            .map(|&off| src_local[off].clone())
            .collect()
    }

    /// Buffer-reuse variant of [`pack`](Self::pack): clears `out` and
    /// gathers into it, so timestep loops reuse one scratch allocation.
    pub fn pack_into<T: Clone>(&self, src_local: &[T], out: &mut Vec<T>) {
        out.clear();
        out.reserve(self.src_offsets.len());
        for &off in self.src_offsets.iter() {
            out.push(src_local[off].clone());
        }
    }

    /// Gathers elements `[first, first + count)` of this transfer's packed
    /// payload into `out` (cleared first) — the chunk-sized gather the bulk
    /// data plane streams, bounded by the chunk, not the transfer.
    pub fn pack_range_into<T: Clone>(
        &self,
        src_local: &[T],
        first: usize,
        count: usize,
        out: &mut Vec<T>,
    ) {
        out.clear();
        out.reserve(count);
        for &off in &self.src_offsets[first..first + count] {
            out.push(src_local[off].clone());
        }
    }

    /// Scatters a payload into the destination local buffer.
    pub fn unpack<T: Clone>(&self, payload: &[T], dst_local: &mut [T]) {
        debug_assert_eq!(payload.len(), self.dst_offsets.len());
        for (v, &off) in payload.iter().zip(self.dst_offsets.iter()) {
            dst_local[off] = v.clone();
        }
    }

    /// Scatters a payload slice representing elements `[first,
    /// first + payload.len())` of the packed order — the landing half of a
    /// chunked transfer, scattering straight from the received bytes'
    /// element view into the destination local slice.
    pub fn unpack_range<T: Clone>(&self, payload: &[T], first: usize, dst_local: &mut [T]) {
        for (v, &off) in payload
            .iter()
            .zip(self.dst_offsets[first..first + payload.len()].iter())
        {
            dst_local[off] = v.clone();
        }
    }
}

impl RedistPlan {
    /// Precomputes every transfer's offset lists.
    pub fn compile(&self) -> Result<CompiledPlan, DataError> {
        let mut transfers = Vec::with_capacity(self.transfers.len());
        for t in &self.transfers {
            let n = t.count();
            let mut src_offsets = Vec::with_capacity(n);
            let mut dst_offsets = Vec::with_capacity(n);
            for idx in t.region.indices() {
                src_offsets.push(Self::local_offset(&self.source, t.src_rank, &idx)?);
                dst_offsets.push(Self::local_offset(&self.target, t.dst_rank, &idx)?);
            }
            transfers.push(CompiledTransfer {
                src_rank: t.src_rank,
                dst_rank: t.dst_rank,
                src_offsets: src_offsets.into_boxed_slice(),
                dst_offsets: dst_offsets.into_boxed_slice(),
            });
        }
        Ok(CompiledPlan {
            transfers,
            src_counts: (0..self.source.nranks())
                .map(|r| self.source.local_count(r))
                .collect::<Result<_, _>>()?,
            dst_counts: (0..self.target.nranks())
                .map(|r| self.target.local_count(r))
                .collect::<Result<_, _>>()?,
        })
    }
}

impl CompiledPlan {
    /// The compiled transfers in plan order.
    pub fn transfers(&self) -> &[CompiledTransfer] {
        &self.transfers
    }

    /// Transfers originating at `src_rank`.
    pub fn sends_from(&self, src_rank: usize) -> impl Iterator<Item = &CompiledTransfer> + '_ {
        self.transfers
            .iter()
            .filter(move |t| t.src_rank == src_rank)
    }

    /// Transfers terminating at `dst_rank`.
    pub fn receives_at(&self, dst_rank: usize) -> impl Iterator<Item = &CompiledTransfer> + '_ {
        self.transfers
            .iter()
            .filter(move |t| t.dst_rank == dst_rank)
    }

    /// In-memory execution (the fast counterpart of [`RedistPlan::apply`]).
    pub fn apply<T: Clone + Default>(
        &self,
        src_buffers: &[Vec<T>],
    ) -> Result<Vec<Vec<T>>, DataError> {
        if src_buffers.len() != self.src_counts.len() {
            return Err(DataError::ShapeMismatch {
                expected: vec![self.src_counts.len()],
                found: vec![src_buffers.len()],
            });
        }
        for (r, buf) in src_buffers.iter().enumerate() {
            if buf.len() != self.src_counts[r] {
                return Err(DataError::ShapeMismatch {
                    expected: vec![self.src_counts[r]],
                    found: vec![buf.len()],
                });
            }
        }
        let mut dst: Vec<Vec<T>> = self
            .dst_counts
            .iter()
            .map(|&n| vec![T::default(); n])
            .collect();
        self.apply_into(src_buffers, &mut dst)?;
        Ok(dst)
    }

    /// Allocation-free execution into caller-owned destination buffers —
    /// the steady-state timestep path. Both buffer sets are validated
    /// against the plan's rank counts; the scatter itself performs zero
    /// heap allocations (pinned by `alloc_free.rs`).
    pub fn apply_into<T: Clone>(
        &self,
        src_buffers: &[Vec<T>],
        dst_buffers: &mut [Vec<T>],
    ) -> Result<(), DataError> {
        if src_buffers.len() != self.src_counts.len() {
            return Err(DataError::ShapeMismatch {
                expected: vec![self.src_counts.len()],
                found: vec![src_buffers.len()],
            });
        }
        for (r, buf) in src_buffers.iter().enumerate() {
            if buf.len() != self.src_counts[r] {
                return Err(DataError::ShapeMismatch {
                    expected: vec![self.src_counts[r]],
                    found: vec![buf.len()],
                });
            }
        }
        if dst_buffers.len() != self.dst_counts.len() {
            return Err(DataError::ShapeMismatch {
                expected: vec![self.dst_counts.len()],
                found: vec![dst_buffers.len()],
            });
        }
        for (r, buf) in dst_buffers.iter().enumerate() {
            if buf.len() != self.dst_counts[r] {
                return Err(DataError::ShapeMismatch {
                    expected: vec![self.dst_counts[r]],
                    found: vec![buf.len()],
                });
            }
        }
        for t in &self.transfers {
            let src = &src_buffers[t.src_rank];
            let out = &mut dst_buffers[t.dst_rank];
            for (&s, &d) in t.src_offsets.iter().zip(t.dst_offsets.iter()) {
                out[d] = src[s].clone();
            }
        }
        Ok(())
    }

    /// Number of source ranks.
    pub fn src_ranks(&self) -> usize {
        self.src_counts.len()
    }

    /// Number of destination ranks.
    pub fn dst_ranks(&self) -> usize {
        self.dst_counts.len()
    }

    /// Local element count of source rank `r`.
    pub fn src_count(&self, r: usize) -> usize {
        self.src_counts[r]
    }

    /// Local element count of destination rank `r`.
    pub fn dst_count(&self, r: usize) -> usize {
        self.dst_counts[r]
    }

    /// Precomputes the per-peer *wire* layout of this plan for the bulk
    /// data plane, the same way compiling precomputed the region offsets:
    /// each transfer's total packed byte count and its division into
    /// aligned chunks of (at most) `chunk_bytes`. Sender and receiver both
    /// derive the layout from the same compiled plan, so chunk boundaries
    /// never need negotiating on the wire. `chunk_bytes` is rounded down
    /// to an element multiple (minimum one element).
    pub fn wire_layout(&self, elem_size: usize, chunk_bytes: usize) -> WireLayout {
        assert!(elem_size > 0, "element size must be nonzero");
        let chunk = (chunk_bytes / elem_size).max(1) * elem_size;
        WireLayout {
            elem_size,
            chunk_bytes: chunk,
            totals: self
                .transfers
                .iter()
                .map(|t| (t.count() * elem_size) as u64)
                .collect(),
        }
    }
}

/// The precomputed wire shape of a [`CompiledPlan`] for one element type:
/// per-transfer packed byte totals and deterministic chunk boundaries.
/// See [`CompiledPlan::wire_layout`].
#[derive(Debug, Clone)]
pub struct WireLayout {
    elem_size: usize,
    chunk_bytes: usize,
    totals: Box<[u64]>,
}

impl WireLayout {
    /// Bytes per element.
    pub fn elem_size(&self) -> usize {
        self.elem_size
    }

    /// The (element-aligned) chunk size every slab body is bounded by.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Number of transfers in the plan.
    pub fn transfer_count(&self) -> usize {
        self.totals.len()
    }

    /// Total packed bytes of transfer `t`.
    pub fn transfer_bytes(&self, t: usize) -> u64 {
        self.totals[t]
    }

    /// Number of chunks transfer `t` streams as.
    pub fn chunk_count(&self, t: usize) -> usize {
        (self.totals[t] as usize).div_ceil(self.chunk_bytes)
    }

    /// The `(byte offset, byte length)` chunk boundaries of transfer `t`,
    /// starting at the chunk containing `from_byte` — pass the resume
    /// watermark after a failure, or 0 for a fresh stream. Boundaries are
    /// a pure function of the layout, so a resumed stream re-produces
    /// exactly the chunks the first attempt would have sent. (A
    /// zero-element transfer has no chunks and is complete by vacuity.)
    pub fn chunks_from(&self, t: usize, from_byte: u64) -> impl Iterator<Item = (u64, usize)> + '_ {
        let total = self.totals[t];
        let chunk = self.chunk_bytes as u64;
        let first = from_byte / chunk;
        (first..).map_while(move |i| {
            let offset = i * chunk;
            if offset >= total {
                return None;
            }
            let len = chunk.min(total - offset) as usize;
            Some((offset, len))
        })
    }
}

#[cfg(test)]
mod compiled_tests {
    use super::*;
    use crate::dist::{DimDist, Distribution, ProcessGrid};

    fn block_desc(n: usize, p: usize) -> DistArrayDesc {
        DistArrayDesc::new(&[n], Distribution::block_1d(p, 1).unwrap()).unwrap()
    }

    fn cyclic_desc(n: usize, p: usize) -> DistArrayDesc {
        let dist = Distribution::new(ProcessGrid::linear(p).unwrap(), &[DimDist::Cyclic]).unwrap();
        DistArrayDesc::new(&[n], dist).unwrap()
    }

    fn tagged(desc: &DistArrayDesc) -> Vec<Vec<u64>> {
        (0..desc.nranks())
            .map(|r| {
                let mut buf = vec![0u64; desc.local_count(r).unwrap()];
                for region in desc.owned_regions(r).unwrap() {
                    for idx in region.indices() {
                        let off = RedistPlan::local_offset(desc, r, &idx).unwrap();
                        buf[off] = idx[0] as u64;
                    }
                }
                buf
            })
            .collect()
    }

    #[test]
    fn compiled_apply_matches_interpreted_apply() {
        for (src, dst) in [
            (block_desc(24, 4), block_desc(24, 4)),
            (block_desc(24, 1), block_desc(24, 4)),
            (block_desc(24, 4), cyclic_desc(24, 3)),
            (cyclic_desc(17, 2), block_desc(17, 5)),
        ] {
            let plan = RedistPlan::build(&src, &dst).unwrap();
            let compiled = plan.compile().unwrap();
            let bufs = tagged(&src);
            assert_eq!(
                plan.apply(&bufs).unwrap(),
                compiled.apply(&bufs).unwrap(),
                "{src:?} -> {dst:?}"
            );
        }
    }

    #[test]
    fn compiled_pack_unpack_matches_interpreted() {
        let src = block_desc(16, 2);
        let dst = cyclic_desc(16, 3);
        let plan = RedistPlan::build(&src, &dst).unwrap();
        let compiled = plan.compile().unwrap();
        let bufs = tagged(&src);
        for (t, ct) in plan.transfers().iter().zip(compiled.transfers()) {
            assert_eq!(t.src_rank, ct.src_rank);
            assert_eq!(t.dst_rank, ct.dst_rank);
            assert_eq!(t.count(), ct.count());
            let slow = plan.pack(t, &bufs[t.src_rank]).unwrap();
            let fast = ct.pack(&bufs[ct.src_rank]);
            assert_eq!(slow, fast);
        }
    }

    #[test]
    fn compiled_apply_validates_buffers() {
        let plan = RedistPlan::build(&block_desc(8, 2), &block_desc(8, 2)).unwrap();
        let compiled = plan.compile().unwrap();
        assert!(compiled.apply(&[vec![0u8; 4]]).is_err());
        assert!(compiled.apply(&[vec![0u8; 4], vec![0u8; 3]]).is_err());
    }

    #[test]
    fn send_receive_views() {
        let plan = RedistPlan::build(&block_desc(12, 3), &block_desc(12, 2)).unwrap();
        let compiled = plan.compile().unwrap();
        let total_sends: usize = (0..3).map(|r| compiled.sends_from(r).count()).sum();
        let total_recvs: usize = (0..2).map(|r| compiled.receives_at(r).count()).sum();
        assert_eq!(total_sends, compiled.transfers().len());
        assert_eq!(total_recvs, compiled.transfers().len());
    }

    #[test]
    fn apply_into_matches_apply_and_validates_destinations() {
        let plan = RedistPlan::build(&block_desc(24, 4), &cyclic_desc(24, 3)).unwrap();
        let compiled = plan.compile().unwrap();
        let bufs = tagged(&block_desc(24, 4));
        let fresh = compiled.apply(&bufs).unwrap();
        let mut reused: Vec<Vec<u64>> = (0..compiled.dst_ranks())
            .map(|r| vec![0; compiled.dst_count(r)])
            .collect();
        compiled.apply_into(&bufs, &mut reused).unwrap();
        assert_eq!(fresh, reused);
        // Wrong destination rank count / buffer length are typed errors.
        assert!(compiled
            .apply_into(&bufs, &mut reused[..2].to_vec())
            .is_err());
        let mut short = reused.clone();
        short[0].pop();
        assert!(compiled.apply_into(&bufs, &mut short).is_err());
    }

    #[test]
    fn wire_layout_chunks_tile_each_transfer_exactly() {
        let plan = RedistPlan::build(&block_desc(100, 2), &cyclic_desc(100, 3)).unwrap();
        let compiled = plan.compile().unwrap();
        // 24-byte chunks over f64: rounds down to 3 elements per chunk.
        let layout = compiled.wire_layout(8, 25);
        assert_eq!(layout.chunk_bytes(), 24);
        assert_eq!(layout.elem_size(), 8);
        assert_eq!(layout.transfer_count(), compiled.transfers().len());
        for (t, ct) in compiled.transfers().iter().enumerate() {
            assert_eq!(layout.transfer_bytes(t), (ct.count() * 8) as u64);
            let chunks: Vec<(u64, usize)> = layout.chunks_from(t, 0).collect();
            assert_eq!(chunks.len(), layout.chunk_count(t));
            // Chunks tile [0, total) contiguously, each a multiple of the
            // element size, each bounded by the chunk size.
            let mut expect = 0u64;
            for (offset, len) in &chunks {
                assert_eq!(*offset, expect);
                assert!(*len > 0 && *len <= 24 && *len % 8 == 0);
                expect += *len as u64;
            }
            assert_eq!(expect, layout.transfer_bytes(t));
            // Resuming from a mid-chunk watermark re-yields that chunk.
            if chunks.len() > 1 {
                let resumed: Vec<_> = layout.chunks_from(t, chunks[1].0 + 1).collect();
                assert_eq!(resumed[0], chunks[1]);
            }
        }
    }

    #[test]
    fn pack_range_and_unpack_range_compose_to_full_transfer() {
        let src = block_desc(40, 2);
        let dst = cyclic_desc(40, 3);
        let plan = RedistPlan::build(&src, &dst).unwrap();
        let compiled = plan.compile().unwrap();
        let bufs = tagged(&src);
        let whole = compiled.apply(&bufs).unwrap();
        let mut chunked: Vec<Vec<u64>> = (0..compiled.dst_ranks())
            .map(|r| vec![0; compiled.dst_count(r)])
            .collect();
        let mut scratch = Vec::new();
        for ct in compiled.transfers() {
            // 3 elements at a time, reusing one scratch buffer.
            let mut first = 0;
            while first < ct.count() {
                let n = 3.min(ct.count() - first);
                ct.pack_range_into(&bufs[ct.src_rank], first, n, &mut scratch);
                ct.unpack_range(&scratch, first, &mut chunked[ct.dst_rank]);
                first += n;
            }
        }
        assert_eq!(whole, chunked);
    }
}
