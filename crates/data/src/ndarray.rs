//! Dynamically dimensioned, Fortran-style multidimensional arrays.
//!
//! §5 of the paper requires the SIDL to support "dynamically dimensioned
//! multidimensional arrays" with Fortran semantics, because scientific
//! components written in Fortran 77/90 exchange such arrays across language
//! boundaries. [`NdArray`] reproduces the Babel-era array model:
//!
//! * rank is a *runtime* property (1 ..= [`MAX_RANK`]),
//! * storage is column-major ([`Order::ColumnMajor`]) by default, the layout
//!   Fortran mandates, with row-major available for C callers,
//! * each dimension has an arbitrary (possibly negative) *lower bound*, as
//!   in `REAL A(-3:10)`,
//! * explicit strides permit describing non-contiguous sections, which is
//!   what array-section arguments (`A(1:10:2, :)`) marshal to.

use crate::error::DataError;
use std::fmt;

/// Maximum supported array rank (the Babel/SIDL implementations capped
/// arrays at rank 7, matching Fortran 77's limit).
pub const MAX_RANK: usize = 7;

/// Storage order of an [`NdArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Order {
    /// Fortran order: the *first* index varies fastest. SIDL's default.
    #[default]
    ColumnMajor,
    /// C order: the *last* index varies fastest.
    RowMajor,
}

/// A slice specification for one dimension: `start ..= end` (inclusive, in
/// index space, honouring lower bounds) with a positive `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    /// First index taken (in the dimension's own index space).
    pub start: isize,
    /// Last index that may be taken (inclusive).
    pub end: isize,
    /// Step between taken indices; must be >= 1.
    pub step: usize,
}

impl Slice {
    /// A contiguous inclusive range with step 1.
    pub fn range(start: isize, end: isize) -> Self {
        Slice {
            start,
            end,
            step: 1,
        }
    }

    /// A strided inclusive range.
    pub fn strided(start: isize, end: isize, step: usize) -> Self {
        Slice { start, end, step }
    }

    /// Number of indices the slice selects (0 if the range is empty).
    pub fn len(&self) -> usize {
        if self.end < self.start || self.step == 0 {
            0
        } else {
            (self.end - self.start) as usize / self.step + 1
        }
    }

    /// True if the slice selects no indices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A dynamically dimensioned multidimensional array.
///
/// The array owns its storage. Logical indices run from `lower[d]` to
/// `lower[d] + extents[d] - 1` in each dimension `d`.
#[derive(Clone, PartialEq)]
pub struct NdArray<T> {
    data: Vec<T>,
    lower: Vec<isize>,
    extents: Vec<usize>,
    strides: Vec<usize>,
    order: Order,
}

impl<T: Clone + Default> NdArray<T> {
    /// Creates an array of the given extents filled with `T::default()`,
    /// lower bounds all zero, column-major.
    pub fn zeros(extents: &[usize]) -> Self {
        Self::filled(extents, T::default())
    }
}

impl<T: Clone> NdArray<T> {
    /// Creates an array of the given extents filled with copies of `value`.
    pub fn filled(extents: &[usize], value: T) -> Self {
        let n: usize = extents.iter().product();
        Self::from_vec_ordered(extents, vec![value; n], Order::ColumnMajor)
            .expect("extents product matches data length by construction")
    }

    /// Creates a column-major array from a flat vector whose elements are
    /// already in column-major order. Lower bounds are zero.
    pub fn from_vec(extents: &[usize], data: Vec<T>) -> Result<Self, DataError> {
        Self::from_vec_ordered(extents, data, Order::ColumnMajor)
    }

    /// Creates an array from a flat vector in the given storage order.
    pub fn from_vec_ordered(
        extents: &[usize],
        data: Vec<T>,
        order: Order,
    ) -> Result<Self, DataError> {
        let lower = vec![0isize; extents.len()];
        Self::with_lower(&lower, extents, data, order)
    }

    /// Full-control constructor: explicit lower bounds, extents, storage
    /// order. `data.len()` must equal the product of `extents`.
    pub fn with_lower(
        lower: &[isize],
        extents: &[usize],
        data: Vec<T>,
        order: Order,
    ) -> Result<Self, DataError> {
        if extents.is_empty() || extents.len() > MAX_RANK {
            return Err(DataError::RankMismatch {
                expected: MAX_RANK,
                found: extents.len(),
            });
        }
        if lower.len() != extents.len() {
            return Err(DataError::RankMismatch {
                expected: extents.len(),
                found: lower.len(),
            });
        }
        let n: usize = extents.iter().product();
        if data.len() != n {
            return Err(DataError::ShapeMismatch {
                expected: extents.to_vec(),
                found: vec![data.len()],
            });
        }
        let strides = Self::contiguous_strides(extents, order);
        Ok(NdArray {
            data,
            lower: lower.to_vec(),
            extents: extents.to_vec(),
            strides,
            order,
        })
    }

    fn contiguous_strides(extents: &[usize], order: Order) -> Vec<usize> {
        let rank = extents.len();
        let mut strides = vec![1usize; rank];
        match order {
            Order::ColumnMajor => {
                for d in 1..rank {
                    strides[d] = strides[d - 1] * extents[d - 1];
                }
            }
            Order::RowMajor => {
                for d in (0..rank.saturating_sub(1)).rev() {
                    strides[d] = strides[d + 1] * extents[d + 1];
                }
            }
        }
        strides
    }

    /// Array rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Per-dimension extents.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Per-dimension lower bounds.
    pub fn lower(&self) -> &[isize] {
        &self.lower
    }

    /// Per-dimension upper bounds (inclusive).
    pub fn upper(&self) -> Vec<isize> {
        self.lower
            .iter()
            .zip(&self.extents)
            .map(|(&l, &e)| l + e as isize - 1)
            .collect()
    }

    /// Storage order.
    pub fn order(&self) -> Order {
        self.order
    }

    /// Per-dimension strides, in elements.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Flat storage offset of a logical multi-index.
    pub fn offset_of(&self, index: &[isize]) -> Result<usize, DataError> {
        if index.len() != self.rank() {
            return Err(DataError::RankMismatch {
                expected: self.rank(),
                found: index.len(),
            });
        }
        let mut off = 0usize;
        for d in 0..self.rank() {
            let rel = index[d] - self.lower[d];
            if rel < 0 || rel as usize >= self.extents[d] {
                return Err(DataError::IndexOutOfBounds {
                    index: index.to_vec(),
                    lower: self.lower.clone(),
                    extents: self.extents.clone(),
                });
            }
            off += rel as usize * self.strides[d];
        }
        Ok(off)
    }

    /// Logical multi-index of a flat storage offset (the inverse of
    /// [`offset_of`](Self::offset_of) for contiguous arrays).
    pub fn multi_index_of(&self, offset: usize) -> Result<Vec<isize>, DataError> {
        if offset >= self.len() {
            return Err(DataError::IndexOutOfBounds {
                index: vec![offset as isize],
                lower: vec![0],
                extents: vec![self.len()],
            });
        }
        let mut index = vec![0isize; self.rank()];
        for d in 0..self.rank() {
            let rel = (offset / self.strides[d]) % self.extents[d];
            index[d] = self.lower[d] + rel as isize;
        }
        Ok(index)
    }

    /// Reference to the element at a logical multi-index.
    pub fn get(&self, index: &[isize]) -> Result<&T, DataError> {
        Ok(&self.data[self.offset_of(index)?])
    }

    /// Mutable reference to the element at a logical multi-index.
    pub fn get_mut(&mut self, index: &[isize]) -> Result<&mut T, DataError> {
        let off = self.offset_of(index)?;
        Ok(&mut self.data[off])
    }

    /// Sets the element at a logical multi-index.
    pub fn set(&mut self, index: &[isize], value: T) -> Result<(), DataError> {
        let off = self.offset_of(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Raw storage in layout order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw storage in layout order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the array, returning its flat storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterates over `(multi_index, &element)` pairs in storage order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = (Vec<isize>, &T)> + '_ {
        (0..self.len()).map(move |off| {
            (
                self.multi_index_of(off).expect("offset in range"),
                &self.data[off],
            )
        })
    }

    /// Extracts a rectangular (possibly strided) section as a new owned
    /// array. The result keeps the source's storage order; its lower bounds
    /// are reset to zero (section semantics, as in Fortran dummy arguments).
    pub fn slice(&self, spec: &[Slice]) -> Result<NdArray<T>, DataError> {
        if spec.len() != self.rank() {
            return Err(DataError::RankMismatch {
                expected: self.rank(),
                found: spec.len(),
            });
        }
        let upper = self.upper();
        for (d, s) in spec.iter().enumerate() {
            if s.step == 0 {
                return Err(DataError::InvalidSlice(format!("dimension {d}: step 0")));
            }
            if !s.is_empty() && (s.start < self.lower[d] || s.end > upper[d]) {
                return Err(DataError::InvalidSlice(format!(
                    "dimension {d}: {}..={} outside {}..={}",
                    s.start, s.end, self.lower[d], upper[d]
                )));
            }
        }
        let new_extents: Vec<usize> = spec.iter().map(|s| s.len()).collect();
        let n: usize = new_extents.iter().product();
        let mut out = Vec::with_capacity(n);
        let result_shape_probe =
            NdArray::<u8>::from_vec_ordered(&new_extents, vec![0; n], self.order)?;
        let mut src_index = vec![0isize; self.rank()];
        for off in 0..n {
            let rel = result_shape_probe.multi_index_of(off)?;
            for d in 0..self.rank() {
                src_index[d] = spec[d].start + rel[d] * spec[d].step as isize;
            }
            out.push(self.get(&src_index)?.clone());
        }
        NdArray::from_vec_ordered(&new_extents, out, self.order)
    }

    /// Reinterprets the array with new extents (same element count, same
    /// storage order, lower bounds reset to zero).
    pub fn reshape(&self, extents: &[usize]) -> Result<NdArray<T>, DataError> {
        let n: usize = extents.iter().product();
        if n != self.len() {
            return Err(DataError::ShapeMismatch {
                expected: extents.to_vec(),
                found: self.extents.clone(),
            });
        }
        NdArray::from_vec_ordered(extents, self.data.clone(), self.order)
    }

    /// Returns a copy converted to the requested storage order, preserving
    /// logical element positions.
    pub fn to_order(&self, order: Order) -> NdArray<T> {
        if order == self.order {
            return self.clone();
        }
        let mut out = NdArray {
            data: self.data.clone(),
            lower: self.lower.clone(),
            extents: self.extents.clone(),
            strides: Self::contiguous_strides(&self.extents, order),
            order,
        };
        for off in 0..self.len() {
            let idx = self.multi_index_of(off).expect("offset in range");
            let dst = out.offset_of(&idx).expect("index in range");
            out.data[dst] = self.data[off].clone();
        }
        out
    }

    /// Permutes dimensions. `perm` must be a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Result<NdArray<T>, DataError> {
        if perm.len() != self.rank() {
            return Err(DataError::RankMismatch {
                expected: self.rank(),
                found: perm.len(),
            });
        }
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            if p >= self.rank() || seen[p] {
                return Err(DataError::InvalidSlice(format!(
                    "invalid permutation {perm:?}"
                )));
            }
            seen[p] = true;
        }
        let new_extents: Vec<usize> = perm.iter().map(|&p| self.extents[p]).collect();
        let new_lower: Vec<isize> = perm.iter().map(|&p| self.lower[p]).collect();
        let n = self.len();
        let mut out = NdArray {
            data: self.data.clone(),
            lower: new_lower,
            extents: new_extents.clone(),
            strides: Self::contiguous_strides(&new_extents, self.order),
            order: self.order,
        };
        let mut new_idx = vec![0isize; self.rank()];
        for off in 0..n {
            let idx = self.multi_index_of(off).expect("offset in range");
            for (d, &p) in perm.iter().enumerate() {
                new_idx[d] = idx[p];
            }
            let dst = out.offset_of(&new_idx).expect("index in range");
            out.data[dst] = self.data[off].clone();
        }
        Ok(out)
    }

    /// Elementwise map producing a new array with the same shape.
    pub fn map<U: Clone>(&self, f: impl Fn(&T) -> U) -> NdArray<U> {
        NdArray {
            data: self.data.iter().map(f).collect(),
            lower: self.lower.clone(),
            extents: self.extents.clone(),
            strides: self.strides.clone(),
            order: self.order,
        }
    }

    /// Elementwise zip of two same-shape arrays (shapes must match exactly,
    /// including lower bounds and storage order).
    pub fn zip_map<U: Clone, V: Clone>(
        &self,
        other: &NdArray<U>,
        f: impl Fn(&T, &U) -> V,
    ) -> Result<NdArray<V>, DataError> {
        if self.extents != other.extents || self.lower != other.lower || self.order != other.order {
            return Err(DataError::ShapeMismatch {
                expected: self.extents.clone(),
                found: other.extents.clone(),
            });
        }
        Ok(NdArray {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| f(a, b))
                .collect(),
            lower: self.lower.clone(),
            extents: self.extents.clone(),
            strides: self.strides.clone(),
            order: self.order,
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for NdArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NdArray")
            .field("lower", &self.lower)
            .field("extents", &self.extents)
            .field("order", &self.order)
            .field("data", &self.data)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_offsets_match_fortran() {
        // A(0:2, 0:1): offset(i,j) = i + 3j, first index fastest.
        let a = NdArray::<i32>::from_vec(&[3, 2], (0..6).collect()).unwrap();
        assert_eq!(a.offset_of(&[0, 0]).unwrap(), 0);
        assert_eq!(a.offset_of(&[1, 0]).unwrap(), 1);
        assert_eq!(a.offset_of(&[2, 0]).unwrap(), 2);
        assert_eq!(a.offset_of(&[0, 1]).unwrap(), 3);
        assert_eq!(a.offset_of(&[2, 1]).unwrap(), 5);
    }

    #[test]
    fn row_major_offsets_match_c() {
        let a =
            NdArray::<i32>::from_vec_ordered(&[3, 2], (0..6).collect(), Order::RowMajor).unwrap();
        assert_eq!(a.offset_of(&[0, 0]).unwrap(), 0);
        assert_eq!(a.offset_of(&[0, 1]).unwrap(), 1);
        assert_eq!(a.offset_of(&[1, 0]).unwrap(), 2);
        assert_eq!(a.offset_of(&[2, 1]).unwrap(), 5);
    }

    #[test]
    fn fortran_lower_bounds() {
        // REAL A(-2:2) — five elements indexed -2..=2.
        let a =
            NdArray::with_lower(&[-2], &[5], vec![10, 11, 12, 13, 14], Order::ColumnMajor).unwrap();
        assert_eq!(*a.get(&[-2]).unwrap(), 10);
        assert_eq!(*a.get(&[0]).unwrap(), 12);
        assert_eq!(*a.get(&[2]).unwrap(), 14);
        assert_eq!(a.upper(), vec![2]);
        assert!(a.get(&[3]).is_err());
        assert!(a.get(&[-3]).is_err());
    }

    #[test]
    fn offset_index_round_trip() {
        let a = NdArray::<u8>::with_lower(&[-1, 2, 0], &[3, 4, 2], vec![0; 24], Order::ColumnMajor)
            .unwrap();
        for off in 0..a.len() {
            let idx = a.multi_index_of(off).unwrap();
            assert_eq!(a.offset_of(&idx).unwrap(), off, "index {idx:?}");
        }
    }

    #[test]
    fn get_set_round_trip() {
        let mut a = NdArray::<f64>::zeros(&[2, 2, 2]);
        a.set(&[1, 0, 1], 42.0).unwrap();
        assert_eq!(*a.get(&[1, 0, 1]).unwrap(), 42.0);
        *a.get_mut(&[0, 1, 0]).unwrap() = 7.0;
        assert_eq!(*a.get(&[0, 1, 0]).unwrap(), 7.0);
    }

    #[test]
    fn rank_limits_enforced() {
        assert!(NdArray::<u8>::from_vec(&[], vec![]).is_err());
        let extents = vec![1usize; MAX_RANK + 1];
        assert!(NdArray::<u8>::from_vec(&extents, vec![0]).is_err());
        let extents = vec![1usize; MAX_RANK];
        assert!(NdArray::<u8>::from_vec(&extents, vec![0]).is_ok());
    }

    #[test]
    fn data_length_checked() {
        assert!(NdArray::<u8>::from_vec(&[2, 2], vec![0; 3]).is_err());
    }

    #[test]
    fn slicing_contiguous() {
        let a = NdArray::<i32>::from_vec(&[4, 3], (0..12).collect()).unwrap();
        let s = a.slice(&[Slice::range(1, 2), Slice::range(0, 2)]).unwrap();
        assert_eq!(s.extents(), &[2, 3]);
        // s(i,j) = a(i+1, j)
        for j in 0..3isize {
            for i in 0..2isize {
                assert_eq!(s.get(&[i, j]).unwrap(), a.get(&[i + 1, j]).unwrap());
            }
        }
    }

    #[test]
    fn slicing_strided_matches_fortran_section() {
        // A(1:9:2) of A(0:9) -> elements 1,3,5,7,9
        let a = NdArray::<i32>::from_vec(&[10], (0..10).collect()).unwrap();
        let s = a.slice(&[Slice::strided(1, 9, 2)]).unwrap();
        assert_eq!(s.into_vec(), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn slice_validation() {
        let a = NdArray::<i32>::from_vec(&[4], (0..4).collect()).unwrap();
        assert!(a.slice(&[Slice::strided(0, 3, 0)]).is_err());
        assert!(a.slice(&[Slice::range(0, 4)]).is_err());
        assert!(a.slice(&[Slice::range(-1, 2)]).is_err());
        // empty slice is fine
        let e = a.slice(&[Slice::range(2, 1)]).unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn reshape_preserves_storage_order() {
        let a = NdArray::<i32>::from_vec(&[2, 3], (0..6).collect()).unwrap();
        let b = a.reshape(&[3, 2]).unwrap();
        assert_eq!(b.as_slice(), a.as_slice());
        assert!(a.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn order_conversion_preserves_logical_elements() {
        let a = NdArray::<i32>::from_vec(&[3, 2], (0..6).collect()).unwrap();
        let b = a.to_order(Order::RowMajor);
        for j in 0..2isize {
            for i in 0..3isize {
                assert_eq!(a.get(&[i, j]).unwrap(), b.get(&[i, j]).unwrap());
            }
        }
        // Physical layout differs.
        assert_ne!(a.as_slice(), b.as_slice());
        // Round trip restores layout.
        assert_eq!(b.to_order(Order::ColumnMajor).as_slice(), a.as_slice());
    }

    #[test]
    fn permute_is_transpose_for_rank2() {
        let a = NdArray::<i32>::from_vec(&[3, 2], (0..6).collect()).unwrap();
        let t = a.permute(&[1, 0]).unwrap();
        assert_eq!(t.extents(), &[2, 3]);
        for j in 0..2isize {
            for i in 0..3isize {
                assert_eq!(a.get(&[i, j]).unwrap(), t.get(&[j, i]).unwrap());
            }
        }
        assert!(a.permute(&[0, 0]).is_err());
        assert!(a.permute(&[0]).is_err());
    }

    #[test]
    fn map_and_zip_map() {
        let a = NdArray::<i32>::from_vec(&[2, 2], vec![1, 2, 3, 4]).unwrap();
        let b = a.map(|x| x * 10);
        assert_eq!(b.as_slice(), &[10, 20, 30, 40]);
        let c = a.zip_map(&b, |x, y| x + y).unwrap();
        assert_eq!(c.as_slice(), &[11, 22, 33, 44]);
        let d = NdArray::<i32>::from_vec(&[4], vec![0; 4]).unwrap();
        assert!(a.zip_map(&d, |x, _| *x).is_err());
    }

    #[test]
    fn indexed_iter_visits_all_elements_once() {
        let a = NdArray::<i32>::from_vec(&[2, 3], (0..6).collect()).unwrap();
        let mut seen = [false; 6];
        for (idx, &v) in a.indexed_iter() {
            assert_eq!(*a.get(&idx).unwrap(), v);
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_shape() -> impl Strategy<Value = (Vec<isize>, Vec<usize>)> {
        (1usize..=4)
            .prop_flat_map(|rank| {
                (
                    proptest::collection::vec(-5isize..5, rank),
                    proptest::collection::vec(1usize..5, rank),
                )
            })
            .prop_filter("bounded element count", |(_, e)| {
                e.iter().product::<usize>() <= 256
            })
    }

    proptest! {
        #[test]
        fn offset_index_bijection((lower, extents) in arb_shape(),
                                   row_major in any::<bool>()) {
            let order = if row_major { Order::RowMajor } else { Order::ColumnMajor };
            let n: usize = extents.iter().product();
            let a = NdArray::<u8>::with_lower(&lower, &extents, vec![0; n], order).unwrap();
            let mut seen = vec![false; n];
            for off in 0..n {
                let idx = a.multi_index_of(off).unwrap();
                let back = a.offset_of(&idx).unwrap();
                prop_assert_eq!(back, off);
                prop_assert!(!seen[off]);
                seen[off] = true;
                // Index is within bounds.
                for d in 0..a.rank() {
                    prop_assert!(idx[d] >= lower[d]);
                    prop_assert!(idx[d] < lower[d] + extents[d] as isize);
                }
            }
        }

        #[test]
        fn order_conversion_round_trips((lower, extents) in arb_shape()) {
            let n: usize = extents.iter().product();
            let data: Vec<u32> = (0..n as u32).collect();
            let a = NdArray::with_lower(&lower, &extents, data, Order::ColumnMajor).unwrap();
            let back = a.to_order(Order::RowMajor).to_order(Order::ColumnMajor);
            prop_assert_eq!(a, back);
        }

        #[test]
        fn slice_full_range_is_identity((lower, extents) in arb_shape()) {
            let n: usize = extents.iter().product();
            let data: Vec<u32> = (0..n as u32).collect();
            let a = NdArray::with_lower(&lower, &extents, data, Order::ColumnMajor).unwrap();
            let spec: Vec<Slice> = (0..a.rank())
                .map(|d| Slice::range(lower[d], lower[d] + extents[d] as isize - 1))
                .collect();
            let s = a.slice(&spec).unwrap();
            prop_assert_eq!(s.as_slice(), a.as_slice());
        }
    }
}

/// A borrowed, possibly strided view of an [`NdArray`] — the zero-copy
/// form of a Fortran array section (`A(1:9:2, :)`), which is what SIDL
/// bindings pass when a caller hands a section to a component without
/// copying.
#[derive(Debug, Clone, Copy)]
pub struct NdView<'a, T> {
    data: &'a [T],
    offset: usize,
    extents: &'a [usize],
    strides: &'a [usize],
}

impl<T: Clone> NdArray<T> {
    /// A full view of the array (zero lower bounds).
    pub fn view(&self) -> NdView<'_, T> {
        NdView {
            data: &self.data,
            offset: 0,
            extents: &self.extents,
            strides: &self.strides,
        }
    }

    /// A zero-copy strided section. Unlike [`NdArray::slice`] this does
    /// not copy the elements; it records an offset plus scaled strides.
    /// The view's indices are zero-based over the section.
    pub fn section<'a>(
        &'a self,
        spec: &[Slice],
        storage: &'a mut ViewStorage,
    ) -> Result<NdView<'a, T>, DataError> {
        if spec.len() != self.rank() {
            return Err(DataError::RankMismatch {
                expected: self.rank(),
                found: spec.len(),
            });
        }
        let upper = self.upper();
        let mut offset = 0usize;
        storage.extents.clear();
        storage.strides.clear();
        for (d, s) in spec.iter().enumerate() {
            if s.step == 0 {
                return Err(DataError::InvalidSlice(format!("dimension {d}: step 0")));
            }
            if !s.is_empty() && (s.start < self.lower[d] || s.end > upper[d]) {
                return Err(DataError::InvalidSlice(format!(
                    "dimension {d}: {}..={} outside {}..={}",
                    s.start, s.end, self.lower[d], upper[d]
                )));
            }
            let rel0 = (s.start - self.lower[d]).max(0) as usize;
            offset += rel0 * self.strides[d];
            storage.extents.push(s.len());
            storage.strides.push(self.strides[d] * s.step);
        }
        Ok(NdView {
            data: &self.data,
            offset,
            extents: &storage.extents,
            strides: &storage.strides,
        })
    }
}

/// Scratch space holding a section view's shape (lets [`NdView`] borrow
/// rather than allocate per access).
#[derive(Debug, Default, Clone)]
pub struct ViewStorage {
    extents: Vec<usize>,
    strides: Vec<usize>,
}

impl<'a, T: Clone> NdView<'a, T> {
    /// View rank.
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Per-dimension extents of the view.
    pub fn extents(&self) -> &[usize] {
        self.extents
    }

    /// Total elements the view selects.
    pub fn len(&self) -> usize {
        self.extents.iter().product()
    }

    /// True if the view selects nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element at a zero-based view index.
    pub fn get(&self, index: &[usize]) -> Result<&'a T, DataError> {
        if index.len() != self.rank() {
            return Err(DataError::RankMismatch {
                expected: self.rank(),
                found: index.len(),
            });
        }
        let mut off = self.offset;
        for d in 0..self.rank() {
            if index[d] >= self.extents[d] {
                return Err(DataError::IndexOutOfBounds {
                    index: index.iter().map(|&i| i as isize).collect(),
                    lower: vec![0; self.rank()],
                    extents: self.extents.to_vec(),
                });
            }
            off += index[d] * self.strides[d];
        }
        Ok(&self.data[off])
    }

    /// Copies the view into a fresh contiguous column-major array.
    pub fn to_array(&self) -> NdArray<T> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        let mut idx = vec![0usize; self.rank()];
        for _ in 0..n {
            out.push(self.get(&idx).expect("in-range").clone());
            // Column-major increment.
            for d in 0..self.rank() {
                idx[d] += 1;
                if idx[d] < self.extents[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        NdArray::from_vec(self.extents, out).expect("shape matches")
    }
}

#[cfg(test)]
mod view_tests {
    use super::*;

    #[test]
    fn full_view_reads_all_elements() {
        let a = NdArray::<i32>::from_vec(&[3, 2], (0..6).collect()).unwrap();
        let v = a.view();
        assert_eq!(v.rank(), 2);
        assert_eq!(v.len(), 6);
        for j in 0..2 {
            for i in 0..3 {
                assert_eq!(
                    v.get(&[i, j]).unwrap(),
                    a.get(&[i as isize, j as isize]).unwrap()
                );
            }
        }
    }

    #[test]
    fn strided_section_is_zero_copy_and_correct() {
        // A(1:9:2) of a 10-vector: view must see 1,3,5,7,9 without copying.
        let a = NdArray::<i32>::from_vec(&[10], (0..10).collect()).unwrap();
        let mut storage = ViewStorage::default();
        let v = a.section(&[Slice::strided(1, 9, 2)], &mut storage).unwrap();
        assert_eq!(v.extents(), &[5]);
        for k in 0..5 {
            assert_eq!(*v.get(&[k]).unwrap(), 1 + 2 * k as i32);
        }
        // Equivalent to the copying slice.
        assert_eq!(
            v.to_array().as_slice(),
            a.slice(&[Slice::strided(1, 9, 2)]).unwrap().as_slice()
        );
    }

    #[test]
    fn two_dimensional_section_matches_copying_slice() {
        let a = NdArray::<i32>::from_vec(&[4, 4], (0..16).collect()).unwrap();
        let spec = [Slice::strided(0, 3, 2), Slice::range(1, 2)];
        let mut storage = ViewStorage::default();
        let v = a.section(&spec, &mut storage).unwrap();
        let copied = a.slice(&spec).unwrap();
        assert_eq!(v.to_array(), copied);
    }

    #[test]
    fn section_respects_lower_bounds() {
        let a =
            NdArray::with_lower(&[-2], &[5], vec![10, 11, 12, 13, 14], Order::ColumnMajor).unwrap();
        let mut storage = ViewStorage::default();
        let v = a.section(&[Slice::range(-1, 1)], &mut storage).unwrap();
        assert_eq!(v.extents(), &[3]);
        assert_eq!(*v.get(&[0]).unwrap(), 11);
        assert_eq!(*v.get(&[2]).unwrap(), 13);
    }

    #[test]
    fn view_bounds_checked() {
        let a = NdArray::<i32>::from_vec(&[2, 2], (0..4).collect()).unwrap();
        let v = a.view();
        assert!(v.get(&[2, 0]).is_err());
        assert!(v.get(&[0]).is_err());
        let mut storage = ViewStorage::default();
        assert!(a
            .section(&[Slice::range(0, 2), Slice::range(0, 1)], &mut storage)
            .is_err());
        assert!(a.section(&[Slice::range(0, 1)], &mut storage).is_err());
    }

    #[test]
    fn empty_section() {
        let a = NdArray::<i32>::from_vec(&[4], (0..4).collect()).unwrap();
        let mut storage = ViewStorage::default();
        let v = a.section(&[Slice::range(3, 1)], &mut storage).unwrap();
        assert!(v.is_empty());
        assert_eq!(v.to_array().len(), 0);
    }
}
