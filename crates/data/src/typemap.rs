//! The CCA `TypeMap`: a heterogeneous string-keyed property map.
//!
//! Every CCA port registration and component configuration in the paper's
//! Figure 2 carries a property bag — port properties, component parameters,
//! builder hints. The real CCA specification standardized this as the
//! `TypeMap` interface with typed getters that return a caller-supplied
//! default when the key is absent, and a strict variant that errors on a
//! type mismatch. We reproduce both access styles.

use crate::complex::Complex64;
use crate::error::DataError;
use std::collections::BTreeMap;

/// A value stored in a [`TypeMap`]. Covers the SIDL primitive types plus
/// homogeneous arrays of the three workhorse element types.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeMapValue {
    /// 32-bit integer (`int` in SIDL).
    Int(i32),
    /// 64-bit integer (`long`).
    Long(i64),
    /// Double-precision real (`double`).
    Double(f64),
    /// Double-precision complex (`dcomplex`).
    Dcomplex(Complex64),
    /// Boolean (`bool`).
    Bool(bool),
    /// UTF-8 string (`string`).
    Str(String),
    /// Array of longs.
    LongArray(Vec<i64>),
    /// Array of doubles.
    DoubleArray(Vec<f64>),
    /// Array of strings.
    StrArray(Vec<String>),
}

impl TypeMapValue {
    /// Human-readable name of the contained type (used in error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            TypeMapValue::Int(_) => "int",
            TypeMapValue::Long(_) => "long",
            TypeMapValue::Double(_) => "double",
            TypeMapValue::Dcomplex(_) => "dcomplex",
            TypeMapValue::Bool(_) => "bool",
            TypeMapValue::Str(_) => "string",
            TypeMapValue::LongArray(_) => "long[]",
            TypeMapValue::DoubleArray(_) => "double[]",
            TypeMapValue::StrArray(_) => "string[]",
        }
    }
}

macro_rules! typed_accessors {
    ($get:ident, $get_strict:ident, $put:ident, $variant:ident, $ty:ty, $name:expr) => {
        /// Returns the value for `key`, or `default` if the key is absent
        /// **or holds a different type** (the permissive CCA accessor).
        pub fn $get(&self, key: &str, default: $ty) -> $ty {
            match self.entries.get(key) {
                Some(TypeMapValue::$variant(v)) => v.clone(),
                _ => default,
            }
        }

        /// Returns the value for `key`, erroring if absent or mistyped.
        pub fn $get_strict(&self, key: &str) -> Result<$ty, DataError> {
            match self.entries.get(key) {
                Some(TypeMapValue::$variant(v)) => Ok(v.clone()),
                Some(other) => Err(DataError::TypeMismatch {
                    key: key.to_string(),
                    expected: $name,
                    found: other.type_name(),
                }),
                None => Err(DataError::KeyNotFound(key.to_string())),
            }
        }

        /// Inserts or replaces the value for `key`.
        pub fn $put(&mut self, key: impl Into<String>, value: $ty) {
            self.entries
                .insert(key.into(), TypeMapValue::$variant(value));
        }
    };
}

/// A heterogeneous property map with typed accessors.
///
/// ```
/// use cca_data::TypeMap;
/// let mut m = TypeMap::new();
/// m.put_double("tolerance", 1e-8);
/// m.put_string("method", "cg".into());
/// assert_eq!(m.get_double("tolerance", 0.0), 1e-8);
/// // Permissive accessor returns the default on absence or type mismatch:
/// assert_eq!(m.get_int("tolerance", -1), -1);
/// // The strict accessor distinguishes the two:
/// assert!(m.get_int_strict("tolerance").is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeMap {
    entries: BTreeMap<String, TypeMapValue>,
}

impl TypeMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    typed_accessors!(get_int, get_int_strict, put_int, Int, i32, "int");
    typed_accessors!(get_long, get_long_strict, put_long, Long, i64, "long");
    typed_accessors!(
        get_double,
        get_double_strict,
        put_double,
        Double,
        f64,
        "double"
    );
    typed_accessors!(
        get_dcomplex,
        get_dcomplex_strict,
        put_dcomplex,
        Dcomplex,
        Complex64,
        "dcomplex"
    );
    typed_accessors!(get_bool, get_bool_strict, put_bool, Bool, bool, "bool");
    typed_accessors!(
        get_string,
        get_string_strict,
        put_string,
        Str,
        String,
        "string"
    );
    typed_accessors!(
        get_long_array,
        get_long_array_strict,
        put_long_array,
        LongArray,
        Vec<i64>,
        "long[]"
    );
    typed_accessors!(
        get_double_array,
        get_double_array_strict,
        put_double_array,
        DoubleArray,
        Vec<f64>,
        "double[]"
    );
    typed_accessors!(
        get_string_array,
        get_string_array_strict,
        put_string_array,
        StrArray,
        Vec<String>,
        "string[]"
    );

    /// Raw access to the stored value.
    pub fn get(&self, key: &str) -> Option<&TypeMapValue> {
        self.entries.get(key)
    }

    /// Inserts a raw value.
    pub fn put(&mut self, key: impl Into<String>, value: TypeMapValue) {
        self.entries.insert(key.into(), value);
    }

    /// Removes a key, returning the previous value if present.
    pub fn remove(&mut self, key: &str) -> Option<TypeMapValue> {
        self.entries.remove(key)
    }

    /// True if the key exists (any type).
    pub fn has_key(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// The type name stored at `key`, if any.
    pub fn type_of(&self, key: &str) -> Option<&'static str> {
        self.entries.get(key).map(TypeMapValue::type_name)
    }

    /// All keys in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges `other` into `self`; `other`'s entries win on key collision.
    pub fn merge(&mut self, other: &TypeMap) {
        for (k, v) in &other.entries {
            self.entries.insert(k.clone(), v.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip_all_types() {
        let mut m = TypeMap::new();
        m.put_int("i", 42);
        m.put_long("l", 1 << 40);
        m.put_double("d", 2.5);
        m.put_dcomplex("z", Complex64::new(1.0, -1.0));
        m.put_bool("b", true);
        m.put_string("s", "hello".to_string());
        m.put_long_array("la", vec![1, 2, 3]);
        m.put_double_array("da", vec![0.5, 1.5]);
        m.put_string_array("sa", vec!["a".into(), "b".into()]);

        assert_eq!(m.get_int("i", 0), 42);
        assert_eq!(m.get_long("l", 0), 1 << 40);
        assert_eq!(m.get_double("d", 0.0), 2.5);
        assert_eq!(
            m.get_dcomplex("z", Complex64::ZERO),
            Complex64::new(1.0, -1.0)
        );
        assert!(m.get_bool("b", false));
        assert_eq!(m.get_string("s", String::new()), "hello");
        assert_eq!(m.get_long_array("la", vec![]), vec![1, 2, 3]);
        assert_eq!(m.get_double_array("da", vec![]), vec![0.5, 1.5]);
        assert_eq!(m.get_string_array("sa", vec![]), vec!["a", "b"]);
        assert_eq!(m.len(), 9);
    }

    #[test]
    fn permissive_accessor_returns_default_on_missing_or_mistyped() {
        let mut m = TypeMap::new();
        m.put_int("i", 7);
        assert_eq!(m.get_int("absent", -1), -1);
        // Mistyped: "i" holds an int, asking for a double yields the default.
        assert_eq!(m.get_double("i", 3.25), 3.25);
    }

    #[test]
    fn strict_accessor_distinguishes_missing_from_mistyped() {
        let mut m = TypeMap::new();
        m.put_int("i", 7);
        assert_eq!(m.get_int_strict("i").unwrap(), 7);
        assert!(matches!(
            m.get_int_strict("absent"),
            Err(DataError::KeyNotFound(_))
        ));
        assert!(matches!(
            m.get_double_strict("i"),
            Err(DataError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn replace_and_remove() {
        let mut m = TypeMap::new();
        m.put_int("k", 1);
        m.put_int("k", 2);
        assert_eq!(m.get_int("k", 0), 2);
        // Replacing with a different type changes type_of.
        m.put_string("k", "now a string".into());
        assert_eq!(m.type_of("k"), Some("string"));
        assert!(m.remove("k").is_some());
        assert!(!m.has_key("k"));
        assert!(m.remove("k").is_none());
    }

    #[test]
    fn keys_are_sorted() {
        let mut m = TypeMap::new();
        m.put_int("zeta", 1);
        m.put_int("alpha", 2);
        m.put_int("mid", 3);
        let keys: Vec<&str> = m.keys().collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn merge_prefers_other() {
        let mut a = TypeMap::new();
        a.put_int("x", 1);
        a.put_int("only_a", 10);
        let mut b = TypeMap::new();
        b.put_int("x", 2);
        b.put_int("only_b", 20);
        a.merge(&b);
        assert_eq!(a.get_int("x", 0), 2);
        assert_eq!(a.get_int("only_a", 0), 10);
        assert_eq!(a.get_int("only_b", 0), 20);
    }

    #[test]
    fn empty_map_behaviour() {
        let m = TypeMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.type_of("anything"), None);
        assert_eq!(m.get("anything"), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = TypeMapValue> {
        prop_oneof![
            any::<i32>().prop_map(TypeMapValue::Int),
            any::<i64>().prop_map(TypeMapValue::Long),
            any::<f64>()
                .prop_filter("finite", |x| x.is_finite())
                .prop_map(TypeMapValue::Double),
            any::<bool>().prop_map(TypeMapValue::Bool),
            "[a-z]{0,8}".prop_map(TypeMapValue::Str),
            proptest::collection::vec(any::<i64>(), 0..4).prop_map(TypeMapValue::LongArray),
        ]
    }

    proptest! {
        #[test]
        fn put_then_get_returns_same_value(
            entries in proptest::collection::btree_map("[a-z]{1,6}", arb_value(), 0..16)
        ) {
            let mut m = TypeMap::new();
            for (k, v) in &entries {
                m.put(k.clone(), v.clone());
            }
            prop_assert_eq!(m.len(), entries.len());
            for (k, v) in &entries {
                prop_assert_eq!(m.get(k), Some(v));
                prop_assert_eq!(m.type_of(k), Some(v.type_name()));
            }
        }
    }
}
