//! Global resilience counters: retries, deadline hits, breaker activity.
//!
//! `cca-core`'s resilience layer (retry/backoff, call deadlines,
//! per-provider circuit breakers) reports here so the `MonitorPort` can
//! answer "how degraded is this assembly right now" without walking every
//! connection. Unlike the per-port call counters these are **not** gated
//! by the `counters` flag: they only move on failure paths (a retry, a
//! deadline expiry, a breaker transition, a quarantine rejection), which
//! are rare and already expensive — the same reasoning that keeps
//! connection-shape metrics ungated. Process-global, like [`crate::flags`].

use std::sync::atomic::{AtomicU64, Ordering};

/// The process-wide resilience counter block.
#[derive(Debug, Default)]
pub struct ResilienceCounters {
    retries: AtomicU64,
    deadline_hits: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_half_opens: AtomicU64,
    breaker_closes: AtomicU64,
    quarantine_rejections: AtomicU64,
}

impl ResilienceCounters {
    /// Records one retried attempt (an attempt after the first).
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one call abandoned because its deadline expired.
    pub fn record_deadline_hit(&self) {
        self.deadline_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a breaker transitioning to open (provider quarantined).
    pub fn record_breaker_open(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a breaker transitioning to half-open (probe admitted).
    pub fn record_breaker_half_open(&self) {
        self.breaker_half_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a breaker transitioning to closed (provider recovered).
    pub fn record_breaker_close(&self) {
        self.breaker_closes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a call refused because its provider was quarantined.
    pub fn record_quarantine_rejection(&self) {
        self.quarantine_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            retries: self.retries.load(Ordering::Relaxed),
            deadline_hits: self.deadline_hits.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_half_opens: self.breaker_half_opens.load(Ordering::Relaxed),
            breaker_closes: self.breaker_closes.load(Ordering::Relaxed),
            quarantine_rejections: self.quarantine_rejections.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter (test isolation; counters are process-global).
    pub fn reset(&self) {
        self.retries.store(0, Ordering::Relaxed);
        self.deadline_hits.store(0, Ordering::Relaxed);
        self.breaker_opens.store(0, Ordering::Relaxed);
        self.breaker_half_opens.store(0, Ordering::Relaxed);
        self.breaker_closes.store(0, Ordering::Relaxed);
        self.quarantine_rejections.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the global [`ResilienceCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceSnapshot {
    /// Attempts after the first (one per backoff wait).
    pub retries: u64,
    /// Calls abandoned on deadline expiry.
    pub deadline_hits: u64,
    /// Closed/half-open → open transitions (quarantines).
    pub breaker_opens: u64,
    /// Open → half-open transitions (probes admitted).
    pub breaker_half_opens: u64,
    /// → closed transitions (recoveries).
    pub breaker_closes: u64,
    /// Calls refused while a provider was quarantined.
    pub quarantine_rejections: u64,
}

impl ResilienceSnapshot {
    /// JSON rendering (object; stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"retries\":{},\"deadline_hits\":{},\"breaker_opens\":{},\
             \"breaker_half_opens\":{},\"breaker_closes\":{},\
             \"quarantine_rejections\":{}}}",
            self.retries,
            self.deadline_hits,
            self.breaker_opens,
            self.breaker_half_opens,
            self.breaker_closes,
            self.quarantine_rejections
        )
    }
}

static GLOBAL: ResilienceCounters = ResilienceCounters {
    retries: AtomicU64::new(0),
    deadline_hits: AtomicU64::new(0),
    breaker_opens: AtomicU64::new(0),
    breaker_half_opens: AtomicU64::new(0),
    breaker_closes: AtomicU64::new(0),
    quarantine_rejections: AtomicU64::new(0),
};

/// The process-global resilience counter block.
pub fn resilience() -> &'static ResilienceCounters {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        // Local block (the global one is shared with other tests).
        let c = ResilienceCounters::default();
        c.record_retry();
        c.record_retry();
        c.record_deadline_hit();
        c.record_breaker_open();
        c.record_breaker_half_open();
        c.record_breaker_close();
        c.record_quarantine_rejection();
        let s = c.snapshot();
        assert_eq!(
            s,
            ResilienceSnapshot {
                retries: 2,
                deadline_hits: 1,
                breaker_opens: 1,
                breaker_half_opens: 1,
                breaker_closes: 1,
                quarantine_rejections: 1,
            }
        );
        c.reset();
        assert_eq!(c.snapshot(), ResilienceSnapshot::default());
    }

    #[test]
    fn snapshot_json_is_stable() {
        let c = ResilienceCounters::default();
        c.record_retry();
        assert_eq!(
            c.snapshot().to_json(),
            "{\"retries\":1,\"deadline_hits\":0,\"breaker_opens\":0,\
             \"breaker_half_opens\":0,\"breaker_closes\":0,\
             \"quarantine_rejections\":0}"
        );
    }

    #[test]
    fn global_block_is_reachable() {
        let before = resilience().snapshot().retries;
        resilience().record_retry();
        assert!(resilience().snapshot().retries > before);
    }
}
