#![warn(missing_docs)]
//! # cca-obs — zero-cost-when-off observability for `cca-rs`
//!
//! The paper gives every component a `CCAServices` handle and touts
//! reflection/dynamic invocation (§5) precisely so tools can inspect live
//! component assemblies. This crate is the instrumentation layer those
//! tools read from:
//!
//! * [`flags`] — one global `AtomicU32` of feature bits. Every hot-path
//!   hook in `cca-core`/`cca-rpc` is guarded by a single **relaxed load**
//!   of this word, so the steady-state direct-connect call path (PR 1's
//!   `CachedPort`) pays one predictable branch when observability is off.
//!   Both facilities are additionally compile-time gated by the `trace`
//!   and `counters` cargo features and env-gated via `CCA_TRACE` /
//!   `CCA_METRICS` (see [`init_from_env`]).
//! * [`metrics`] — per-port invocation counters, connect/disconnect
//!   churn, fan-out width, and fixed-bucket log2 latency histograms. The
//!   record path is allocation-free: relaxed atomics only. Call counting
//!   from `CachedPort` uses single-writer [`metrics::CallShard`]s so the
//!   per-call cost is one relaxed store, not an atomic RMW.
//! * [`trace`] — a distributed span/event tracer: a lock-free
//!   single-writer seqlock ring per thread, per-process seeded
//!   trace/span ids with parent links, a thread-local current-span cell
//!   whose identity crosses the wire ([`trace::current_context`] /
//!   [`trace::install_context`]), drained to JSONL or Chrome
//!   `trace_event` JSON and merged across processes by
//!   [`trace::merge_chrome_trace`] (load it at `chrome://tracing` or
//!   <https://ui.perfetto.dev>).
//! * [`flight`] — the fault flight recorder: on quarantine, deadline, or
//!   connection failure, the recent ring events plus counter snapshots
//!   are frozen into a bounded on-disk JSONL "black box".
//!
//! The framework aggregates these through `CCAServices` and exposes them
//! to builders via the reflective `MonitorPort` (`cca-framework`), so a
//! remote tool can ask "who is connected to whom, how hot is each port"
//! exactly as Fig. 2's builder would.

pub mod flags;
pub mod fleet;
pub mod flight;
pub mod metrics;
pub mod repo;
pub mod resilience;
pub mod trace;

pub use flags::{counters_enabled, init_from_env, set_counters, set_tracing, tracing_enabled};
pub use fleet::{fleet, FleetCounters, FleetSnapshot};
pub use metrics::{
    BulkMetrics, BulkSnapshot, CallShard, LatencyHistogram, LatencySnapshot, MuxMetrics,
    MuxSnapshot, PortMetrics, PortMetricsSnapshot, TransportMetrics, TransportSnapshot,
};
pub use repo::{repo, RepoCounters, RepoSnapshot};
pub use resilience::{resilience, ResilienceCounters, ResilienceSnapshot};
pub use trace::{
    current_context, drain, install_context, merge_chrome_trace, snapshot, span, to_chrome_trace,
    to_jsonl, trace_instant, ContextGuard, Span, TraceContext, TraceEvent, TraceKind,
};
