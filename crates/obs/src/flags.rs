//! The global observability switchboard.
//!
//! A single `AtomicU32` holds every runtime toggle. Hot paths guard their
//! instrumentation with one **relaxed load** of this word plus a bit test —
//! on a modern core that is a predicted-not-taken branch over a shared
//! read-mostly cache line, which is what lets the disabled configuration
//! stay within noise of PR 1's uninstrumented `CachedPort` call (gated at
//! ≤1.1× by `benches/e10_obs_overhead.rs`).
//!
//! Each facility is gated three ways, strongest first:
//!
//! 1. **compile time** — the `trace`/`counters` cargo features; with a
//!    feature off the corresponding `*_enabled()` is a constant `false`
//!    and the instrumentation folds away entirely;
//! 2. **environment** — [`init_from_env`] reads `CCA_TRACE` and
//!    `CCA_METRICS` once (any value other than empty or `0` enables);
//! 3. **runtime** — [`set_tracing`]/[`set_counters`] flip bits live, which
//!    is how `MonitorPort` or a bench turns collection on mid-run.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Once;

/// Serializes tests (across this crate's modules) that flip the
/// process-global flag word or other process-global observability state.
#[cfg(test)]
pub(crate) static TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

/// Bit: the span/event tracer records.
const TRACING: u32 = 1 << 0;
/// Bit: per-port call counters and latency histograms record.
const COUNTERS: u32 = 1 << 1;

static FLAGS: AtomicU32 = AtomicU32::new(0);
static ENV_INIT: Once = Once::new();

#[inline(always)]
fn flags() -> u32 {
    FLAGS.load(Ordering::Relaxed)
}

/// True if the tracer should record. One relaxed atomic load.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    cfg!(feature = "trace") && flags() & TRACING != 0
}

/// True if per-port counters/histograms should record. One relaxed
/// atomic load.
#[inline(always)]
pub fn counters_enabled() -> bool {
    cfg!(feature = "counters") && flags() & COUNTERS != 0
}

fn set_bit(bit: u32, on: bool) {
    if on {
        FLAGS.fetch_or(bit, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!bit, Ordering::Relaxed);
    }
}

/// Turns the tracer on or off at runtime.
pub fn set_tracing(on: bool) {
    set_bit(TRACING, on);
}

/// Turns per-port counters/histograms on or off at runtime.
///
/// Note that a `CachedPort` that was resolved while its uses slot was
/// unregistered keeps no shard; counting starts from the next
/// re-resolution. In the normal lifecycle (register, connect, call) the
/// toggle takes effect on the very next call.
pub fn set_counters(on: bool) {
    set_bit(COUNTERS, on);
}

fn env_truthy(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Applies `CCA_TRACE` / `CCA_METRICS` from the environment, once.
///
/// Idempotent and cheap after the first call; the framework invokes it at
/// construction so `CCA_TRACE=1 cargo run --example monitoring` works
/// without code changes. Later [`set_tracing`]/[`set_counters`] calls
/// still override the environment.
pub fn init_from_env() {
    ENV_INIT.call_once(|| {
        if env_truthy("CCA_TRACE") {
            set_bit(TRACING, true);
        }
        if env_truthy("CCA_METRICS") {
            set_bit(COUNTERS, true);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggles_round_trip() {
        // Serialize against sibling tests touching the same global word.
        let _guard = TEST_LOCK.lock();
        set_tracing(false);
        set_counters(false);
        assert!(!tracing_enabled());
        assert!(!counters_enabled());
        set_tracing(true);
        assert!(tracing_enabled());
        assert!(!counters_enabled());
        set_counters(true);
        assert!(counters_enabled());
        set_tracing(false);
        set_counters(false);
        assert!(!tracing_enabled());
        assert!(!counters_enabled());
    }

    #[test]
    fn env_init_is_idempotent() {
        init_from_env();
        init_from_env();
    }
}
