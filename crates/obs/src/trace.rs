//! A lightweight span/event tracer.
//!
//! Each thread records into its own fixed-capacity ring buffer (no locks
//! shared between recording threads, oldest events overwritten when the
//! ring fills). Event names are stored inline (truncated to 32 bytes), so
//! the record path performs **no allocation** once the thread's ring
//! exists. [`drain`] collects every thread's events; [`to_jsonl`] and
//! [`to_chrome_trace`] render them — the latter loads directly into
//! `chrome://tracing` or <https://ui.perfetto.dev> (see EXPERIMENTS.md §E10).
//!
//! All recording is guarded by [`crate::tracing_enabled`]: one relaxed
//! atomic load when tracing is off.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Inline name capacity in bytes; longer names are truncated at a char
/// boundary.
const NAME_CAP: usize = 32;
/// Events retained per thread before the ring wraps.
const RING_CAP: usize = 4096;

/// What a [`TraceEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A duration: something began at `ts_ns` and took `dur_ns`.
    Span,
    /// A point event; `dur_ns` is zero.
    Instant,
}

/// One recorded event. `Copy` and pointer-free so rings can store and
/// drain it without touching the heap.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    name: [u8; NAME_CAP],
    name_len: u8,
    /// Span or instant.
    pub kind: TraceKind,
    /// Nanoseconds since the process trace epoch (first recording).
    pub ts_ns: u64,
    /// Duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Small dense id of the recording thread.
    pub thread: u64,
}

impl TraceEvent {
    /// The event name (possibly truncated to 32 bytes).
    pub fn name(&self) -> &str {
        // Inline names are only ever written from `pack_name`, which cuts
        // at a char boundary, so this cannot fail.
        std::str::from_utf8(&self.name[..self.name_len as usize]).unwrap_or("")
    }
}

fn pack_name(s: &str) -> ([u8; NAME_CAP], u8) {
    let mut n = s.len().min(NAME_CAP);
    while n > 0 && !s.is_char_boundary(n) {
        n -= 1;
    }
    let mut buf = [0u8; NAME_CAP];
    buf[..n].copy_from_slice(&s.as_bytes()[..n]);
    (buf, n as u8)
}

struct Ring {
    events: Vec<TraceEvent>,
    next: usize,
    thread: u64,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < RING_CAP {
            self.events.push(ev);
        } else {
            self.events[self.next] = ev;
        }
        self.next = (self.next + 1) % RING_CAP;
    }
}

static REGISTRY: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LOCAL: Arc<Mutex<Ring>> = {
        let ring = Arc::new(Mutex::new(Ring {
            events: Vec::with_capacity(RING_CAP),
            next: 0,
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
        }));
        REGISTRY.lock().push(Arc::clone(&ring));
        ring
    };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn since_epoch_ns(at: Instant) -> u64 {
    at.saturating_duration_since(epoch()).as_nanos() as u64
}

fn record(name: &str, kind: TraceKind, ts_ns: u64, dur_ns: u64) {
    let (name, name_len) = pack_name(name);
    LOCAL.with(|ring| {
        let mut ring = ring.lock();
        let thread = ring.thread;
        ring.push(TraceEvent {
            name,
            name_len,
            kind,
            ts_ns,
            dur_ns,
            thread,
        });
    });
}

/// A RAII guard: records a [`TraceKind::Span`] from creation to drop.
///
/// Created by [`span`]. When tracing was off at creation the guard is
/// inert (no clock read, no recording at drop).
pub struct Span {
    name: [u8; NAME_CAP],
    name_len: u8,
    start: Option<Instant>,
}

impl Span {
    /// True if this guard will record on drop.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur_ns = start.elapsed().as_nanos() as u64;
            // Re-pack is avoided: splice the already-inlined name in.
            let ts_ns = since_epoch_ns(start);
            let (name, name_len) = (self.name, self.name_len);
            LOCAL.with(|ring| {
                let mut ring = ring.lock();
                let thread = ring.thread;
                ring.push(TraceEvent {
                    name,
                    name_len,
                    kind: TraceKind::Span,
                    ts_ns,
                    dur_ns,
                    thread,
                });
            });
        }
    }
}

/// Opens a span. If tracing is disabled this is one relaxed atomic load
/// and returns an inert guard; otherwise the span is recorded when the
/// guard drops.
#[inline]
pub fn span(name: &str) -> Span {
    if !crate::tracing_enabled() {
        return Span {
            name: [0; NAME_CAP],
            name_len: 0,
            start: None,
        };
    }
    let _ = epoch();
    let (name, name_len) = pack_name(name);
    Span {
        name,
        name_len,
        start: Some(Instant::now()),
    }
}

/// Records a point event (Chrome trace `ph:"i"`). One relaxed load when
/// tracing is off.
#[inline]
pub fn trace_instant(name: &str) {
    if crate::tracing_enabled() {
        let ts = since_epoch_ns(Instant::now());
        record(name, TraceKind::Instant, ts, 0);
    }
}

/// Removes and returns every buffered event from every thread's ring,
/// ordered by timestamp. Rings that wrapped yield only their newest
/// `4096` events.
pub fn drain() -> Vec<TraceEvent> {
    let rings: Vec<Arc<Mutex<Ring>>> = REGISTRY.lock().iter().map(Arc::clone).collect();
    let mut out = Vec::new();
    for ring in rings {
        let mut ring = ring.lock();
        if ring.events.len() == RING_CAP {
            let split = ring.next;
            out.extend_from_slice(&ring.events[split..]);
            out.extend_from_slice(&ring.events[..split]);
        } else {
            out.extend_from_slice(&ring.events);
        }
        ring.events.clear();
        ring.next = 0;
    }
    out.sort_by_key(|e| e.ts_ns);
    out
}

/// Escapes a string for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders events as JSON Lines: one object per event, nanosecond
/// timestamps, suitable for `jq`/log shippers.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let kind = match ev.kind {
            TraceKind::Span => "span",
            TraceKind::Instant => "instant",
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"kind\":\"{kind}\",\"ts_ns\":{},\"dur_ns\":{},\"thread\":{}}}\n",
            escape_json(ev.name()),
            ev.ts_ns,
            ev.dur_ns,
            ev.thread
        ));
    }
    out
}

/// Renders events as a Chrome `trace_event` JSON document (`ph:"X"`
/// complete events, `ph:"i"` instants; timestamps in microseconds).
/// Load the output at `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut body = String::new();
    for ev in events {
        if !body.is_empty() {
            body.push(',');
        }
        let name = escape_json(ev.name());
        let ts_us = ev.ts_ns as f64 / 1000.0;
        match ev.kind {
            TraceKind::Span => body.push_str(&format!(
                "{{\"name\":\"{name}\",\"cat\":\"cca\",\"ph\":\"X\",\"ts\":{ts_us:.3},\
                 \"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
                ev.dur_ns as f64 / 1000.0,
                ev.thread
            )),
            TraceKind::Instant => body.push_str(&format!(
                "{{\"name\":\"{name}\",\"cat\":\"cca\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{ts_us:.3},\"pid\":1,\"tid\":{}}}",
                ev.thread
            )),
        }
    }
    format!("{{\"traceEvents\":[{body}],\"displayTimeUnit\":\"ns\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags;

    // Flag toggles are process-global; serialize the tests that flip them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn span_and_instant_round_trip() {
        let _guard = TEST_LOCK.lock();
        flags::set_tracing(true);
        drain();
        {
            let s = span("getPort");
            assert!(s.is_recording());
            trace_instant("connected");
        }
        flags::set_tracing(false);
        let events = drain();
        assert_eq!(events.len(), 2);
        // Ordered by timestamp: the instant fires before the span closes
        // but the span's ts is its *start*, which is earlier still.
        assert_eq!(events[0].name(), "getPort");
        assert_eq!(events[0].kind, TraceKind::Span);
        assert_eq!(events[1].name(), "connected");
        assert_eq!(events[1].kind, TraceKind::Instant);
        assert_eq!(events[1].dur_ns, 0);

        let jsonl = to_jsonl(&events);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"kind\":\"span\""));
        assert!(jsonl.contains("\"name\":\"connected\""));

        let chrome = to_chrome_trace(&events);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _guard = TEST_LOCK.lock();
        flags::set_tracing(false);
        drain();
        let s = span("ignored");
        assert!(!s.is_recording());
        drop(s);
        trace_instant("ignored");
        assert!(drain().is_empty());
    }

    #[test]
    fn long_names_truncate_at_char_boundary() {
        let (_, len) = pack_name(&"é".repeat(20)); // 40 bytes of 2-byte chars
        assert_eq!(len, 32);
        let (buf, len) = pack_name(&format!("{}é", "a".repeat(31))); // é spans 31..33
        assert_eq!(len, 31);
        assert_eq!(std::str::from_utf8(&buf[..len as usize]).unwrap().len(), 31);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let mut ring = Ring {
            events: Vec::with_capacity(RING_CAP),
            next: 0,
            thread: 0,
        };
        let (name, name_len) = pack_name("x");
        for i in 0..(RING_CAP as u64 + 10) {
            ring.push(TraceEvent {
                name,
                name_len,
                kind: TraceKind::Instant,
                ts_ns: i,
                dur_ns: 0,
                thread: 0,
            });
        }
        assert_eq!(ring.events.len(), RING_CAP);
        // Oldest surviving event is #10.
        let min = ring.events.iter().map(|e| e.ts_ns).min().unwrap();
        assert_eq!(min, 10);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
