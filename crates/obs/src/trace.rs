//! A lightweight distributed span/event tracer.
//!
//! Each thread records into its own fixed-capacity ring buffer. The ring
//! is a **single-writer seqlock**: the owning thread publishes events with
//! plain relaxed stores bracketed by a `reserve`/`commit` counter pair, so
//! the record path takes **no lock and performs no allocation** once the
//! thread's ring exists. Readers ([`drain`]/[`snapshot`]) copy slots and
//! then re-check `reserve`; any slot the writer might have been rewriting
//! mid-copy is provably torn and discarded (the classic seqlock recipe,
//! expressed entirely in safe Rust over `AtomicU64` words).
//!
//! Events carry **causal identity**: a per-process seeded `trace`/`span`
//! id pair plus a parent link, maintained in a thread-local current-span
//! cell. [`current_context`] exports the active identity for wire
//! propagation (the `cca-rpc` frame codec carries it as a 16-byte
//! extension) and [`install_context`] adopts a remote caller's identity
//! around a server-side dispatch, which is how a server span ends up
//! parented to the client span that caused it.
//!
//! [`to_jsonl`] and [`to_chrome_trace`] render one process's events;
//! [`merge_chrome_trace`] fuses several processes' JSONL dumps into a
//! single Perfetto timeline with flow arrows binding each remote dispatch
//! to its originating call (see EXPERIMENTS.md §E14).
//!
//! All recording is guarded by [`crate::tracing_enabled`]: one relaxed
//! atomic load when tracing is off.

use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Inline name capacity in bytes; longer names are truncated at a char
/// boundary.
const NAME_CAP: usize = 32;
/// Events retained per thread before the ring wraps.
const RING_CAP: usize = 4096;
/// `u64` words per encoded event: 4 name words, packed meta, `ts_ns`,
/// `dur_ns`, `trace_id`, `span_id`, `parent_id`.
const EVENT_WORDS: usize = 10;

/// What a [`TraceEvent`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A duration: something began at `ts_ns` and took `dur_ns`.
    Span,
    /// A point event; `dur_ns` is zero.
    Instant,
}

/// One recorded event. `Copy` and pointer-free so rings can store and
/// drain it without touching the heap.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    name: [u8; NAME_CAP],
    name_len: u8,
    /// Span or instant.
    pub kind: TraceKind,
    /// Nanoseconds since the process trace epoch (first recording).
    pub ts_ns: u64,
    /// Duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// The trace this event belongs to; zero when no trace was active.
    pub trace_id: u64,
    /// This event's own span id (zero for instants).
    pub span_id: u64,
    /// The enclosing span's id at record time; zero at a trace root.
    pub parent_id: u64,
}

impl TraceEvent {
    /// The event name (possibly truncated to 32 bytes).
    pub fn name(&self) -> &str {
        // Inline names are only ever written from `pack_name`, which cuts
        // at a char boundary, so this cannot fail.
        std::str::from_utf8(&self.name[..self.name_len as usize]).unwrap_or("")
    }
}

fn pack_name(s: &str) -> ([u8; NAME_CAP], u8) {
    let mut n = s.len().min(NAME_CAP);
    while n > 0 && !s.is_char_boundary(n) {
        n -= 1;
    }
    let mut buf = [0u8; NAME_CAP];
    buf[..n].copy_from_slice(&s.as_bytes()[..n]);
    (buf, n as u8)
}

// ---------------------------------------------------------------------------
// Trace identity
// ---------------------------------------------------------------------------

/// The causal identity a remote invocation carries across the wire: which
/// trace it belongs to and which span is the caller.
///
/// Both ids are nonzero by construction; the frame codec treats an
/// all-zero context as garbage. Serialized as 16 little-endian bytes
/// (`trace_id` then `span_id`) in the `CCAR` v2 frame extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every causally-related span shares.
    pub trace_id: u64,
    /// The span that is the parent of whatever the receiver records.
    pub span_id: u64,
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: a bijective mix, so distinct inputs give
/// distinct ids. (Local copy — `cca-core` depends on this crate, not the
/// other way around.)
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

static ID_STATE: AtomicU64 = AtomicU64::new(0);
static ID_SEED: OnceLock<u64> = OnceLock::new();

/// Per-process id seed: wall clock xor pid, so two processes started the
/// same nanosecond still draw from different streams.
fn id_seed() -> u64 {
    *ID_SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        nanos ^ u64::from(std::process::id()).rotate_left(32)
    })
}

/// Draws the next nonzero id without touching shared state on the hot
/// path: each thread owns a disjoint id stream (a per-thread salt drawn
/// once from the global counter, mixed into every draw), so the per-span
/// cost is a `Cell` bump plus the SplitMix64 finalizer — no cross-core
/// cache traffic, and still bijective within a stream.
fn next_id() -> u64 {
    ID_LOCAL.with(|l| {
        let (salt, mut n) = l.get();
        loop {
            n = n.wrapping_add(1);
            let id = splitmix64(salt ^ n.wrapping_mul(GOLDEN));
            if id != 0 {
                l.set((salt, n));
                return id;
            }
        }
    })
}

thread_local! {
    /// The active (trace id, span id) on this thread; (0, 0) = no trace.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };

    /// (per-thread id salt, per-thread draw counter). The salt folds the
    /// process seed with a globally unique thread ordinal, keeping id
    /// streams disjoint across threads *and* processes.
    static ID_LOCAL: Cell<(u64, u64)> = Cell::new((
        splitmix64(id_seed() ^ ID_STATE.fetch_add(1, Ordering::Relaxed).rotate_left(17)),
        0,
    ));
}

/// The identity an outgoing remote call should carry, or `None` when
/// tracing is off or no span is active. One relaxed load on the off path.
#[inline]
pub fn current_context() -> Option<TraceContext> {
    if !crate::tracing_enabled() {
        return None;
    }
    let (trace_id, span_id) = CURRENT.with(Cell::get);
    if trace_id == 0 {
        None
    } else {
        Some(TraceContext { trace_id, span_id })
    }
}

/// Restores the previous thread-local trace identity when dropped.
///
/// Returned by [`install_context`]; inert when no context was installed.
pub struct ContextGuard {
    prev: Option<(u64, u64)>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            CURRENT.with(|c| c.set(prev));
        }
    }
}

/// Adopts a remote caller's trace identity on this thread until the
/// returned guard drops. Spans opened under the guard are parented to the
/// caller's span, which is how a server-side dispatch joins the client's
/// trace. `None` (or tracing off) installs nothing and returns an inert
/// guard.
pub fn install_context(ctx: Option<TraceContext>) -> ContextGuard {
    match ctx {
        Some(c) if crate::tracing_enabled() => {
            let prev = CURRENT.with(|cell| cell.replace((c.trace_id, c.span_id)));
            ContextGuard { prev: Some(prev) }
        }
        _ => ContextGuard { prev: None },
    }
}

// ---------------------------------------------------------------------------
// The single-writer seqlock ring
// ---------------------------------------------------------------------------

/// A fixed-capacity single-writer ring of encoded events.
///
/// The owning thread is the only writer; readers run concurrently under
/// the registry lock. Positions are monotone event counts: position `p`
/// lives in slot `p % RING_CAP`. The writer bumps `reserve` *before*
/// touching a slot and `commit` *after*, so a reader that copies slots
/// and then re-checks `reserve` can discard exactly the positions whose
/// slot may have been rewritten underneath it.
struct Ring {
    words: Box<[AtomicU64]>,
    /// Positions `< reserve` have begun (possibly finished) being written.
    reserve: AtomicU64,
    /// Positions `< commit` are fully written.
    commit: AtomicU64,
    /// Positions `< tail` were already consumed by [`drain`].
    tail: AtomicU64,
    thread: u64,
}

impl Ring {
    fn new(thread: u64) -> Self {
        Ring {
            words: (0..RING_CAP * EVENT_WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            reserve: AtomicU64::new(0),
            commit: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            thread,
        }
    }

    /// Writer side. Must only be called from the ring's owning thread.
    fn push(&self, ev: &TraceEvent) {
        let h = self.commit.load(Ordering::Relaxed);
        // Claim the slot before writing it; the release fence orders this
        // store before the word stores below for any acquiring reader.
        self.reserve.store(h + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        let slot = (h as usize % RING_CAP) * EVENT_WORDS;
        let mut name_words = [0u64; 4];
        for (i, chunk) in ev.name.chunks_exact(8).enumerate() {
            name_words[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        let kind = match ev.kind {
            TraceKind::Span => 0u64,
            TraceKind::Instant => 1u64,
        };
        let meta = u64::from(ev.name_len) | (kind << 8);
        let encoded = [
            name_words[0],
            name_words[1],
            name_words[2],
            name_words[3],
            meta,
            ev.ts_ns,
            ev.dur_ns,
            ev.trace_id,
            ev.span_id,
            ev.parent_id,
        ];
        for (cell, word) in self.words[slot..slot + EVENT_WORDS].iter().zip(encoded) {
            cell.store(word, Ordering::Relaxed);
        }
        // Publish: readers that acquire-load a commit ≥ h+1 see the words.
        self.commit.store(h + 1, Ordering::Release);
    }

    /// Reader side: appends every intact buffered event to `out`, oldest
    /// first. With `consume` the events are marked drained.
    fn read_into(&self, out: &mut Vec<TraceEvent>, consume: bool) {
        let h1 = self.commit.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Relaxed);
        let start = tail.max(h1.saturating_sub(RING_CAP as u64));
        if start < h1 {
            let count = (h1 - start) as usize;
            let mut copy = vec![0u64; count * EVENT_WORDS];
            for (i, p) in (start..h1).enumerate() {
                let slot = (p as usize % RING_CAP) * EVENT_WORDS;
                for w in 0..EVENT_WORDS {
                    copy[i * EVENT_WORDS + w] = self.words[slot + w].load(Ordering::Relaxed);
                }
            }
            // Seqlock validation: order the copies above before the
            // reserve re-read, then drop every position whose slot the
            // writer may have been re-claiming while we copied.
            fence(Ordering::Acquire);
            let r2 = self.reserve.load(Ordering::Relaxed);
            let valid_from = start.max(r2.saturating_sub(RING_CAP as u64));
            for p in valid_from..h1 {
                let i = (p - start) as usize;
                out.push(self.decode(&copy[i * EVENT_WORDS..(i + 1) * EVENT_WORDS]));
            }
        }
        if consume {
            self.tail.store(h1, Ordering::Relaxed);
        }
    }

    fn decode(&self, w: &[u64]) -> TraceEvent {
        let mut name = [0u8; NAME_CAP];
        for i in 0..4 {
            name[i * 8..(i + 1) * 8].copy_from_slice(&w[i].to_le_bytes());
        }
        let name_len = (w[4] & 0xff).min(NAME_CAP as u64) as u8;
        let kind = if (w[4] >> 8) & 0xff == 1 {
            TraceKind::Instant
        } else {
            TraceKind::Span
        };
        TraceEvent {
            name,
            name_len,
            kind,
            ts_ns: w[5],
            dur_ns: w[6],
            thread: self.thread,
            trace_id: w[7],
            span_id: w[8],
            parent_id: w[9],
        }
    }
}

static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LOCAL: Arc<Ring> = {
        let ring = Arc::new(Ring::new(NEXT_THREAD.fetch_add(1, Ordering::Relaxed)));
        REGISTRY.lock().push(Arc::clone(&ring));
        ring
    };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn since_epoch_ns(at: Instant) -> u64 {
    at.saturating_duration_since(epoch()).as_nanos() as u64
}

/// A RAII guard: records a [`TraceKind::Span`] from creation to drop.
///
/// Created by [`span`]. When tracing was off at creation the guard is
/// inert (no clock read, no recording at drop). While live, the guard's
/// span is the thread's current span: nested spans and outgoing remote
/// calls on the same thread parent to it. Drop the guard on the thread
/// that created it — parenting state is thread-local.
pub struct Span {
    name: [u8; NAME_CAP],
    name_len: u8,
    start: Option<Instant>,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    prev: (u64, u64),
}

impl Span {
    /// True if this guard will record on drop.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }

    /// This span's wire identity, for callers that propagate manually.
    pub fn context(&self) -> Option<TraceContext> {
        self.start.map(|_| TraceContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
        })
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            CURRENT.with(|c| c.set(self.prev));
            let dur_ns = start.elapsed().as_nanos() as u64;
            let ts_ns = since_epoch_ns(start);
            let ev = TraceEvent {
                name: self.name,
                name_len: self.name_len,
                kind: TraceKind::Span,
                ts_ns,
                dur_ns,
                thread: 0,
                trace_id: self.trace_id,
                span_id: self.span_id,
                parent_id: self.parent_id,
            };
            LOCAL.with(|ring| ring.push(&ev));
        }
    }
}

/// Opens a span. If tracing is disabled this is one relaxed atomic load
/// and returns an inert guard; otherwise the span draws a fresh id,
/// parents itself to the thread's current span (starting a new trace if
/// none is active), becomes current, and records when the guard drops.
#[inline]
pub fn span(name: &str) -> Span {
    if !crate::tracing_enabled() {
        return Span {
            name: [0; NAME_CAP],
            name_len: 0,
            start: None,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            prev: (0, 0),
        };
    }
    let _ = epoch();
    let (name, name_len) = pack_name(name);
    let span_id = next_id();
    // One TLS visit reads the parent and installs this span. A root span
    // starts a fresh trace whose id *is* its span id (the usual
    // root-span convention) — one draw instead of two.
    let (prev, trace_id) = CURRENT.with(|c| {
        let prev = c.get();
        let trace_id = if prev.0 == 0 { span_id } else { prev.0 };
        c.set((trace_id, span_id));
        (prev, trace_id)
    });
    Span {
        name,
        name_len,
        start: Some(Instant::now()),
        trace_id,
        span_id,
        parent_id: prev.1,
        prev,
    }
}

/// Records a point event (Chrome trace `ph:"i"`), attached to the
/// thread's current trace and span if one is active. One relaxed load
/// when tracing is off.
#[inline]
pub fn trace_instant(name: &str) {
    if crate::tracing_enabled() {
        let ts_ns = since_epoch_ns(Instant::now());
        let (trace_id, parent_id) = CURRENT.with(Cell::get);
        let (name, name_len) = pack_name(name);
        let ev = TraceEvent {
            name,
            name_len,
            kind: TraceKind::Instant,
            ts_ns,
            dur_ns: 0,
            thread: 0,
            trace_id,
            span_id: 0,
            parent_id,
        };
        LOCAL.with(|ring| ring.push(&ev));
    }
}

fn collect(consume: bool) -> Vec<TraceEvent> {
    let mut out = Vec::new();
    {
        let registry = REGISTRY.lock();
        for ring in registry.iter() {
            ring.read_into(&mut out, consume);
        }
    }
    out.sort_by_key(|e| e.ts_ns);
    out
}

/// Removes and returns every buffered event from every thread's ring,
/// ordered by timestamp. Rings that wrapped yield only their newest
/// `4096` events.
pub fn drain() -> Vec<TraceEvent> {
    collect(true)
}

/// Like [`drain`] but leaves the rings intact: the flight recorder and
/// the scrape plane read without stealing events from each other.
pub fn snapshot() -> Vec<TraceEvent> {
    collect(false)
}

/// Escapes a string for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders events as JSON Lines: one object per event, nanosecond
/// timestamps, ids as 16-digit hex strings (hex, not numbers, because
/// u64 ids do not survive a round trip through JSON's f64), suitable for
/// `jq`/log shippers and for [`merge_chrome_trace`].
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let kind = match ev.kind {
            TraceKind::Span => "span",
            TraceKind::Instant => "instant",
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"kind\":\"{kind}\",\"ts_ns\":{},\"dur_ns\":{},\"thread\":{},\
             \"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\"}}\n",
            escape_json(ev.name()),
            ev.ts_ns,
            ev.dur_ns,
            ev.thread,
            ev.trace_id,
            ev.span_id,
            ev.parent_id,
        ));
    }
    out
}

fn chrome_args(ev: &TraceEvent) -> String {
    format!(
        "\"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\"}}",
        ev.trace_id, ev.span_id, ev.parent_id
    )
}

fn chrome_event(ev: &TraceEvent, pid: usize) -> String {
    let name = escape_json(ev.name());
    let ts_us = ev.ts_ns as f64 / 1000.0;
    let args = chrome_args(ev);
    match ev.kind {
        TraceKind::Span => format!(
            "{{\"name\":\"{name}\",\"cat\":\"cca\",\"ph\":\"X\",\"ts\":{ts_us:.3},\
             \"dur\":{:.3},\"pid\":{pid},\"tid\":{},{args}}}",
            ev.dur_ns as f64 / 1000.0,
            ev.thread
        ),
        TraceKind::Instant => format!(
            "{{\"name\":\"{name}\",\"cat\":\"cca\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{ts_us:.3},\"pid\":{pid},\"tid\":{},{args}}}",
            ev.thread
        ),
    }
}

/// Renders events as a Chrome `trace_event` JSON document (`ph:"X"`
/// complete events, `ph:"i"` instants; timestamps in microseconds; trace
/// identity under `args`). Load the output at `chrome://tracing` or
/// <https://ui.perfetto.dev>.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut body = String::new();
    for ev in events {
        if !body.is_empty() {
            body.push(',');
        }
        body.push_str(&chrome_event(ev, 1));
    }
    format!("{{\"traceEvents\":[{body}],\"displayTimeUnit\":\"ns\"}}")
}

// ---------------------------------------------------------------------------
// Multi-process merge
// ---------------------------------------------------------------------------

/// Returns the raw text of `"key":<value>` in a JSONL line, starting at
/// the value.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    Some(&line[at..])
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let raw = field_raw(line, key)?;
    let digits: String = raw.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn field_hex(line: &str, key: &str) -> Option<u64> {
    let raw = field_raw(line, key)?.strip_prefix('"')?;
    let end = raw.find('"')?;
    u64::from_str_radix(&raw[..end], 16).ok()
}

/// Returns the *still-escaped* string value, so it can be re-emitted into
/// JSON verbatim.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let raw = field_raw(line, key)?.strip_prefix('"')?;
    let bytes = raw.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(&raw[..i]),
            _ => i += 1,
        }
    }
    None
}

struct MergedEvent {
    name_raw: String,
    is_span: bool,
    ts_ns: u64,
    dur_ns: u64,
    thread: u64,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    pid: usize,
}

/// Fuses several processes' [`to_jsonl`] dumps into one Chrome
/// `trace_event` document: each `(label, jsonl)` pair becomes a named
/// `pid` row, and every cross-process parent link (a server dispatch span
/// whose parent span lives in another process) gets a Perfetto flow arrow
/// from caller to callee. This is what turns N per-process dumps of a
/// Figure-2 pipeline into one causal timeline.
pub fn merge_chrome_trace(processes: &[(&str, &str)]) -> String {
    let mut events: Vec<MergedEvent> = Vec::new();
    let mut body = String::new();
    for (idx, (label, jsonl)) in processes.iter().enumerate() {
        let pid = idx + 1;
        if !body.is_empty() {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(label)
        ));
        for line in jsonl.lines() {
            let (Some(name_raw), Some(kind)) = (field_str(line, "name"), field_str(line, "kind"))
            else {
                continue;
            };
            events.push(MergedEvent {
                name_raw: name_raw.to_string(),
                is_span: kind == "span",
                ts_ns: field_u64(line, "ts_ns").unwrap_or(0),
                dur_ns: field_u64(line, "dur_ns").unwrap_or(0),
                thread: field_u64(line, "thread").unwrap_or(0),
                trace_id: field_hex(line, "trace").unwrap_or(0),
                span_id: field_hex(line, "span").unwrap_or(0),
                parent_id: field_hex(line, "parent").unwrap_or(0),
                pid,
            });
        }
    }

    // Where each span lives, for binding cross-process parent links.
    let mut span_home: std::collections::HashMap<u64, (usize, u64, u64)> =
        std::collections::HashMap::new();
    for ev in events.iter().filter(|e| e.is_span && e.span_id != 0) {
        span_home.insert(ev.span_id, (ev.pid, ev.ts_ns, ev.thread));
    }

    for ev in &events {
        body.push(',');
        let ts_us = ev.ts_ns as f64 / 1000.0;
        let args = format!(
            "\"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\"}}",
            ev.trace_id, ev.span_id, ev.parent_id
        );
        if ev.is_span {
            body.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"cca\",\"ph\":\"X\",\"ts\":{ts_us:.3},\
                 \"dur\":{:.3},\"pid\":{},\"tid\":{},{args}}}",
                ev.name_raw,
                ev.dur_ns as f64 / 1000.0,
                ev.pid,
                ev.thread
            ));
        } else {
            body.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"cca\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{ts_us:.3},\"pid\":{},\"tid\":{},{args}}}",
                ev.name_raw, ev.pid, ev.thread
            ));
        }
    }

    // Flow arrows for parent links that cross a process boundary.
    for ev in events.iter().filter(|e| e.is_span && e.parent_id != 0) {
        let Some(&(ppid, pts_ns, ptid)) = span_home.get(&ev.parent_id) else {
            continue;
        };
        if ppid == ev.pid {
            continue;
        }
        body.push_str(&format!(
            ",{{\"name\":\"rpc\",\"cat\":\"cca\",\"ph\":\"s\",\"id\":{},\"pid\":{ppid},\
             \"tid\":{ptid},\"ts\":{:.3}}}",
            ev.span_id,
            pts_ns as f64 / 1000.0
        ));
        body.push_str(&format!(
            ",{{\"name\":\"rpc\",\"cat\":\"cca\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\
             \"pid\":{},\"tid\":{},\"ts\":{:.3}}}",
            ev.span_id,
            ev.pid,
            ev.thread,
            ev.ts_ns as f64 / 1000.0
        ));
    }

    format!("{{\"traceEvents\":[{body}],\"displayTimeUnit\":\"ns\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags;

    // Flag toggles are process-global; serialize the tests that flip them.
    use crate::flags::TEST_LOCK;

    #[test]
    fn span_and_instant_round_trip() {
        let _guard = TEST_LOCK.lock();
        flags::set_tracing(true);
        drain();
        {
            let s = span("getPort");
            assert!(s.is_recording());
            trace_instant("connected");
        }
        flags::set_tracing(false);
        let events = drain();
        assert_eq!(events.len(), 2);
        // Ordered by timestamp: the instant fires before the span closes
        // but the span's ts is its *start*, which is earlier still.
        assert_eq!(events[0].name(), "getPort");
        assert_eq!(events[0].kind, TraceKind::Span);
        assert_eq!(events[1].name(), "connected");
        assert_eq!(events[1].kind, TraceKind::Instant);
        assert_eq!(events[1].dur_ns, 0);
        // The instant is attached to the enclosing span's trace.
        assert_ne!(events[0].trace_id, 0);
        assert_eq!(events[1].trace_id, events[0].trace_id);
        assert_eq!(events[1].parent_id, events[0].span_id);

        let jsonl = to_jsonl(&events);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"kind\":\"span\""));
        assert!(jsonl.contains("\"name\":\"connected\""));
        assert!(jsonl.contains(&format!("\"trace\":\"{:016x}\"", events[0].trace_id)));

        let chrome = to_chrome_trace(&events);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"args\":{\"trace\":"));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _guard = TEST_LOCK.lock();
        flags::set_tracing(false);
        drain();
        let s = span("ignored");
        assert!(!s.is_recording());
        assert!(s.context().is_none());
        drop(s);
        trace_instant("ignored");
        assert!(current_context().is_none());
        assert!(drain().is_empty());
    }

    #[test]
    fn nested_spans_link_parents() {
        let _guard = TEST_LOCK.lock();
        flags::set_tracing(true);
        drain();
        {
            let outer = span("outer");
            let octx = outer.context().unwrap();
            {
                let inner = span("inner");
                let ictx = inner.context().unwrap();
                assert_eq!(ictx.trace_id, octx.trace_id);
                assert_ne!(ictx.span_id, octx.span_id);
                // The current context follows the innermost live span.
                assert_eq!(current_context(), Some(ictx));
            }
            assert_eq!(current_context(), Some(octx));
        }
        flags::set_tracing(false);
        let events = drain();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name() == "outer").unwrap();
        let inner = events.iter().find(|e| e.name() == "inner").unwrap();
        assert_eq!(inner.trace_id, outer.trace_id);
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(outer.parent_id, 0);
    }

    #[test]
    fn installed_context_parents_local_spans() {
        let _guard = TEST_LOCK.lock();
        flags::set_tracing(true);
        drain();
        let remote = TraceContext {
            trace_id: 0xabcd,
            span_id: 0x1234,
        };
        {
            let g = install_context(Some(remote));
            assert_eq!(current_context(), Some(remote));
            let _s = span("dispatch");
            drop(_s);
            drop(g);
        }
        assert!(current_context().is_none());
        flags::set_tracing(false);
        let events = drain();
        let dispatch = events.iter().find(|e| e.name() == "dispatch").unwrap();
        assert_eq!(dispatch.trace_id, remote.trace_id);
        assert_eq!(dispatch.parent_id, remote.span_id);
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn long_names_truncate_at_char_boundary() {
        let (_, len) = pack_name(&"é".repeat(20)); // 40 bytes of 2-byte chars
        assert_eq!(len, 32);
        let (buf, len) = pack_name(&format!("{}é", "a".repeat(31))); // é spans 31..33
        assert_eq!(len, 31);
        assert_eq!(std::str::from_utf8(&buf[..len as usize]).unwrap().len(), 31);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let ring = Ring::new(7);
        let (name, name_len) = pack_name("x");
        for i in 0..(RING_CAP as u64 + 10) {
            ring.push(&TraceEvent {
                name,
                name_len,
                kind: TraceKind::Instant,
                ts_ns: i,
                dur_ns: 0,
                thread: 0,
                trace_id: 1,
                span_id: 0,
                parent_id: 2,
            });
        }
        let mut out = Vec::new();
        ring.read_into(&mut out, true);
        assert_eq!(out.len(), RING_CAP);
        // Oldest surviving event is #10.
        let min = out.iter().map(|e| e.ts_ns).min().unwrap();
        assert_eq!(min, 10);
        assert!(out.iter().all(|e| e.thread == 7 && e.trace_id == 1));
        // Consumed: a second read yields nothing new.
        let mut again = Vec::new();
        ring.read_into(&mut again, false);
        assert!(again.is_empty());
    }

    #[test]
    fn snapshot_does_not_consume() {
        let _guard = TEST_LOCK.lock();
        flags::set_tracing(true);
        drain();
        trace_instant("kept");
        flags::set_tracing(false);
        let first = snapshot();
        assert!(first.iter().any(|e| e.name() == "kept"));
        let second = snapshot();
        assert!(second.iter().any(|e| e.name() == "kept"));
        let drained = drain();
        assert!(drained.iter().any(|e| e.name() == "kept"));
        assert!(drain().is_empty());
    }

    #[test]
    fn concurrent_reads_see_only_intact_events() {
        // Hammer one ring directly: a single writer races a reader that
        // snapshots without consuming. Torn slots must never decode.
        let ring = Arc::new(Ring::new(0));
        let writer_ring = Arc::clone(&ring);
        let writer = std::thread::spawn(move || {
            let (even, even_len) = pack_name("even-event");
            let (odd, odd_len) = pack_name("odd-event-name");
            for i in 0..200_000u64 {
                let (name, name_len) = if i % 2 == 0 {
                    (even, even_len)
                } else {
                    (odd, odd_len)
                };
                writer_ring.push(&TraceEvent {
                    name,
                    name_len,
                    kind: TraceKind::Instant,
                    ts_ns: i,
                    dur_ns: i ^ 0x5a5a,
                    thread: 0,
                    trace_id: 0xfeed,
                    span_id: i,
                    parent_id: !i,
                });
            }
        });
        let mut rounds = 0usize;
        while !writer.is_finished() {
            let mut out = Vec::new();
            ring.read_into(&mut out, false);
            for ev in &out {
                let ok = (ev.name() == "even-event" && ev.ts_ns % 2 == 0)
                    || (ev.name() == "odd-event-name" && ev.ts_ns % 2 == 1);
                assert!(ok, "torn event leaked: {:?} ts={}", ev.name(), ev.ts_ns);
                assert_eq!(ev.trace_id, 0xfeed);
                assert_eq!(ev.span_id, ev.ts_ns);
                assert_eq!(ev.parent_id, !ev.ts_ns);
                assert_eq!(ev.dur_ns, ev.ts_ns ^ 0x5a5a);
            }
            rounds += 1;
        }
        writer.join().unwrap();
        let mut out = Vec::new();
        ring.read_into(&mut out, true);
        assert_eq!(out.len(), RING_CAP);
        assert!(rounds > 0);
    }

    #[test]
    fn merge_links_cross_process_spans() {
        // Hand-built two-process dump: client call span 0x11 in trace
        // 0xaa, server dispatch span 0x22 parented to 0x11.
        let client = "{\"name\":\"rpc.mux.call\",\"kind\":\"span\",\"ts_ns\":1000,\
                      \"dur_ns\":5000,\"thread\":0,\
                      \"trace\":\"00000000000000aa\",\"span\":\"0000000000000011\",\
                      \"parent\":\"0000000000000000\"}\n";
        let server = "{\"name\":\"rpc.dispatch\",\"kind\":\"span\",\"ts_ns\":2000,\
                      \"dur_ns\":1000,\"thread\":3,\
                      \"trace\":\"00000000000000aa\",\"span\":\"0000000000000022\",\
                      \"parent\":\"0000000000000011\"}\n";
        let merged = merge_chrome_trace(&[("client", client), ("server", server)]);
        assert!(merged.contains("\"process_name\""));
        assert!(merged.contains("\"args\":{\"name\":\"client\"}"));
        assert!(merged.contains("\"args\":{\"name\":\"server\"}"));
        // Both spans present under their own pids.
        assert!(merged.contains("\"name\":\"rpc.mux.call\",\"cat\":\"cca\",\"ph\":\"X\""));
        assert!(merged.contains("\"pid\":2,\"tid\":3"));
        // The cross-process link becomes a flow arrow pair.
        assert!(merged.contains("\"ph\":\"s\",\"id\":34,\"pid\":1"));
        assert!(merged.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":34,\"pid\":2"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
