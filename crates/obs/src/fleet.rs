//! Fleet counters: one shared tally of worker-fleet supervision events.
//!
//! Same shape as [`crate::resilience`]: plain relaxed atomics bumped from
//! the supervisor/hub hot paths (rank death handling must never block on
//! observability), snapshot on demand, stable-key JSON for the
//! ObservabilityPort and the flight recorder.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for fleet supervision, one instance process-wide
/// (see [`fleet()`]).
#[derive(Debug)]
pub struct FleetCounters {
    /// Child processes launched (first launches and restarts).
    launches: AtomicU64,
    /// Rank deaths detected (connection death / waitpid).
    deaths: AtomicU64,
    /// Restarts scheduled under backoff after a death.
    restarts: AtomicU64,
    /// Ranks that completed the join handshake after a restart.
    rejoins: AtomicU64,
    /// Group generation bumps (each non-clean disconnect forces one).
    generation_bumps: AtomicU64,
    /// Checkpoints promoted to committed (all ranks staged the step).
    checkpoints_committed: AtomicU64,
    /// Messages relayed through the fleet hub's mailboxes.
    messages_relayed: AtomicU64,
}

/// A point-in-time copy of [`FleetCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSnapshot {
    /// Child processes launched (first launches and restarts).
    pub launches: u64,
    /// Rank deaths detected.
    pub deaths: u64,
    /// Restarts scheduled under backoff.
    pub restarts: u64,
    /// Ranks rejoined after restart.
    pub rejoins: u64,
    /// Group generation bumps.
    pub generation_bumps: u64,
    /// Checkpoints promoted to committed.
    pub checkpoints_committed: u64,
    /// Messages relayed through the hub.
    pub messages_relayed: u64,
}

impl FleetSnapshot {
    /// Stable-key-order JSON object, consumed by scrape endpoints and the
    /// flight recorder.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"checkpoints_committed\":{},\"deaths\":{},\"generation_bumps\":{},\
             \"launches\":{},\"messages_relayed\":{},\"rejoins\":{},\"restarts\":{}}}",
            self.checkpoints_committed,
            self.deaths,
            self.generation_bumps,
            self.launches,
            self.messages_relayed,
            self.rejoins,
            self.restarts,
        )
    }
}

impl FleetCounters {
    /// Records a child-process launch.
    pub fn record_launch(&self) {
        self.launches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a detected rank death.
    pub fn record_death(&self) {
        self.deaths.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a restart scheduled under backoff.
    pub fn record_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed post-restart rejoin.
    pub fn record_rejoin(&self) {
        self.rejoins.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a group generation bump.
    pub fn record_generation_bump(&self) {
        self.generation_bumps.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a checkpoint promoted to committed.
    pub fn record_checkpoint_committed(&self) {
        self.checkpoints_committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one message relayed through the hub.
    pub fn record_message_relayed(&self) {
        self.messages_relayed.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> FleetSnapshot {
        FleetSnapshot {
            launches: self.launches.load(Ordering::Relaxed),
            deaths: self.deaths.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            rejoins: self.rejoins.load(Ordering::Relaxed),
            generation_bumps: self.generation_bumps.load(Ordering::Relaxed),
            checkpoints_committed: self.checkpoints_committed.load(Ordering::Relaxed),
            messages_relayed: self.messages_relayed.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter (tests).
    pub fn reset(&self) {
        self.launches.store(0, Ordering::Relaxed);
        self.deaths.store(0, Ordering::Relaxed);
        self.restarts.store(0, Ordering::Relaxed);
        self.rejoins.store(0, Ordering::Relaxed);
        self.generation_bumps.store(0, Ordering::Relaxed);
        self.checkpoints_committed.store(0, Ordering::Relaxed);
        self.messages_relayed.store(0, Ordering::Relaxed);
    }
}

static GLOBAL: FleetCounters = FleetCounters {
    launches: AtomicU64::new(0),
    deaths: AtomicU64::new(0),
    restarts: AtomicU64::new(0),
    rejoins: AtomicU64::new(0),
    generation_bumps: AtomicU64::new(0),
    checkpoints_committed: AtomicU64::new(0),
    messages_relayed: AtomicU64::new(0),
};

/// The process-wide fleet counters.
pub fn fleet() -> &'static FleetCounters {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = FleetCounters {
            launches: AtomicU64::new(0),
            deaths: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            generation_bumps: AtomicU64::new(0),
            checkpoints_committed: AtomicU64::new(0),
            messages_relayed: AtomicU64::new(0),
        };
        c.record_launch();
        c.record_launch();
        c.record_death();
        c.record_restart();
        c.record_rejoin();
        c.record_generation_bump();
        c.record_checkpoint_committed();
        c.record_message_relayed();
        c.record_message_relayed();
        let s = c.snapshot();
        assert_eq!(s.launches, 2);
        assert_eq!(s.deaths, 1);
        assert_eq!(s.restarts, 1);
        assert_eq!(s.rejoins, 1);
        assert_eq!(s.generation_bumps, 1);
        assert_eq!(s.checkpoints_committed, 1);
        assert_eq!(s.messages_relayed, 2);
        c.reset();
        assert_eq!(c.snapshot().deaths, 0);
    }

    #[test]
    fn json_has_stable_key_order() {
        let s = FleetSnapshot {
            launches: 4,
            deaths: 1,
            restarts: 1,
            rejoins: 1,
            generation_bumps: 1,
            checkpoints_committed: 6,
            messages_relayed: 120,
        };
        assert_eq!(
            s.to_json(),
            "{\"checkpoints_committed\":6,\"deaths\":1,\"generation_bumps\":1,\
             \"launches\":4,\"messages_relayed\":120,\"rejoins\":1,\"restarts\":1}"
        );
    }

    #[test]
    fn global_instance_is_reachable() {
        let before = fleet().snapshot().launches;
        fleet().record_launch();
        assert!(fleet().snapshot().launches > before);
    }
}
