//! Global repository counters: deposits, lookups, fuzzy discovery.
//!
//! The sharded repository (`cca-repository`) reports here so the
//! `ObservabilityPort`/`DiscoveryPort` can answer "how hot is the
//! catalog" without walking shards. Like [`crate::resilience`], these are
//! **not** gated by the `counters` flag: a registration or a fuzzy query
//! already allocates and searches, so one relaxed `fetch_add` on top is
//! noise — only the exact-lookup counters sit near a hot path, and that
//! path is a hash + one `Arc` clone, where a relaxed add is still far
//! below measurement floor. Process-global, like [`crate::flags`].

use std::sync::atomic::{AtomicU64, Ordering};

/// The process-wide repository counter block.
#[derive(Debug, Default)]
pub struct RepoCounters {
    deposits: AtomicU64,
    exact_lookups: AtomicU64,
    exact_misses: AtomicU64,
    fuzzy_queries: AtomicU64,
    fuzzy_hits: AtomicU64,
    cursor_pages: AtomicU64,
    rebalances: AtomicU64,
}

impl RepoCounters {
    /// Records `n` component registrations (single or batch deposit).
    pub fn record_deposits(&self, n: u64) {
        self.deposits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one exact class lookup that found its entry.
    pub fn record_exact_lookup(&self) {
        self.exact_lookups.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one exact class lookup that missed.
    pub fn record_exact_miss(&self) {
        self.exact_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fuzzy query returning `hits` entries on its page.
    pub fn record_fuzzy_query(&self, hits: u64) {
        self.fuzzy_queries.fetch_add(1, Ordering::Relaxed);
        self.fuzzy_hits.fetch_add(hits, Ordering::Relaxed);
    }

    /// Records one continuation page served from a `QueryCursor`.
    pub fn record_cursor_page(&self) {
        self.cursor_pages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one store-wide reshard.
    pub fn record_rebalance(&self) {
        self.rebalances.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> RepoSnapshot {
        RepoSnapshot {
            deposits: self.deposits.load(Ordering::Relaxed),
            exact_lookups: self.exact_lookups.load(Ordering::Relaxed),
            exact_misses: self.exact_misses.load(Ordering::Relaxed),
            fuzzy_queries: self.fuzzy_queries.load(Ordering::Relaxed),
            fuzzy_hits: self.fuzzy_hits.load(Ordering::Relaxed),
            cursor_pages: self.cursor_pages.load(Ordering::Relaxed),
            rebalances: self.rebalances.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter (test isolation; counters are process-global).
    pub fn reset(&self) {
        self.deposits.store(0, Ordering::Relaxed);
        self.exact_lookups.store(0, Ordering::Relaxed);
        self.exact_misses.store(0, Ordering::Relaxed);
        self.fuzzy_queries.store(0, Ordering::Relaxed);
        self.fuzzy_hits.store(0, Ordering::Relaxed);
        self.cursor_pages.store(0, Ordering::Relaxed);
        self.rebalances.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the global [`RepoCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepoSnapshot {
    /// Component registrations (single + batch).
    pub deposits: u64,
    /// Exact class lookups that found their entry.
    pub exact_lookups: u64,
    /// Exact class lookups that missed.
    pub exact_misses: u64,
    /// Fuzzy discovery queries served (first pages and continuations).
    pub fuzzy_queries: u64,
    /// Entries returned across all fuzzy pages.
    pub fuzzy_hits: u64,
    /// Continuation pages served from a cursor.
    pub cursor_pages: u64,
    /// Store-wide reshards.
    pub rebalances: u64,
}

impl RepoSnapshot {
    /// JSON rendering (object; stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"deposits\":{},\"exact_lookups\":{},\"exact_misses\":{},\
             \"fuzzy_queries\":{},\"fuzzy_hits\":{},\"cursor_pages\":{},\
             \"rebalances\":{}}}",
            self.deposits,
            self.exact_lookups,
            self.exact_misses,
            self.fuzzy_queries,
            self.fuzzy_hits,
            self.cursor_pages,
            self.rebalances
        )
    }
}

static GLOBAL: RepoCounters = RepoCounters {
    deposits: AtomicU64::new(0),
    exact_lookups: AtomicU64::new(0),
    exact_misses: AtomicU64::new(0),
    fuzzy_queries: AtomicU64::new(0),
    fuzzy_hits: AtomicU64::new(0),
    cursor_pages: AtomicU64::new(0),
    rebalances: AtomicU64::new(0),
};

/// The process-global repository counter block.
pub fn repo() -> &'static RepoCounters {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        // Local block (the global one is shared with other tests).
        let c = RepoCounters::default();
        c.record_deposits(3);
        c.record_exact_lookup();
        c.record_exact_miss();
        c.record_fuzzy_query(10);
        c.record_fuzzy_query(0);
        c.record_cursor_page();
        c.record_rebalance();
        let s = c.snapshot();
        assert_eq!(
            s,
            RepoSnapshot {
                deposits: 3,
                exact_lookups: 1,
                exact_misses: 1,
                fuzzy_queries: 2,
                fuzzy_hits: 10,
                cursor_pages: 1,
                rebalances: 1,
            }
        );
        c.reset();
        assert_eq!(c.snapshot(), RepoSnapshot::default());
    }

    #[test]
    fn snapshot_json_is_stable() {
        let c = RepoCounters::default();
        c.record_deposits(1);
        assert_eq!(
            c.snapshot().to_json(),
            "{\"deposits\":1,\"exact_lookups\":0,\"exact_misses\":0,\
             \"fuzzy_queries\":0,\"fuzzy_hits\":0,\"cursor_pages\":0,\
             \"rebalances\":0}"
        );
    }

    #[test]
    fn global_block_is_reachable() {
        let before = repo().snapshot().deposits;
        repo().record_deposits(1);
        assert!(repo().snapshot().deposits > before);
    }
}
