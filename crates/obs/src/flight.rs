//! The fault flight recorder: a bounded on-disk "black box".
//!
//! When something goes wrong at a distance — a provider is quarantined, a
//! call blows its deadline, a connection dies mid-flight — the live
//! evidence (recent trace events, resilience counters, transport metrics)
//! is gone by the time anyone looks. [`record_incident`] freezes that
//! evidence the moment the fault fires: one JSONL file per incident,
//! written atomically (tmp + rename, like the bench artifacts), holding a
//! header line with the fault kind and counter snapshots followed by the
//! last N ring events from [`crate::trace::snapshot`].
//!
//! The recorder is **off by default and does zero IO** until given a
//! directory, either programmatically via [`configure`] or through the
//! `CCA_FLIGHT_DIR` environment variable (read lazily on the first
//! incident). Retention is bounded: oldest incident files are deleted
//! beyond `max_incidents`. All triggers sit on failure paths, so the
//! happy path never touches this module.

use parking_lot::Mutex;
use std::path::{Path, PathBuf};

/// Ring events kept per incident by default.
const DEFAULT_MAX_EVENTS: usize = 256;
/// Incident files retained by default.
const DEFAULT_MAX_INCIDENTS: usize = 16;

struct FlightState {
    dir: Option<PathBuf>,
    max_incidents: usize,
    max_events: usize,
    seq: u64,
    files: Vec<PathBuf>,
    env_checked: bool,
}

static STATE: Mutex<FlightState> = Mutex::new(FlightState {
    dir: None,
    max_incidents: DEFAULT_MAX_INCIDENTS,
    max_events: DEFAULT_MAX_EVENTS,
    seq: 0,
    files: Vec::new(),
    env_checked: false,
});

fn resolve_env(state: &mut FlightState) {
    if state.env_checked {
        return;
    }
    state.env_checked = true;
    if let Ok(dir) = std::env::var("CCA_FLIGHT_DIR") {
        if !dir.is_empty() {
            state.dir = Some(PathBuf::from(dir));
        }
    }
}

/// Points the recorder at `dir` (or disables it with `None`) and sets the
/// retention bounds. Overrides `CCA_FLIGHT_DIR`.
pub fn configure(dir: Option<&Path>, max_incidents: usize, max_events: usize) {
    let mut state = STATE.lock();
    state.env_checked = true;
    state.dir = dir.map(Path::to_path_buf);
    state.max_incidents = max_incidents.max(1);
    state.max_events = max_events.max(1);
}

/// True if an incident would actually be written. Lets failure paths skip
/// building metrics JSON when the recorder is off.
pub fn enabled() -> bool {
    let mut state = STATE.lock();
    resolve_env(&mut state);
    state.dir.is_some()
}

/// The incident files this process has recorded and not yet evicted,
/// oldest first. Lets a scrape plane inventory the black box remotely.
pub fn incidents() -> Vec<PathBuf> {
    STATE.lock().files.clone()
}

/// Records an incident: [`record_incident_with_metrics`] without a
/// transport metrics snapshot.
pub fn record_incident(kind: &str, detail: &str) -> Option<PathBuf> {
    record_incident_with_metrics(kind, detail, None)
}

/// Snapshots the system into a new incident file and returns its path,
/// or `None` when the recorder is disabled.
///
/// Line 1 is the incident header: fault kind and detail, wall-clock
/// timestamp, pid, flag state, the global resilience counters, and the
/// caller-supplied transport `metrics` JSON if any. Every following line
/// is one recent trace event in [`crate::trace::to_jsonl`] format, oldest
/// first, capped at the configured `max_events`.
pub fn record_incident_with_metrics(
    kind: &str,
    detail: &str,
    metrics_json: Option<&str>,
) -> Option<PathBuf> {
    let mut state = STATE.lock();
    resolve_env(&mut state);
    let dir = state.dir.clone()?;
    state.seq += 1;
    let seq = state.seq;
    let pid = std::process::id();
    let path = dir.join(format!("flight_{pid}_{seq:04}.jsonl"));

    let ts_unix_ns = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut contents = format!(
        "{{\"schema\":\"cca-flight/1\",\"kind\":\"{}\",\"detail\":\"{}\",\
         \"ts_unix_ns\":{ts_unix_ns},\"pid\":{pid},\"tracing\":{},\"counters\":{},\
         \"resilience\":{}",
        crate::trace::escape_json(kind),
        crate::trace::escape_json(detail),
        crate::tracing_enabled(),
        crate::counters_enabled(),
        crate::resilience().snapshot().to_json(),
    );
    if let Some(metrics) = metrics_json {
        contents.push_str(&format!(",\"metrics\":{metrics}"));
    }
    contents.push_str("}\n");

    let events = crate::trace::snapshot();
    let from = events.len().saturating_sub(state.max_events);
    contents.push_str(&crate::trace::to_jsonl(&events[from..]));

    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let tmp = dir.join(format!("flight_{pid}_{seq:04}.jsonl.tmp"));
    if std::fs::write(&tmp, contents).is_err() {
        return None;
    }
    if std::fs::rename(&tmp, &path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return None;
    }

    state.files.push(path.clone());
    while state.files.len() > state.max_incidents {
        let oldest = state.files.remove(0);
        let _ = std::fs::remove_file(oldest);
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cca_flight_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disabled_recorder_writes_nothing() {
        let _guard = crate::flags::TEST_LOCK.lock();
        configure(None, 4, 16);
        assert!(!enabled());
        assert!(record_incident("ProviderQuarantined", "p1").is_none());
    }

    #[test]
    fn incident_captures_header_and_ring_events() {
        let _guard = crate::flags::TEST_LOCK.lock();
        let dir = temp_dir("capture");
        configure(Some(&dir), 4, 8);
        assert!(enabled());
        crate::set_tracing(true);
        crate::trace::drain();
        crate::trace_instant("before-the-fault");
        let path = record_incident_with_metrics(
            "DeadlineExceeded",
            "tcp://127.0.0.1:1/svc",
            Some("{\"in_flight\":0}"),
        )
        .expect("incident written");
        crate::set_tracing(false);
        crate::trace::drain();

        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("\"schema\":\"cca-flight/1\""));
        assert!(header.contains("\"kind\":\"DeadlineExceeded\""));
        assert!(header.contains("\"detail\":\"tcp://127.0.0.1:1/svc\""));
        assert!(header.contains("\"resilience\":{"));
        assert!(header.contains("\"metrics\":{\"in_flight\":0}"));
        assert!(text.contains("\"name\":\"before-the-fault\""));
        // No tmp file left behind.
        assert!(std::fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .path()
            .to_string_lossy()
            .ends_with(".tmp")));
        configure(None, 4, 16);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_is_bounded() {
        let _guard = crate::flags::TEST_LOCK.lock();
        let dir = temp_dir("retain");
        configure(Some(&dir), 2, 4);
        let a = record_incident("ConnectionFailure", "one").unwrap();
        let b = record_incident("ConnectionFailure", "two").unwrap();
        let c = record_incident("ConnectionFailure", "three").unwrap();
        assert!(!a.exists(), "oldest incident should be evicted");
        assert!(b.exists() && c.exists());
        assert_eq!(incidents(), vec![b.clone(), c.clone()]);
        configure(None, 4, 16);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
