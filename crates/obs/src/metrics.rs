//! Per-port metrics: invocation counters, connection churn, fan-out width,
//! and log2 latency histograms.
//!
//! Everything on a record path is a relaxed atomic — **zero allocations
//! per call** (pinned by `crates/bench/tests/alloc_free.rs`). Structural
//! bookkeeping (creating a shard, snapshotting) may allocate; it happens
//! off the steady-state call path.
//!
//! Call counting comes in two flavors:
//!
//! * [`PortMetrics::record_direct_call`] — a relaxed `fetch_add`, used by
//!   the uncached `getPort` paths and fan-out multicast, which are already
//!   map-lookup-heavy;
//! * [`CallShard`] — a single-writer cell a `CachedPort` owns. The §6.2
//!   steady state then records with one relaxed **store** (no RMW bus
//!   lock), which is what keeps the counters-on call within 1.5× of the
//!   uninstrumented call (gated by `e10_obs_overhead`). Readers sum the
//!   shards; no increments are ever lost because each shard has exactly
//!   one writer (`CachedPort::get` takes `&mut self`).

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const BUCKETS: usize = 32;

/// A fixed-bucket log2 latency histogram. Bucket `i` counts samples with
/// `floor(log2(ns)) == i`, saturating at the last bucket (≥ ~2.1 s).
/// Recording is one relaxed `fetch_add` per sample — allocation-free.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// The bucket index for a sample (0 for 0–1 ns, then `floor(log2)`).
    #[inline]
    pub fn bucket_of(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            ((63 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Records one latency sample. Relaxed atomics, no allocation.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for reporting (buckets are read relaxed;
    /// concurrent recording may skew totals by in-flight samples).
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Per-bucket sample counts (`buckets[i]` ⇔ `floor(log2(ns)) == i`).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
}

impl LatencySnapshot {
    /// Mean latency in nanoseconds (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive, ns) of bucket `i`: `2^(i+1)`.
    pub fn bucket_upper_ns(i: usize) -> u64 {
        1u64 << (i + 1).min(63)
    }

    /// An approximate quantile (0.0–1.0) from the bucket upper bounds.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank.max(1) {
                return Self::bucket_upper_ns(i);
            }
        }
        Self::bucket_upper_ns(BUCKETS - 1)
    }

    /// Compact JSON: only non-empty buckets, as `[bucket_index, count]`.
    pub fn to_json(&self) -> String {
        let mut pairs = String::new();
        for (i, b) in self.buckets.iter().enumerate() {
            if *b > 0 {
                if !pairs.is_empty() {
                    pairs.push(',');
                }
                pairs.push_str(&format!("[{i},{b}]"));
            }
        }
        format!(
            "{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{:.1},\"log2_buckets\":[{pairs}]}}",
            self.count,
            self.sum_ns,
            self.mean_ns()
        )
    }
}

/// A single-writer call counter cell.
///
/// Exactly one `CachedPort` owns a shard and bumps it with a relaxed
/// load+store (no RMW); any reader may sum shards at any time. Shards
/// outlive their writer so counts survive reconnection churn.
pub struct CallShard {
    count: AtomicU64,
}

impl CallShard {
    /// Single-writer increment: one relaxed load + one relaxed store.
    /// Calling this from more than one thread loses increments — it is
    /// only handed out via [`PortMetrics::call_shard`] to `&mut self`
    /// owners.
    #[inline]
    pub fn bump(&self) {
        let n = self.count.load(Ordering::Relaxed);
        self.count.store(n + 1, Ordering::Relaxed);
    }

    /// The shard's current count.
    pub fn value(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// Metrics of one port-table slot (a uses slot or a provides handle).
///
/// Lives behind an `Arc` inside the slot so copy-on-write snapshot
/// republication (PR 1's `Arc`-snapshot tables) shares one instance across
/// generations: counters survive reconnects, and readers never block
/// writers.
///
/// Connection-shape metrics (connects, disconnects, churn, fan-out) are
/// recorded **unconditionally** — they change only on rare table mutations.
/// Per-call metrics (calls, latency) are gated behind
/// [`crate::counters_enabled`] by the callers in `cca-core`.
pub struct PortMetrics {
    direct_calls: AtomicU64,
    connects: AtomicU64,
    disconnects: AtomicU64,
    churn: AtomicU64,
    fan_out: AtomicU64,
    max_fan_out: AtomicU64,
    resolutions: AtomicU64,
    latency: LatencyHistogram,
    shards: Mutex<Vec<Arc<CallShard>>>,
}

impl PortMetrics {
    /// Creates a zeroed metrics block.
    pub fn new() -> Arc<Self> {
        Arc::new(PortMetrics {
            direct_calls: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            churn: AtomicU64::new(0),
            fan_out: AtomicU64::new(0),
            max_fan_out: AtomicU64::new(0),
            resolutions: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            shards: Mutex::new(Vec::new()),
        })
    }

    /// Registers a new single-writer call shard (used by `CachedPort` at
    /// resolution time — off the per-call path).
    pub fn call_shard(&self) -> Arc<CallShard> {
        let shard = Arc::new(CallShard {
            count: AtomicU64::new(0),
        });
        self.shards.lock().push(Arc::clone(&shard));
        shard
    }

    /// Counts one invocation on the slow (uncached) path.
    #[inline]
    pub fn record_direct_call(&self) {
        self.direct_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one successful port resolution (`getPort`/downcast).
    #[inline]
    pub fn record_resolution(&self) {
        self.resolutions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one call latency sample into the log2 histogram.
    #[inline]
    pub fn record_latency_ns(&self, ns: u64) {
        self.latency.record_ns(ns);
    }

    /// Records a connection being attached; `fan_out` is the slot's new
    /// listener-list width.
    pub fn record_connect(&self, fan_out: u64) {
        self.connects.fetch_add(1, Ordering::Relaxed);
        self.churn.fetch_add(1, Ordering::Relaxed);
        self.fan_out.store(fan_out, Ordering::Relaxed);
        self.max_fan_out.fetch_max(fan_out, Ordering::Relaxed);
    }

    /// Records `dropped` connections being detached; `fan_out` is the new
    /// width.
    pub fn record_disconnect(&self, dropped: u64, fan_out: u64) {
        self.disconnects.fetch_add(dropped, Ordering::Relaxed);
        self.churn.fetch_add(1, Ordering::Relaxed);
        self.fan_out.store(fan_out, Ordering::Relaxed);
    }

    /// Total calls: the slow-path counter plus every shard.
    pub fn calls(&self) -> u64 {
        let sharded: u64 = self.shards.lock().iter().map(|s| s.value()).sum();
        self.direct_calls.load(Ordering::Relaxed) + sharded
    }

    /// The latency histogram (for direct recording by instrumented
    /// callers, e.g. the RPC transport or timed multicast).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> PortMetricsSnapshot {
        PortMetricsSnapshot {
            calls: self.calls(),
            connects: self.connects.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            churn: self.churn.load(Ordering::Relaxed),
            fan_out: self.fan_out.load(Ordering::Relaxed),
            max_fan_out: self.max_fan_out.load(Ordering::Relaxed),
            resolutions: self.resolutions.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

impl std::fmt::Debug for PortMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortMetrics")
            .field("calls", &self.calls())
            .field("fan_out", &self.fan_out.load(Ordering::Relaxed))
            .field("churn", &self.churn.load(Ordering::Relaxed))
            .finish()
    }
}

/// A point-in-time copy of one port's [`PortMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortMetricsSnapshot {
    /// Total invocations observed (cached shards + slow path).
    pub calls: u64,
    /// Connections attached over the slot's lifetime.
    pub connects: u64,
    /// Connections detached over the slot's lifetime.
    pub disconnects: u64,
    /// Table mutations that touched this slot (generation churn).
    pub churn: u64,
    /// Current listener-list width.
    pub fan_out: u64,
    /// High-water listener-list width.
    pub max_fan_out: u64,
    /// Successful resolutions (`getPort` + downcast, or provides hand-outs).
    pub resolutions: u64,
    /// Call latency histogram (populated only by timed paths).
    pub latency: LatencySnapshot,
}

impl PortMetricsSnapshot {
    /// JSON rendering (object; stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"calls\":{},\"connects\":{},\"disconnects\":{},\"churn\":{},\
             \"fan_out\":{},\"max_fan_out\":{},\"resolutions\":{},\"latency\":{}}}",
            self.calls,
            self.connects,
            self.disconnects,
            self.churn,
            self.fan_out,
            self.max_fan_out,
            self.resolutions,
            self.latency.to_json()
        )
    }
}

/// RPC transport metrics: payload bytes each way, round trips, per-method
/// round-trip counts, and a round-trip latency histogram. Lives on the ORB
/// (server side counts at dispatch) and on each `ObjRef` (client side), so
/// E3's ORB baseline and the direct-connect path report comparable numbers.
#[derive(Default)]
pub struct TransportMetrics {
    round_trips: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
    dials: AtomicU64,
    connection_drops: AtomicU64,
    latency: LatencyHistogram,
    per_method: Mutex<BTreeMap<String, u64>>,
}

impl TransportMetrics {
    /// Creates a zeroed block.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records one request/reply exchange. The per-method map may allocate
    /// on first sight of a method name — acceptable on the RPC path, which
    /// marshals into fresh buffers anyway.
    pub fn record_round_trip(&self, method: &str, bytes_out: u64, bytes_in: u64, dur_ns: u64) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        self.latency.record_ns(dur_ns);
        let mut map = self.per_method.lock();
        match map.get_mut(method) {
            Some(n) => *n += 1,
            None => {
                map.insert(method.to_string(), 1);
            }
        }
    }

    /// Total exchanges.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Records one socket dial attempt (successful or not). Like connection
    /// churn in [`PortMetrics`], dials are rare structural events and are
    /// recorded unconditionally — not gated by [`crate::counters_enabled`].
    pub fn record_dial(&self) {
        self.dials.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection discarded after an error (the peer hung up,
    /// a frame was malformed, or a timeout fired). Unconditional, like
    /// [`record_dial`](Self::record_dial).
    pub fn record_connection_drop(&self) {
        self.connection_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Socket dial attempts so far.
    pub fn dials(&self) -> u64 {
        self.dials.load(Ordering::Relaxed)
    }

    /// Connections discarded after errors so far.
    pub fn connection_drops(&self) -> u64 {
        self.connection_drops.load(Ordering::Relaxed)
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            round_trips: self.round_trips.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            dials: self.dials.load(Ordering::Relaxed),
            connection_drops: self.connection_drops.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
            per_method: self
                .per_method
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

impl std::fmt::Debug for TransportMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransportMetrics")
            .field("round_trips", &self.round_trips())
            .finish()
    }
}

/// A point-in-time copy of [`TransportMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// Request/reply exchanges.
    pub round_trips: u64,
    /// Marshaled request bytes sent.
    pub bytes_out: u64,
    /// Marshaled reply bytes received.
    pub bytes_in: u64,
    /// Socket dial attempts (0 for in-process transports).
    pub dials: u64,
    /// Connections discarded after errors.
    pub connection_drops: u64,
    /// Round-trip latency histogram.
    pub latency: LatencySnapshot,
    /// `(method, round_trips)` sorted by method name.
    pub per_method: Vec<(String, u64)>,
}

impl TransportSnapshot {
    /// JSON rendering.
    pub fn to_json(&self) -> String {
        let methods = self
            .per_method
            .iter()
            .map(|(m, n)| format!("\"{}\":{n}", crate::trace::escape_json(m)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"round_trips\":{},\"bytes_out\":{},\"bytes_in\":{},\
             \"dials\":{},\"connection_drops\":{},\
             \"per_method\":{{{methods}}},\"latency\":{}}}",
            self.round_trips,
            self.bytes_out,
            self.bytes_in,
            self.dials,
            self.connection_drops,
            self.latency.to_json()
        )
    }
}

// ---------------------------------------------------------------------------
// Multiplexed-transport metrics
// ---------------------------------------------------------------------------

/// Depth and backpressure metrics for a multiplexed transport endpoint.
///
/// A mux client shares a handful of sockets among many concurrent logical
/// callers, and a mux server buffers replies per connection — so the
/// interesting quantities are *depths*, not rates: how many calls are in
/// flight right now (and the high-water mark), how many reply bytes are
/// queued waiting for slow peers, and how often backpressure paused
/// reading a connection. Every record path is a relaxed atomic,
/// allocation-free, matching the [`PortMetrics`] contract.
#[derive(Default)]
pub struct MuxMetrics {
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
    queued_bytes: AtomicU64,
    peak_queued_bytes: AtomicU64,
    paused_connections: AtomicU64,
    pause_events: AtomicU64,
    protocol_violations: AtomicU64,
}

/// Lock-free running maximum: raise `peak` to at least `value`.
fn raise_peak(peak: &AtomicU64, value: u64) {
    let mut seen = peak.load(Ordering::Relaxed);
    while value > seen {
        match peak.compare_exchange_weak(seen, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(now) => seen = now,
        }
    }
}

impl MuxMetrics {
    /// Creates a zeroed block.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A call entered the in-flight set (registered with the completion
    /// router, not yet answered).
    pub fn record_begin(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        raise_peak(&self.peak_in_flight, now);
    }

    /// A call left the in-flight set (completed, failed, or abandoned).
    pub fn record_end(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Publishes the current total of queued (unflushed) reply bytes
    /// across all connections.
    pub fn set_queued_bytes(&self, bytes: u64) {
        self.queued_bytes.store(bytes, Ordering::Relaxed);
        raise_peak(&self.peak_queued_bytes, bytes);
    }

    /// Publishes how many connections currently have reads paused by
    /// backpressure, counting each newly paused connection as an event.
    pub fn set_paused_connections(&self, now_paused: u64) {
        let before = self.paused_connections.swap(now_paused, Ordering::Relaxed);
        if now_paused > before {
            self.pause_events
                .fetch_add(now_paused - before, Ordering::Relaxed);
        }
    }

    /// A peer violated the mux protocol (unknown or already-completed
    /// request id, wrong frame kind) and its connection was dropped.
    pub fn record_protocol_violation(&self) {
        self.protocol_violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Calls in flight right now.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrent in-flight calls.
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_in_flight.load(Ordering::Relaxed)
    }

    /// Reply bytes currently queued behind slow peers.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes.load(Ordering::Relaxed)
    }

    /// Connections currently paused by backpressure.
    pub fn paused_connections(&self) -> u64 {
        self.paused_connections.load(Ordering::Relaxed)
    }

    /// Times a connection newly entered the paused state.
    pub fn pause_events(&self) -> u64 {
        self.pause_events.load(Ordering::Relaxed)
    }

    /// Protocol violations observed so far.
    pub fn protocol_violations(&self) -> u64 {
        self.protocol_violations.load(Ordering::Relaxed)
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> MuxSnapshot {
        MuxSnapshot {
            in_flight: self.in_flight.load(Ordering::Relaxed),
            peak_in_flight: self.peak_in_flight.load(Ordering::Relaxed),
            queued_bytes: self.queued_bytes.load(Ordering::Relaxed),
            peak_queued_bytes: self.peak_queued_bytes.load(Ordering::Relaxed),
            paused_connections: self.paused_connections.load(Ordering::Relaxed),
            pause_events: self.pause_events.load(Ordering::Relaxed),
            protocol_violations: self.protocol_violations.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for MuxMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxMetrics")
            .field("in_flight", &self.in_flight())
            .field("peak_in_flight", &self.peak_in_flight())
            .finish()
    }
}

/// A point-in-time copy of [`MuxMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxSnapshot {
    /// Calls in flight at snapshot time.
    pub in_flight: u64,
    /// High-water mark of concurrent in-flight calls.
    pub peak_in_flight: u64,
    /// Reply bytes queued behind slow peers at snapshot time.
    pub queued_bytes: u64,
    /// High-water mark of queued reply bytes.
    pub peak_queued_bytes: u64,
    /// Connections paused by backpressure at snapshot time.
    pub paused_connections: u64,
    /// Times a connection newly entered the paused state.
    pub pause_events: u64,
    /// Mux protocol violations (each cost its peer the connection).
    pub protocol_violations: u64,
}

impl MuxSnapshot {
    /// JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"in_flight\":{},\"peak_in_flight\":{},\"queued_bytes\":{},\
             \"peak_queued_bytes\":{},\"paused_connections\":{},\
             \"pause_events\":{},\"protocol_violations\":{}}}",
            self.in_flight,
            self.peak_in_flight,
            self.queued_bytes,
            self.peak_queued_bytes,
            self.paused_connections,
            self.pause_events,
            self.protocol_violations
        )
    }
}

// ---------------------------------------------------------------------------
// Bulk data-plane metrics
// ---------------------------------------------------------------------------

/// Throughput and resume bookkeeping for the bulk data plane.
///
/// Bulk redistribution streams raw array slabs, so the interesting
/// quantities are *bytes and chunks*: how much payload went out and
/// landed, how many chunks were retransmitted after a connection drop
/// (each resume should cost at most one chunk per in-flight transfer),
/// and the largest single gather buffer a sender ever held — the
/// memory-boundedness claim of experiment E15 is "peak is one chunk,
/// not the array". Every record path is a relaxed atomic,
/// allocation-free, matching the [`PortMetrics`] contract.
#[derive(Default)]
pub struct BulkMetrics {
    bytes_sent: AtomicU64,
    bytes_landed: AtomicU64,
    chunks_sent: AtomicU64,
    chunks_landed: AtomicU64,
    resumed_chunks: AtomicU64,
    peak_chunk_bytes: AtomicU64,
}

impl BulkMetrics {
    /// Creates a zeroed block.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A sender put one slab of `payload_bytes` element bytes on the wire
    /// (header excluded), holding a gather buffer of `buffer_bytes`.
    pub fn record_chunk_sent(&self, payload_bytes: u64, buffer_bytes: u64) {
        self.bytes_sent.fetch_add(payload_bytes, Ordering::Relaxed);
        self.chunks_sent.fetch_add(1, Ordering::Relaxed);
        raise_peak(&self.peak_chunk_bytes, buffer_bytes);
    }

    /// A receiver scattered one slab of `payload_bytes` element bytes into
    /// destination storage.
    pub fn record_chunk_landed(&self, payload_bytes: u64) {
        self.bytes_landed
            .fetch_add(payload_bytes, Ordering::Relaxed);
        self.chunks_landed.fetch_add(1, Ordering::Relaxed);
    }

    /// A sender re-entered a transfer after a failure and will resend from
    /// the acked watermark; `chunks` is how many chunks it re-sends.
    pub fn record_resume(&self, chunks: u64) {
        self.resumed_chunks.fetch_add(chunks, Ordering::Relaxed);
    }

    /// Payload bytes sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Payload bytes landed into destination storage so far.
    pub fn bytes_landed(&self) -> u64 {
        self.bytes_landed.load(Ordering::Relaxed)
    }

    /// Chunks sent so far.
    pub fn chunks_sent(&self) -> u64 {
        self.chunks_sent.load(Ordering::Relaxed)
    }

    /// Chunks landed so far.
    pub fn chunks_landed(&self) -> u64 {
        self.chunks_landed.load(Ordering::Relaxed)
    }

    /// Chunks retransmitted across all resumes.
    pub fn resumed_chunks(&self) -> u64 {
        self.resumed_chunks.load(Ordering::Relaxed)
    }

    /// Largest gather buffer any sender held (bytes).
    pub fn peak_chunk_bytes(&self) -> u64 {
        self.peak_chunk_bytes.load(Ordering::Relaxed)
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> BulkSnapshot {
        BulkSnapshot {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_landed: self.bytes_landed.load(Ordering::Relaxed),
            chunks_sent: self.chunks_sent.load(Ordering::Relaxed),
            chunks_landed: self.chunks_landed.load(Ordering::Relaxed),
            resumed_chunks: self.resumed_chunks.load(Ordering::Relaxed),
            peak_chunk_bytes: self.peak_chunk_bytes.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for BulkMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BulkMetrics")
            .field("bytes_sent", &self.bytes_sent())
            .field("chunks_sent", &self.chunks_sent())
            .finish()
    }
}

/// A point-in-time copy of [`BulkMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkSnapshot {
    /// Payload bytes sent (slab headers excluded).
    pub bytes_sent: u64,
    /// Payload bytes landed into destination storage.
    pub bytes_landed: u64,
    /// Slab chunks sent.
    pub chunks_sent: u64,
    /// Slab chunks landed.
    pub chunks_landed: u64,
    /// Chunks retransmitted after failure resumes.
    pub resumed_chunks: u64,
    /// Largest sender gather buffer observed (bytes).
    pub peak_chunk_bytes: u64,
}

impl BulkSnapshot {
    /// JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bytes_sent\":{},\"bytes_landed\":{},\"chunks_sent\":{},\
             \"chunks_landed\":{},\"resumed_chunks\":{},\"peak_chunk_bytes\":{}}}",
            self.bytes_sent,
            self.bytes_landed,
            self.chunks_sent,
            self.chunks_landed,
            self.resumed_chunks,
            self.peak_chunk_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
        let h = LatencyHistogram::new();
        h.record_ns(3);
        h.record_ns(1000);
        h.record_ns(1024);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[9], 1);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.sum_ns, 2027);
        assert!((s.mean_ns() - 2027.0 / 3.0).abs() < 1e-9);
        assert!(s.quantile_ns(0.5) >= 512);
        assert!(s.to_json().contains("\"count\":3"));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.mean_ns(), 0.0);
        assert_eq!(s.quantile_ns(0.99), 0);
        assert!(s.to_json().contains("\"log2_buckets\":[]"));
    }

    #[test]
    fn calls_sum_shards_and_direct() {
        let m = PortMetrics::new();
        m.record_direct_call();
        m.record_direct_call();
        let s1 = m.call_shard();
        let s2 = m.call_shard();
        for _ in 0..5 {
            s1.bump();
        }
        for _ in 0..3 {
            s2.bump();
        }
        assert_eq!(m.calls(), 10);
        let snap = m.snapshot();
        assert_eq!(snap.calls, 10);
        assert!(snap.to_json().contains("\"calls\":10"));
    }

    #[test]
    fn connection_churn_bookkeeping() {
        let m = PortMetrics::new();
        m.record_connect(1);
        m.record_connect(2);
        m.record_connect(3);
        m.record_disconnect(1, 2);
        m.record_disconnect(2, 0);
        let s = m.snapshot();
        assert_eq!(s.connects, 3);
        assert_eq!(s.disconnects, 3);
        assert_eq!(s.churn, 5);
        assert_eq!(s.fan_out, 0);
        assert_eq!(s.max_fan_out, 3);
        assert!(format!("{m:?}").contains("churn"));
    }

    #[test]
    fn transport_metrics_per_method() {
        let t = TransportMetrics::new();
        t.record_round_trip("solve", 100, 40, 1500);
        t.record_round_trip("solve", 100, 40, 1600);
        t.record_round_trip("bump", 10, 8, 900);
        let s = t.snapshot();
        assert_eq!(s.round_trips, 3);
        assert_eq!(s.bytes_out, 210);
        assert_eq!(s.bytes_in, 88);
        assert_eq!(
            s.per_method,
            vec![("bump".to_string(), 1), ("solve".to_string(), 2)]
        );
        assert_eq!(s.latency.count, 3);
        assert!(s.to_json().contains("\"solve\":2"));
        assert!(format!("{t:?}").contains("round_trips"));
    }

    #[test]
    fn transport_metrics_count_dials_and_drops() {
        let t = TransportMetrics::new();
        t.record_dial();
        t.record_dial();
        t.record_connection_drop();
        assert_eq!(t.dials(), 2);
        assert_eq!(t.connection_drops(), 1);
        let s = t.snapshot();
        assert_eq!(s.dials, 2);
        assert_eq!(s.connection_drops, 1);
        assert!(s.to_json().contains("\"dials\":2"));
        assert!(s.to_json().contains("\"connection_drops\":1"));
    }

    #[test]
    fn mux_metrics_track_depth_watermarks_and_backpressure() {
        let m = MuxMetrics::new();
        m.record_begin();
        m.record_begin();
        m.record_begin();
        assert_eq!(m.in_flight(), 3);
        m.record_end();
        assert_eq!(m.in_flight(), 2);
        assert_eq!(m.peak_in_flight(), 3, "watermark survives completion");

        m.set_queued_bytes(4096);
        m.set_queued_bytes(128);
        assert_eq!(m.queued_bytes(), 128);

        m.set_paused_connections(2);
        m.set_paused_connections(1);
        m.set_paused_connections(3);
        assert_eq!(m.paused_connections(), 3);
        // 0→2 (+2 events), 2→1 (none), 1→3 (+2 events).
        assert_eq!(m.pause_events(), 4);

        m.record_protocol_violation();
        let s = m.snapshot();
        assert_eq!(s.peak_in_flight, 3);
        assert_eq!(s.peak_queued_bytes, 4096);
        assert_eq!(s.protocol_violations, 1);
        assert!(s.to_json().contains("\"peak_in_flight\":3"));
        assert!(format!("{m:?}").contains("in_flight"));
    }

    #[test]
    fn bulk_metrics_track_bytes_resumes_and_peak_buffer() {
        let b = BulkMetrics::new();
        b.record_chunk_sent(1 << 20, (1 << 20) + 32);
        b.record_chunk_sent(512, 512 + 32);
        b.record_chunk_landed(1 << 20);
        b.record_resume(3);
        assert_eq!(b.bytes_sent(), (1 << 20) + 512);
        assert_eq!(b.chunks_sent(), 2);
        assert_eq!(b.bytes_landed(), 1 << 20);
        assert_eq!(b.chunks_landed(), 1);
        assert_eq!(b.resumed_chunks(), 3);
        assert_eq!(
            b.peak_chunk_bytes(),
            (1 << 20) + 32,
            "peak keeps the largest buffer, not the last"
        );
        let s = b.snapshot();
        assert_eq!(s.chunks_sent, 2);
        assert!(s.to_json().contains("\"peak_chunk_bytes\":1048608"));
        assert!(format!("{b:?}").contains("bytes_sent"));
    }
}
