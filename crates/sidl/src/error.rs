//! Errors and source positions for the SIDL toolchain.

use std::fmt;

/// A half-open source region `(line, column)`-addressed, 1-based, as
/// reported in compiler diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl Span {
    /// Creates a span at the given line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error from lexing, parsing, semantic analysis, or dynamic
/// invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum SidlError {
    /// Lexical error (bad character, unterminated comment/string).
    Lex {
        /// Where the error begins.
        span: Span,
        /// What went wrong.
        message: String,
    },
    /// Syntax error with what was expected and what was found.
    Parse {
        /// Where the error begins.
        span: Span,
        /// What was expected and what was found.
        message: String,
    },
    /// Semantic error (unknown type, inheritance violation, ...).
    Sema {
        /// The declaration the error is attached to.
        span: Span,
        /// The violated rule.
        message: String,
    },
    /// Dynamic invocation failure (unknown method, arity/type mismatch).
    Invoke {
        /// What went wrong.
        message: String,
    },
    /// The cross-language exception the SIDL runtime carries (§5: "the IDL
    /// and associated run-time system provide facilities for cross-language
    /// error reporting").
    UserException {
        /// SIDL type name of the exception (e.g. `esi.SolveFailure`).
        exception_type: String,
        /// Human-readable message.
        message: String,
    },
}

impl SidlError {
    /// Convenience constructor for semantic errors.
    pub fn sema(span: Span, message: impl Into<String>) -> Self {
        SidlError::Sema {
            span,
            message: message.into(),
        }
    }

    /// Convenience constructor for invocation errors.
    pub fn invoke(message: impl Into<String>) -> Self {
        SidlError::Invoke {
            message: message.into(),
        }
    }

    /// Convenience constructor for user exceptions crossing the binding.
    pub fn user(exception_type: impl Into<String>, message: impl Into<String>) -> Self {
        SidlError::UserException {
            exception_type: exception_type.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SidlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SidlError::Lex { span, message } => write!(f, "lex error at {span}: {message}"),
            SidlError::Parse { span, message } => write!(f, "parse error at {span}: {message}"),
            SidlError::Sema { span, message } => write!(f, "semantic error at {span}: {message}"),
            SidlError::Invoke { message } => write!(f, "invocation error: {message}"),
            SidlError::UserException {
                exception_type,
                message,
            } => write!(f, "exception {exception_type}: {message}"),
        }
    }
}

impl std::error::Error for SidlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_display_as_line_col() {
        assert_eq!(Span::new(3, 14).to_string(), "3:14");
    }

    #[test]
    fn error_display_includes_position() {
        let e = SidlError::Parse {
            span: Span::new(2, 5),
            message: "expected '{'".into(),
        };
        assert!(e.to_string().contains("2:5"));
        assert!(e.to_string().contains("expected"));
    }

    #[test]
    fn user_exception_carries_type() {
        let e = SidlError::user("esi.SolveFailure", "diverged");
        assert!(e.to_string().contains("esi.SolveFailure"));
    }
}
