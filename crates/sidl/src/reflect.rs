//! Reflection metadata generated from checked SIDL.
//!
//! §5: "Reflection information for every interface and class will be
//! generated automatically by the SIDL compiler based on IDL descriptions.
//! ... components and the associated composition tools and frameworks must
//! discover, query, and execute methods at run time." [`Reflection`] is
//! that generated information: a registry of [`TypeInfo`] records that a
//! framework can query without any compile-time knowledge of the types,
//! mirroring `java.lang.reflect` as the paper prescribes.

use crate::ast::{Mode, QName, Type};
use crate::sema::CheckedModel;
use std::collections::BTreeMap;

/// What kind of SIDL entity a [`TypeInfo`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    /// An interface (may be multiply inherited).
    Interface,
    /// A class (single implementation inheritance).
    Class,
    /// An enum.
    Enum,
}

/// Reflection record for one method.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodInfo {
    /// Method name.
    pub name: String,
    /// Documentation comment, if present in the IDL.
    pub doc: Option<String>,
    /// True for `static` methods.
    pub is_static: bool,
    /// True for `final` methods.
    pub is_final: bool,
    /// Return type.
    pub ret: Type,
    /// `(mode, type, name)` for each formal argument.
    pub args: Vec<(Mode, Type, String)>,
    /// Exception type names.
    pub throws: Vec<String>,
    /// Fully qualified name of the type that declared the method.
    pub declared_in: String,
}

impl MethodInfo {
    /// Number of declared arguments.
    pub fn arity(&self) -> usize {
        self.args.len()
    }
}

/// Reflection record for one type.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeInfo {
    /// Fully qualified name.
    pub qname: String,
    /// Entity kind.
    pub kind: TypeKind,
    /// Documentation comment.
    pub doc: Option<String>,
    /// Every supertype (transitive; interfaces for interfaces, interfaces
    /// plus base classes for classes), fully qualified and sorted.
    pub bases: Vec<String>,
    /// True for abstract classes.
    pub is_abstract: bool,
    /// The complete flattened method set.
    pub methods: Vec<MethodInfo>,
    /// Enum variants (empty unless `kind == Enum`).
    pub variants: Vec<(String, i64)>,
}

impl TypeInfo {
    /// Looks up a method by name.
    pub fn method(&self, name: &str) -> Option<&MethodInfo> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// A queryable registry of reflection records.
#[derive(Debug, Clone, Default)]
pub struct Reflection {
    types: BTreeMap<String, TypeInfo>,
}

impl Reflection {
    /// Generates reflection data from a checked model — the run-time
    /// artifact of the SIDL compiler.
    pub fn from_model(model: &CheckedModel) -> Self {
        let mut types = BTreeMap::new();
        for i in model.interfaces() {
            types.insert(
                i.qname.to_string(),
                TypeInfo {
                    qname: i.qname.to_string(),
                    kind: TypeKind::Interface,
                    doc: i.doc.clone(),
                    bases: i.all_bases.iter().map(QName::to_string).collect(),
                    is_abstract: false,
                    methods: i
                        .all_methods
                        .iter()
                        .map(|(decl, m)| method_info(decl, m))
                        .collect(),
                    variants: vec![],
                },
            );
        }
        for c in model.classes() {
            let mut bases: Vec<String> = c.all_interfaces.iter().map(QName::to_string).collect();
            // Walk the class chain too.
            let mut cur = c.extends.clone();
            while let Some(base) = cur {
                bases.push(base.to_string());
                cur = model.class(&base).and_then(|b| b.extends.clone());
            }
            bases.sort();
            bases.dedup();
            types.insert(
                c.qname.to_string(),
                TypeInfo {
                    qname: c.qname.to_string(),
                    kind: TypeKind::Class,
                    doc: c.doc.clone(),
                    bases,
                    is_abstract: c.is_abstract,
                    methods: c
                        .all_methods
                        .iter()
                        .map(|(decl, m)| method_info(decl, m))
                        .collect(),
                    variants: vec![],
                },
            );
        }
        for e in model.enums() {
            types.insert(
                e.qname.to_string(),
                TypeInfo {
                    qname: e.qname.to_string(),
                    kind: TypeKind::Enum,
                    doc: e.doc.clone(),
                    bases: vec![],
                    is_abstract: false,
                    methods: vec![],
                    variants: e.variants.clone(),
                },
            );
        }
        Reflection { types }
    }

    /// Looks up a type by fully qualified name.
    pub fn type_info(&self, qname: &str) -> Option<&TypeInfo> {
        self.types.get(qname)
    }

    /// All registered types in name order.
    pub fn types(&self) -> impl Iterator<Item = &TypeInfo> {
        self.types.values()
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True when no types are registered.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// String-based subtype query usable without the model (reflexive).
    pub fn is_subtype_of(&self, sub: &str, sup: &str) -> bool {
        sub == sup
            || self
                .types
                .get(sub)
                .is_some_and(|t| t.bases.iter().any(|b| b == sup))
    }

    /// Merges another reflection registry into this one (later wins).
    pub fn merge(&mut self, other: &Reflection) {
        for (k, v) in &other.types {
            self.types.insert(k.clone(), v.clone());
        }
    }
}

fn method_info(decl: &QName, m: &crate::ast::Method) -> MethodInfo {
    MethodInfo {
        name: m.name.clone(),
        doc: m.doc.clone(),
        is_static: m.is_static,
        is_final: m.is_final,
        ret: m.ret.clone(),
        args: m
            .args
            .iter()
            .map(|a| (a.mode, a.ty.clone(), a.name.clone()))
            .collect(),
        throws: m.throws.iter().map(QName::to_string).collect(),
        declared_in: decl.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    const SRC: &str = "
        package esi {
            /** Base object. */
            interface Object { string typeName(); }
            interface Vector extends Object {
                double dot(in Vector y);
            }
            abstract class Base implements-all Object { }
            class Dense extends Base implements-all Vector {
                void fill(in double value);
            }
            enum Status { OK, Fail = 9 }
        }
    ";

    fn reflection() -> Reflection {
        Reflection::from_model(&compile(SRC).unwrap())
    }

    #[test]
    fn registry_contains_every_definition() {
        let r = reflection();
        assert_eq!(r.len(), 5);
        assert_eq!(r.type_info("esi.Vector").unwrap().kind, TypeKind::Interface);
        assert_eq!(r.type_info("esi.Dense").unwrap().kind, TypeKind::Class);
        assert_eq!(r.type_info("esi.Status").unwrap().kind, TypeKind::Enum);
        assert!(r.type_info("esi.Missing").is_none());
    }

    #[test]
    fn flattened_methods_visible_with_declaring_type() {
        let r = reflection();
        let dense = r.type_info("esi.Dense").unwrap();
        let names: Vec<&str> = dense.methods.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"fill"));
        assert!(names.contains(&"dot"));
        assert!(names.contains(&"typeName"));
        let dot = dense.method("dot").unwrap();
        assert_eq!(dot.declared_in, "esi.Vector");
        assert_eq!(dot.arity(), 1);
        assert_eq!(dot.ret, Type::Double);
    }

    #[test]
    fn abstract_flag_and_bases() {
        let r = reflection();
        assert!(r.type_info("esi.Base").unwrap().is_abstract);
        assert!(!r.type_info("esi.Dense").unwrap().is_abstract);
        let dense = r.type_info("esi.Dense").unwrap();
        assert!(dense.bases.contains(&"esi.Base".to_string()));
        assert!(dense.bases.contains(&"esi.Vector".to_string()));
        assert!(dense.bases.contains(&"esi.Object".to_string()));
    }

    #[test]
    fn string_subtype_query() {
        let r = reflection();
        assert!(r.is_subtype_of("esi.Dense", "esi.Vector"));
        assert!(r.is_subtype_of("esi.Vector", "esi.Object"));
        assert!(r.is_subtype_of("esi.Vector", "esi.Vector"));
        assert!(!r.is_subtype_of("esi.Object", "esi.Vector"));
        assert!(!r.is_subtype_of("nope", "esi.Vector"));
    }

    #[test]
    fn enum_variants_exposed() {
        let r = reflection();
        let status = r.type_info("esi.Status").unwrap();
        assert_eq!(
            status.variants,
            vec![("OK".to_string(), 0), ("Fail".to_string(), 9)]
        );
    }

    #[test]
    fn merge_registries() {
        let mut a = reflection();
        let b = Reflection::from_model(
            &compile("package other { interface X { void f(); } }").unwrap(),
        );
        a.merge(&b);
        assert!(a.type_info("other.X").is_some());
        assert!(a.type_info("esi.Vector").is_some());
    }

    #[test]
    fn docs_flow_through() {
        let r = reflection();
        assert_eq!(
            r.type_info("esi.Object").unwrap().doc.as_deref(),
            Some("Base object.")
        );
    }
}
