//! Canonical pretty-printer: AST → SIDL source.
//!
//! The repository (`cca-repository`) stores component interface
//! descriptions as SIDL text, so a deterministic printer is part of the
//! toolchain. `parse(print(ast)) == ast` is property-tested in
//! `parser_roundtrip` below and in the crate's proptest suite.

use crate::ast::*;
use std::fmt::Write;

/// Pretty-prints packages as canonical SIDL source.
pub fn print_packages(packages: &[Package]) -> String {
    let mut out = String::new();
    for (i, p) in packages.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_package(&mut out, p);
    }
    out
}

/// Pretty-prints one package.
pub fn print_package(out: &mut String, p: &Package) {
    let _ = writeln!(out, "package {} version {} {{", p.name, p.version);
    for (i, def) in p.definitions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match def {
            Definition::Interface(iface) => print_interface(out, iface),
            Definition::Class(class) => print_class(out, class),
            Definition::Enum(e) => print_enum(out, e),
        }
    }
    out.push_str("}\n");
}

fn print_doc(out: &mut String, doc: &Option<String>, indent: &str) {
    if let Some(d) = doc {
        let _ = writeln!(out, "{indent}/** {d} */");
    }
}

fn print_interface(out: &mut String, i: &Interface) {
    print_doc(out, &i.doc, "  ");
    let _ = write!(out, "  interface {}", i.name);
    if !i.extends.is_empty() {
        let _ = write!(out, " extends {}", join_qnames(&i.extends));
    }
    out.push_str(" {\n");
    for m in &i.methods {
        print_method(out, m);
    }
    out.push_str("  }\n");
}

fn print_class(out: &mut String, c: &Class) {
    print_doc(out, &c.doc, "  ");
    out.push_str("  ");
    if c.is_abstract {
        out.push_str("abstract ");
    }
    let _ = write!(out, "class {}", c.name);
    if let Some(base) = &c.extends {
        let _ = write!(out, " extends {base}");
    }
    if !c.implements.is_empty() {
        let _ = write!(out, " implements-all {}", join_qnames(&c.implements));
    }
    out.push_str(" {\n");
    for m in &c.methods {
        print_method(out, m);
    }
    out.push_str("  }\n");
}

fn print_enum(out: &mut String, e: &EnumDef) {
    print_doc(out, &e.doc, "  ");
    let _ = writeln!(out, "  enum {} {{", e.name);
    let mut implicit_next = 0i64;
    for (i, (name, value)) in e.variants.iter().enumerate() {
        let trailing = if i + 1 < e.variants.len() { "," } else { "" };
        if *value == implicit_next {
            let _ = writeln!(out, "    {name}{trailing}");
        } else {
            let _ = writeln!(out, "    {name} = {value}{trailing}");
        }
        implicit_next = value + 1;
    }
    out.push_str("  }\n");
}

fn print_method(out: &mut String, m: &Method) {
    print_doc(out, &m.doc, "    ");
    out.push_str("    ");
    if m.is_static {
        out.push_str("static ");
    }
    if m.is_final {
        out.push_str("final ");
    }
    let _ = write!(out, "{} {}(", type_text(&m.ret), m.name);
    for (i, a) in m.args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {} {}", a.mode, type_text(&a.ty), a.name);
    }
    out.push(')');
    if !m.throws.is_empty() {
        let _ = write!(out, " throws {}", join_qnames(&m.throws));
    }
    out.push_str(";\n");
}

fn join_qnames(names: &[QName]) -> String {
    names
        .iter()
        .map(QName::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// SIDL source text of a type expression.
pub fn type_text(ty: &Type) -> String {
    match ty {
        Type::Void => "void".into(),
        Type::Bool => "bool".into(),
        Type::Char => "char".into(),
        Type::Int => "int".into(),
        Type::Long => "long".into(),
        Type::Float => "float".into(),
        Type::Double => "double".into(),
        Type::Fcomplex => "fcomplex".into(),
        Type::Dcomplex => "dcomplex".into(),
        Type::Str => "string".into(),
        Type::Opaque => "opaque".into(),
        Type::Array { elem, rank } => {
            if *rank == 0 {
                format!("array<{}>", type_text(elem))
            } else {
                format!("array<{}, {rank}>", type_text(elem))
            }
        }
        Type::Named(q) => q.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r#"
        package demo version 2.1 {
            /** A base. */
            interface Base { void f(); }
            interface Port extends Base {
                /** Dot product. */
                double dot(in Port y, inout array<double, 2> work) throws demo.Err;
            }
            abstract class Impl implements-all Port {
                static long count();
                final void go();
            }
            class Err { string message(); }
            enum Mode { Fast, Safe = 4, Exact }
        }
    "#;

    #[test]
    fn print_parse_round_trip_is_identity_on_ast() {
        let ast1 = parse(SRC).unwrap();
        let printed = print_packages(&ast1);
        let ast2 = parse(&printed).unwrap();
        // Spans differ; compare everything else via the printer itself.
        assert_eq!(printed, print_packages(&ast2));
        // And structurally (ignoring spans) the key fields agree.
        assert_eq!(ast1.len(), ast2.len());
        assert_eq!(ast1[0].version, ast2[0].version);
        assert_eq!(ast1[0].definitions.len(), ast2[0].definitions.len());
    }

    #[test]
    fn printer_is_idempotent() {
        let ast = parse(SRC).unwrap();
        let once = print_packages(&ast);
        let twice = print_packages(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn type_text_covers_all_types() {
        assert_eq!(type_text(&Type::Dcomplex), "dcomplex");
        assert_eq!(
            type_text(&Type::Array {
                elem: Box::new(Type::Fcomplex),
                rank: 3
            }),
            "array<fcomplex, 3>"
        );
        assert_eq!(
            type_text(&Type::Array {
                elem: Box::new(Type::Int),
                rank: 0
            }),
            "array<int>"
        );
        assert_eq!(type_text(&Type::Named(QName::parse("a.B"))), "a.B");
    }

    #[test]
    fn enum_printing_emits_minimal_values() {
        let ast = parse("package p { enum E { A, B = 7, C } }").unwrap();
        let printed = print_packages(&ast);
        assert!(printed.contains("A,"));
        assert!(printed.contains("B = 7,"));
        // C is 8, which continues implicitly from B.
        assert!(printed.contains("C\n"));
        assert!(!printed.contains("C = 8"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::error::Span;
    use crate::parser::parse;
    use proptest::prelude::*;

    fn arb_ident() -> impl Strategy<Value = String> {
        // Avoid keywords and type names by prefixing.
        "[a-z][a-zA-Z0-9]{0,6}".prop_map(|s| format!("x{s}"))
    }

    fn arb_type() -> impl Strategy<Value = Type> {
        let prim = prop_oneof![
            Just(Type::Bool),
            Just(Type::Char),
            Just(Type::Int),
            Just(Type::Long),
            Just(Type::Float),
            Just(Type::Double),
            Just(Type::Fcomplex),
            Just(Type::Dcomplex),
            Just(Type::Str),
            Just(Type::Opaque),
        ];
        prop_oneof![
            prim.clone(),
            (prim, 0u32..=7).prop_map(|(elem, rank)| Type::Array {
                elem: Box::new(elem),
                rank
            }),
        ]
    }

    fn arb_method() -> impl Strategy<Value = Method> {
        (
            arb_ident(),
            prop_oneof![Just(Type::Void), arb_type()],
            proptest::collection::vec(
                (
                    prop_oneof![Just(Mode::In), Just(Mode::Out), Just(Mode::InOut)],
                    arb_type(),
                    arb_ident(),
                ),
                0..3,
            ),
            any::<bool>(),
        )
            .prop_map(|(name, ret, args, is_final)| Method {
                doc: None,
                is_static: false,
                is_final,
                ret,
                name,
                args: args
                    .into_iter()
                    .enumerate()
                    .map(|(i, (mode, ty, n))| Argument {
                        mode,
                        ty,
                        name: format!("{n}{i}"),
                    })
                    .collect(),
                throws: vec![],
                span: Span::default(),
            })
    }

    fn arb_package() -> impl Strategy<Value = Package> {
        (
            arb_ident(),
            proptest::collection::vec((arb_ident(), arb_method()), 0..4),
        )
            .prop_map(|(pkg, ifaces)| {
                // Unique names via index suffix.
                let definitions = ifaces
                    .into_iter()
                    .enumerate()
                    .map(|(i, (name, mut method))| {
                        method.name = format!("{}{}", method.name, i);
                        Definition::Interface(Interface {
                            doc: None,
                            name: format!("I{name}{i}"),
                            extends: vec![],
                            methods: vec![method],
                            span: Span::default(),
                        })
                    })
                    .collect();
                Package {
                    name: QName(vec![format!("p{pkg}")]),
                    version: "1.0".into(),
                    definitions,
                    span: Span::default(),
                }
            })
    }

    proptest! {
        /// print ∘ parse ∘ print == print (printer is a canonical form).
        #[test]
        fn print_parse_print_is_stable(pkg in arb_package()) {
            let once = print_packages(std::slice::from_ref(&pkg));
            let reparsed = parse(&once).unwrap();
            let twice = print_packages(&reparsed);
            prop_assert_eq!(once, twice);
        }

        /// Parsing the printed form reproduces the AST modulo spans.
        #[test]
        fn printed_ast_round_trips_structurally(pkg in arb_package()) {
            let printed = print_packages(std::slice::from_ref(&pkg));
            let back = parse(&printed).unwrap();
            prop_assert_eq!(back.len(), 1);
            prop_assert_eq!(&back[0].name, &pkg.name);
            prop_assert_eq!(back[0].definitions.len(), pkg.definitions.len());
            for (a, b) in pkg.definitions.iter().zip(&back[0].definitions) {
                let (Definition::Interface(ia), Definition::Interface(ib)) = (a, b) else {
                    prop_assert!(false, "definition kind changed");
                    unreachable!()
                };
                prop_assert_eq!(&ia.name, &ib.name);
                prop_assert_eq!(ia.methods.len(), ib.methods.len());
                for (ma, mb) in ia.methods.iter().zip(&ib.methods) {
                    prop_assert_eq!(ma.signature(), mb.signature());
                    prop_assert_eq!(ma.is_final, mb.is_final);
                }
            }
        }
    }
}
