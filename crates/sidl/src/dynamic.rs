//! Dynamic method invocation over reflection metadata.
//!
//! §5: "We are developing SIDL support for reflection and dynamic method
//! invocation ... Interface information for dynamically loaded components
//! is often unavailable at compile time; thus, components and the
//! associated composition tools and frameworks must discover, query, and
//! execute methods at run time."
//!
//! [`DynValue`] is the boxed any-SIDL-value type; [`DynObject`] is the
//! dynamic receiver; [`invoke_checked`] validates a call against a
//! [`MethodInfo`] before dispatching — the run-time half of the SIDL
//! compiler's reflection story (benchmarked against static stubs in E5).

use crate::ast::{Mode, Type};
use crate::error::SidlError;
use crate::reflect::MethodInfo;
use cca_data::{Complex32, Complex64, NdArray};
use std::fmt;
use std::sync::Arc;

/// A dynamically typed SIDL value.
#[derive(Clone)]
pub enum DynValue {
    /// `void` (returns only).
    Void,
    /// `bool`.
    Bool(bool),
    /// `char`.
    Char(char),
    /// `int`.
    Int(i32),
    /// `long`.
    Long(i64),
    /// `float`.
    Float(f32),
    /// `double`.
    Double(f64),
    /// `fcomplex`.
    Fcomplex(Complex32),
    /// `dcomplex`.
    Dcomplex(Complex64),
    /// `string`.
    Str(String),
    /// `opaque` handle.
    Opaque(u64),
    /// `array<double, R>`.
    DoubleArray(NdArray<f64>),
    /// `array<long, R>` (also used for `array<int, R>` at the boundary).
    LongArray(NdArray<i64>),
    /// `array<dcomplex, R>`.
    DcomplexArray(NdArray<Complex64>),
    /// An enum value: `(enum type name, variant value)`.
    Enum(String, i64),
    /// An object reference.
    Object(Arc<dyn DynObject>),
}

impl fmt::Debug for DynValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynValue::Void => write!(f, "Void"),
            DynValue::Bool(v) => write!(f, "Bool({v})"),
            DynValue::Char(v) => write!(f, "Char({v:?})"),
            DynValue::Int(v) => write!(f, "Int({v})"),
            DynValue::Long(v) => write!(f, "Long({v})"),
            DynValue::Float(v) => write!(f, "Float({v})"),
            DynValue::Double(v) => write!(f, "Double({v})"),
            DynValue::Fcomplex(v) => write!(f, "Fcomplex({v})"),
            DynValue::Dcomplex(v) => write!(f, "Dcomplex({v})"),
            DynValue::Str(v) => write!(f, "Str({v:?})"),
            DynValue::Opaque(v) => write!(f, "Opaque({v:#x})"),
            DynValue::DoubleArray(a) => write!(f, "DoubleArray(extents {:?})", a.extents()),
            DynValue::LongArray(a) => write!(f, "LongArray(extents {:?})", a.extents()),
            DynValue::DcomplexArray(a) => {
                write!(f, "DcomplexArray(extents {:?})", a.extents())
            }
            DynValue::Enum(t, v) => write!(f, "Enum({t}, {v})"),
            DynValue::Object(o) => write!(f, "Object({})", o.sidl_type()),
        }
    }
}

impl DynValue {
    /// The SIDL type-family name of this value (for diagnostics).
    pub fn kind_name(&self) -> &'static str {
        match self {
            DynValue::Void => "void",
            DynValue::Bool(_) => "bool",
            DynValue::Char(_) => "char",
            DynValue::Int(_) => "int",
            DynValue::Long(_) => "long",
            DynValue::Float(_) => "float",
            DynValue::Double(_) => "double",
            DynValue::Fcomplex(_) => "fcomplex",
            DynValue::Dcomplex(_) => "dcomplex",
            DynValue::Str(_) => "string",
            DynValue::Opaque(_) => "opaque",
            DynValue::DoubleArray(_) => "array<double>",
            DynValue::LongArray(_) => "array<long>",
            DynValue::DcomplexArray(_) => "array<dcomplex>",
            DynValue::Enum(_, _) => "enum",
            DynValue::Object(_) => "object",
        }
    }

    /// True if this value can be passed where `ty` is expected. Arrays
    /// match on element family; declared-rank arrays additionally require a
    /// matching runtime rank; named types accept enums and objects (the
    /// precise subtype check needs reflection and lives in the framework).
    pub fn conforms_to(&self, ty: &Type) -> bool {
        match (self, ty) {
            (DynValue::Bool(_), Type::Bool)
            | (DynValue::Char(_), Type::Char)
            | (DynValue::Int(_), Type::Int)
            | (DynValue::Long(_), Type::Long)
            | (DynValue::Float(_), Type::Float)
            | (DynValue::Double(_), Type::Double)
            | (DynValue::Fcomplex(_), Type::Fcomplex)
            | (DynValue::Dcomplex(_), Type::Dcomplex)
            | (DynValue::Str(_), Type::Str)
            | (DynValue::Opaque(_), Type::Opaque) => true,
            // Widening conversions the bindings perform implicitly.
            (DynValue::Int(_), Type::Long)
            | (DynValue::Int(_), Type::Double)
            | (DynValue::Long(_), Type::Double)
            | (DynValue::Float(_), Type::Double) => true,
            (DynValue::DoubleArray(a), Type::Array { elem, rank }) => {
                matches!(**elem, Type::Double) && (*rank == 0 || a.rank() == *rank as usize)
            }
            (DynValue::LongArray(a), Type::Array { elem, rank }) => {
                matches!(**elem, Type::Long | Type::Int)
                    && (*rank == 0 || a.rank() == *rank as usize)
            }
            (DynValue::DcomplexArray(a), Type::Array { elem, rank }) => {
                matches!(**elem, Type::Dcomplex) && (*rank == 0 || a.rank() == *rank as usize)
            }
            (DynValue::Enum(_, _), Type::Named(_)) => true,
            (DynValue::Object(_), Type::Named(_)) => true,
            _ => false,
        }
    }

    /// Extracts a `double`, accepting the widening `int`/`long`/`float`
    /// conversions SIDL bindings perform.
    pub fn as_double(&self) -> Result<f64, SidlError> {
        match self {
            DynValue::Double(v) => Ok(*v),
            DynValue::Float(v) => Ok(*v as f64),
            DynValue::Int(v) => Ok(*v as f64),
            DynValue::Long(v) => Ok(*v as f64),
            other => Err(SidlError::invoke(format!(
                "expected double, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Extracts a `long` (accepting `int`).
    pub fn as_long(&self) -> Result<i64, SidlError> {
        match self {
            DynValue::Long(v) => Ok(*v),
            DynValue::Int(v) => Ok(*v as i64),
            other => Err(SidlError::invoke(format!(
                "expected long, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Extracts a `bool`.
    pub fn as_bool(&self) -> Result<bool, SidlError> {
        match self {
            DynValue::Bool(v) => Ok(*v),
            other => Err(SidlError::invoke(format!(
                "expected bool, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Extracts a string slice.
    pub fn as_str(&self) -> Result<&str, SidlError> {
        match self {
            DynValue::Str(v) => Ok(v),
            other => Err(SidlError::invoke(format!(
                "expected string, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Extracts a double array.
    pub fn as_double_array(&self) -> Result<&NdArray<f64>, SidlError> {
        match self {
            DynValue::DoubleArray(a) => Ok(a),
            other => Err(SidlError::invoke(format!(
                "expected array<double>, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Extracts an object reference.
    pub fn as_object(&self) -> Result<&Arc<dyn DynObject>, SidlError> {
        match self {
            DynValue::Object(o) => Ok(o),
            other => Err(SidlError::invoke(format!(
                "expected object, got {}",
                other.kind_name()
            ))),
        }
    }
}

/// A dynamically invocable object — what a SIDL skeleton wraps a concrete
/// implementation in. Implementations are free to use interior mutability;
/// the CCA framework shares `DynObject`s across components.
pub trait DynObject: Send + Sync {
    /// The object's fully qualified SIDL type name.
    fn sidl_type(&self) -> &str;

    /// Invokes `method` with positional arguments.
    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError>;
}

/// Validates an argument list against reflection metadata, then dispatches.
/// This is the "checked" dynamic-invocation path a composition tool uses
/// when it only knows the interface at run time.
pub fn invoke_checked(
    target: &dyn DynObject,
    info: &MethodInfo,
    args: Vec<DynValue>,
) -> Result<DynValue, SidlError> {
    if args.len() != info.args.len() {
        return Err(SidlError::invoke(format!(
            "{}.{} expects {} arguments, got {}",
            target.sidl_type(),
            info.name,
            info.args.len(),
            args.len()
        )));
    }
    for (i, (arg, (mode, ty, name))) in args.iter().zip(&info.args).enumerate() {
        // `out` arguments are produced by the callee; callers pass a
        // placeholder that we do not type-check.
        if *mode == Mode::Out {
            continue;
        }
        if !arg.conforms_to(ty) {
            return Err(SidlError::invoke(format!(
                "argument {i} ('{name}') of {}.{}: expected {ty:?}, got {}",
                target.sidl_type(),
                info.name,
                arg.kind_name()
            )));
        }
    }
    target.invoke(&info.name, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::reflect::Reflection;
    use parking_lot_stub::Mutex;

    /// Tiny Mutex stand-in so this crate does not need parking_lot just for
    /// a test; std's poisoning is irrelevant here.
    mod parking_lot_stub {
        pub use std::sync::Mutex;
    }

    /// A hand-written skeleton for the `esi.Counter` class below — exactly
    /// what `codegen_rust` emits, but spelled out for the unit test.
    struct Counter {
        value: Mutex<i64>,
    }

    impl DynObject for Counter {
        fn sidl_type(&self) -> &str {
            "esi.Counter"
        }

        fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
            match method {
                "add" => {
                    let delta = args[0].as_long()?;
                    let mut v = self.value.lock().unwrap();
                    *v += delta;
                    Ok(DynValue::Long(*v))
                }
                "reset" => {
                    *self.value.lock().unwrap() = 0;
                    Ok(DynValue::Void)
                }
                "fail" => Err(SidlError::user("esi.CounterError", "requested failure")),
                other => Err(SidlError::invoke(format!("unknown method '{other}'"))),
            }
        }
    }

    const SRC: &str = "
        package esi {
            class CounterError { string message(); }
            class Counter {
                long add(in long delta);
                void reset();
                void fail() throws esi.CounterError;
            }
        }
    ";

    fn counter_info(method: &str) -> crate::reflect::MethodInfo {
        let r = Reflection::from_model(&compile(SRC).unwrap());
        r.type_info("esi.Counter")
            .unwrap()
            .method(method)
            .unwrap()
            .clone()
    }

    #[test]
    fn checked_invocation_happy_path() {
        let c = Counter {
            value: Mutex::new(0),
        };
        let add = counter_info("add");
        let r = invoke_checked(&c, &add, vec![DynValue::Long(5)]).unwrap();
        assert!(matches!(r, DynValue::Long(5)));
        let r = invoke_checked(&c, &add, vec![DynValue::Long(2)]).unwrap();
        assert!(matches!(r, DynValue::Long(7)));
    }

    #[test]
    fn arity_checked() {
        let c = Counter {
            value: Mutex::new(0),
        };
        let add = counter_info("add");
        let e = invoke_checked(&c, &add, vec![]).unwrap_err();
        assert!(e.to_string().contains("expects 1 arguments"));
    }

    #[test]
    fn argument_types_checked() {
        let c = Counter {
            value: Mutex::new(0),
        };
        let add = counter_info("add");
        let e = invoke_checked(&c, &add, vec![DynValue::Str("nope".into())]).unwrap_err();
        assert!(e.to_string().contains("expected"));
        // int widens to long, as bindings allow.
        assert!(invoke_checked(&c, &add, vec![DynValue::Int(3)]).is_ok());
    }

    #[test]
    fn user_exceptions_propagate() {
        let c = Counter {
            value: Mutex::new(0),
        };
        let fail = counter_info("fail");
        let e = invoke_checked(&c, &fail, vec![]).unwrap_err();
        assert!(matches!(e, SidlError::UserException { .. }));
        assert!(e.to_string().contains("esi.CounterError"));
    }

    #[test]
    fn conformance_rules() {
        use crate::ast::QName;
        let d = DynValue::Double(1.0);
        assert!(d.conforms_to(&Type::Double));
        assert!(!d.conforms_to(&Type::Int));
        let arr = DynValue::DoubleArray(NdArray::zeros(&[2, 2]));
        assert!(arr.conforms_to(&Type::Array {
            elem: Box::new(Type::Double),
            rank: 2
        }));
        assert!(arr.conforms_to(&Type::Array {
            elem: Box::new(Type::Double),
            rank: 0
        }));
        assert!(!arr.conforms_to(&Type::Array {
            elem: Box::new(Type::Double),
            rank: 1
        }));
        assert!(!arr.conforms_to(&Type::Array {
            elem: Box::new(Type::Int),
            rank: 2
        }));
        let obj = DynValue::Object(Arc::new(Counter {
            value: Mutex::new(0),
        }));
        assert!(obj.conforms_to(&Type::Named(QName::parse("esi.Counter"))));
        assert!(DynValue::Enum("esi.Status".into(), 1)
            .conforms_to(&Type::Named(QName::parse("esi.Status"))));
    }

    #[test]
    fn accessors_and_widening() {
        assert_eq!(DynValue::Int(4).as_double().unwrap(), 4.0);
        assert_eq!(DynValue::Float(0.5).as_double().unwrap(), 0.5);
        assert_eq!(DynValue::Int(4).as_long().unwrap(), 4);
        assert!(DynValue::Bool(true).as_bool().unwrap());
        assert_eq!(DynValue::Str("x".into()).as_str().unwrap(), "x");
        assert!(DynValue::Void.as_double().is_err());
        assert!(DynValue::Double(1.0).as_str().is_err());
        assert!(DynValue::Double(1.0).as_object().is_err());
    }

    #[test]
    fn debug_rendering_is_total() {
        let values: Vec<DynValue> = vec![
            DynValue::Void,
            DynValue::Bool(true),
            DynValue::Char('x'),
            DynValue::Int(1),
            DynValue::Long(2),
            DynValue::Float(0.5),
            DynValue::Double(0.25),
            DynValue::Fcomplex(Complex32::new(1.0, 2.0)),
            DynValue::Dcomplex(Complex64::new(1.0, 2.0)),
            DynValue::Str("s".into()),
            DynValue::Opaque(0xdead),
            DynValue::DoubleArray(NdArray::zeros(&[2])),
            DynValue::LongArray(NdArray::zeros(&[2])),
            DynValue::DcomplexArray(NdArray::zeros(&[2])),
            DynValue::Enum("E".into(), 3),
            DynValue::Object(Arc::new(Counter {
                value: Mutex::new(0),
            })),
        ];
        for v in values {
            assert!(!format!("{v:?}").is_empty());
        }
    }
}
