//! Recursive-descent parser producing the SIDL AST.
//!
//! Grammar (EBNF):
//!
//! ```text
//! file       := package*
//! package    := doc? 'package' qname ('version' VERSION)? '{' definition* '}'
//! definition := interface | class | enum
//! interface  := doc? 'interface' IDENT ('extends' qlist)? '{' method* '}'
//! class      := doc? 'abstract'? 'class' IDENT ('extends' qname)?
//!               (('implements' | 'implements-all') qlist)? '{' method* '}'
//! enum       := doc? 'enum' IDENT '{' IDENT ('=' INT)? (',' ...)* ','? '}'
//! method     := doc? 'static'? 'final'? type IDENT '(' arglist? ')'
//!               ('throws' qlist)? ';'
//! arglist    := arg (',' arg)*
//! arg        := ('in'|'out'|'inout') type IDENT
//! type       := PRIMITIVE | 'array' '<' type (',' INT)? '>' | qname
//! qlist      := qname (',' qname)*
//! qname      := IDENT ('.' IDENT)*
//! ```

use crate::ast::*;
use crate::error::{SidlError, Span};
use crate::lexer::{lex, SpannedTok, Tok};

/// Parses a SIDL source string into its packages.
pub fn parse(source: &str) -> Result<Vec<Package>, SidlError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut packages = Vec::new();
    while !p.at_eof() {
        packages.push(p.package()?);
    }
    if packages.is_empty() {
        return Err(SidlError::Parse {
            span: Span::new(1, 1),
            message: "source contains no packages".into(),
        });
    }
    Ok(packages)
}

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &SpannedTok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().tok, Tok::Eof)
    }

    fn advance(&mut self) -> SpannedTok {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> SidlError {
        SidlError::Parse {
            span: self.peek().span,
            message: message.into(),
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<SpannedTok, SidlError> {
        if &self.peek().tok == want {
            Ok(self.advance())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                want.describe(),
                self.peek().tok.describe()
            )))
        }
    }

    /// Consumes a keyword (a specific identifier).
    fn expect_kw(&mut self, kw: &str) -> Result<SpannedTok, SidlError> {
        match &self.peek().tok {
            Tok::Ident(s) if s == kw => Ok(self.advance()),
            other => Err(self.error(format!(
                "expected keyword '{kw}', found {}",
                other.describe()
            ))),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(&self.peek().tok, Tok::Ident(s) if s == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<(String, Span), SidlError> {
        match self.peek().tok.clone() {
            Tok::Ident(s) => {
                let span = self.peek().span;
                self.advance();
                Ok((s, span))
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn doc(&mut self) -> Option<String> {
        if let Tok::DocComment(text) = self.peek().tok.clone() {
            self.advance();
            Some(text)
        } else {
            None
        }
    }

    fn qname(&mut self) -> Result<QName, SidlError> {
        let (first, _) = self.ident()?;
        let mut parts = vec![first];
        while matches!(self.peek().tok, Tok::Dot) {
            self.advance();
            let (next, _) = self.ident()?;
            parts.push(next);
        }
        Ok(QName(parts))
    }

    fn qlist(&mut self) -> Result<Vec<QName>, SidlError> {
        let mut names = vec![self.qname()?];
        while matches!(self.peek().tok, Tok::Comma) {
            self.advance();
            names.push(self.qname()?);
        }
        Ok(names)
    }

    fn package(&mut self) -> Result<Package, SidlError> {
        let _doc = self.doc();
        let kw = self.expect_kw("package")?;
        let name = self.qname()?;
        let version = if self.eat_kw("version") {
            match self.peek().tok.clone() {
                Tok::Version(v) => {
                    self.advance();
                    v
                }
                Tok::Int(v) => {
                    self.advance();
                    v.to_string()
                }
                other => {
                    return Err(self.error(format!(
                        "expected version literal, found {}",
                        other.describe()
                    )))
                }
            }
        } else {
            "1.0".to_string()
        };
        self.expect(&Tok::LBrace)?;
        let mut definitions = Vec::new();
        while !matches!(self.peek().tok, Tok::RBrace) {
            definitions.push(self.definition()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(Package {
            name,
            version,
            definitions,
            span: kw.span,
        })
    }

    fn definition(&mut self) -> Result<Definition, SidlError> {
        let doc = self.doc();
        match &self.peek().tok {
            Tok::Ident(s) if s == "interface" => self.interface(doc).map(Definition::Interface),
            Tok::Ident(s) if s == "class" || s == "abstract" => {
                self.class(doc).map(Definition::Class)
            }
            Tok::Ident(s) if s == "enum" => self.enum_def(doc).map(Definition::Enum),
            other => Err(self.error(format!(
                "expected 'interface', 'class', 'abstract', or 'enum', found {}",
                other.describe()
            ))),
        }
    }

    fn interface(&mut self, doc: Option<String>) -> Result<Interface, SidlError> {
        let kw = self.expect_kw("interface")?;
        let (name, _) = self.ident()?;
        let extends = if self.eat_kw("extends") {
            self.qlist()?
        } else {
            Vec::new()
        };
        self.expect(&Tok::LBrace)?;
        let mut methods = Vec::new();
        while !matches!(self.peek().tok, Tok::RBrace) {
            methods.push(self.method()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(Interface {
            doc,
            name,
            extends,
            methods,
            span: kw.span,
        })
    }

    fn class(&mut self, doc: Option<String>) -> Result<Class, SidlError> {
        let is_abstract = self.eat_kw("abstract");
        let kw = self.expect_kw("class")?;
        let (name, _) = self.ident()?;
        let extends = if self.eat_kw("extends") {
            Some(self.qname()?)
        } else {
            None
        };
        let implements = if self.eat_kw("implements-all") || self.eat_kw("implements") {
            self.qlist()?
        } else {
            Vec::new()
        };
        self.expect(&Tok::LBrace)?;
        let mut methods = Vec::new();
        while !matches!(self.peek().tok, Tok::RBrace) {
            methods.push(self.method()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(Class {
            doc,
            is_abstract,
            name,
            extends,
            implements,
            methods,
            span: kw.span,
        })
    }

    fn enum_def(&mut self, doc: Option<String>) -> Result<EnumDef, SidlError> {
        let kw = self.expect_kw("enum")?;
        let (name, _) = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut variants: Vec<(String, i64)> = Vec::new();
        let mut next_value = 0i64;
        loop {
            if matches!(self.peek().tok, Tok::RBrace) {
                break;
            }
            let (vname, vspan) = self.ident()?;
            let value = if matches!(self.peek().tok, Tok::Eq) {
                self.advance();
                match self.peek().tok.clone() {
                    Tok::Int(v) => {
                        self.advance();
                        v
                    }
                    other => {
                        return Err(self.error(format!(
                            "expected integer enum value, found {}",
                            other.describe()
                        )))
                    }
                }
            } else {
                next_value
            };
            if variants.iter().any(|(n, _)| n == &vname) {
                return Err(SidlError::Parse {
                    span: vspan,
                    message: format!("duplicate enum variant '{vname}'"),
                });
            }
            variants.push((vname, value));
            next_value = value + 1;
            if matches!(self.peek().tok, Tok::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&Tok::RBrace)?;
        if variants.is_empty() {
            return Err(SidlError::Parse {
                span: kw.span,
                message: format!("enum '{name}' has no variants"),
            });
        }
        Ok(EnumDef {
            doc,
            name,
            variants,
            span: kw.span,
        })
    }

    fn method(&mut self) -> Result<Method, SidlError> {
        let doc = self.doc();
        let mut is_static = false;
        let mut is_final = false;
        loop {
            if !is_static && self.eat_kw("static") {
                is_static = true;
            } else if !is_final && self.eat_kw("final") {
                is_final = true;
            } else {
                break;
            }
        }
        let ret = self.ty()?;
        let (name, span) = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if !matches!(self.peek().tok, Tok::RParen) {
            loop {
                args.push(self.arg()?);
                if matches!(self.peek().tok, Tok::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let throws = if self.eat_kw("throws") {
            self.qlist()?
        } else {
            Vec::new()
        };
        self.expect(&Tok::Semi)?;
        Ok(Method {
            doc,
            is_static,
            is_final,
            ret,
            name,
            args,
            throws,
            span,
        })
    }

    fn arg(&mut self) -> Result<Argument, SidlError> {
        let mode = match &self.peek().tok {
            Tok::Ident(s) if s == "in" => Mode::In,
            Tok::Ident(s) if s == "out" => Mode::Out,
            Tok::Ident(s) if s == "inout" => Mode::InOut,
            other => {
                return Err(self.error(format!(
                    "expected parameter mode 'in'/'out'/'inout', found {}",
                    other.describe()
                )))
            }
        };
        self.advance();
        let span = self.peek().span;
        let ty = self.ty()?;
        if ty == Type::Void {
            return Err(SidlError::Parse {
                span,
                message: "arguments cannot have type void".into(),
            });
        }
        let (name, _) = self.ident()?;
        Ok(Argument { mode, ty, name })
    }

    fn ty(&mut self) -> Result<Type, SidlError> {
        let t = match &self.peek().tok {
            Tok::Ident(s) => match s.as_str() {
                "void" => Some(Type::Void),
                "bool" => Some(Type::Bool),
                "char" => Some(Type::Char),
                "int" => Some(Type::Int),
                "long" => Some(Type::Long),
                "float" => Some(Type::Float),
                "double" => Some(Type::Double),
                "fcomplex" => Some(Type::Fcomplex),
                "dcomplex" => Some(Type::Dcomplex),
                "string" => Some(Type::Str),
                "opaque" => Some(Type::Opaque),
                _ => None,
            },
            _ => None,
        };
        if let Some(prim) = t {
            self.advance();
            return Ok(prim);
        }
        if matches!(&self.peek().tok, Tok::Ident(s) if s == "array") {
            let span = self.peek().span;
            self.advance();
            self.expect(&Tok::Lt)?;
            let elem = self.ty()?;
            if !elem.can_be_element() {
                return Err(SidlError::Parse {
                    span,
                    message: format!("type {elem:?} cannot be an array element"),
                });
            }
            let rank = if matches!(self.peek().tok, Tok::Comma) {
                self.advance();
                match self.peek().tok.clone() {
                    Tok::Int(v) if (1..=7).contains(&v) => {
                        self.advance();
                        v as u32
                    }
                    Tok::Int(v) => {
                        return Err(SidlError::Parse {
                            span,
                            message: format!("array rank must be 1..=7, got {v}"),
                        })
                    }
                    other => {
                        return Err(
                            self.error(format!("expected array rank, found {}", other.describe()))
                        )
                    }
                }
            } else {
                0
            };
            self.expect(&Tok::Gt)?;
            return Ok(Type::Array {
                elem: Box::new(elem),
                rank,
            });
        }
        // Fall through: user-defined type name.
        Ok(Type::Named(self.qname()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ESI_EXAMPLE: &str = r#"
        /** The ESI-style solver interfaces from the paper's section 2.2. */
        package esi version 1.0 {
            /** Base object with reference semantics. */
            interface Object {
                string typeName();
            }

            enum Status { OK, Diverged = 10, Breakdown }

            /** A distributed vector. */
            interface Vector extends Object {
                double dot(in Vector y) throws esi.SolveFailure;
                void axpy(in double alpha, in Vector x);
                array<double, 1> local();
            }

            interface Operator extends Object {
                void apply(in Vector x, out Vector y);
            }

            /** Preconditioner is both an Operator and tunable. */
            interface Preconditioner extends Operator, Object {
                void setup(in Operator a);
            }

            abstract class SolverBase implements-all Operator {
                static int instances();
            }

            class CgSolver extends SolverBase implements-all Preconditioner {
                final void solve(in Operator a, in Vector b, inout Vector x);
            }
        }
    "#;

    #[test]
    fn parses_full_example() {
        let pkgs = parse(ESI_EXAMPLE).unwrap();
        assert_eq!(pkgs.len(), 1);
        let p = &pkgs[0];
        assert_eq!(p.name.to_string(), "esi");
        assert_eq!(p.version, "1.0");
        assert_eq!(p.definitions.len(), 7);
        match &p.definitions[0] {
            Definition::Interface(i) => {
                assert_eq!(i.name, "Object");
                assert!(i.doc.as_deref().unwrap().contains("reference semantics"));
            }
            other => panic!("expected interface, got {other:?}"),
        }
    }

    #[test]
    fn enum_values_continue_from_explicit() {
        let pkgs = parse(ESI_EXAMPLE).unwrap();
        let Definition::Enum(e) = &pkgs[0].definitions[1] else {
            panic!()
        };
        assert_eq!(
            e.variants,
            vec![
                ("OK".to_string(), 0),
                ("Diverged".to_string(), 10),
                ("Breakdown".to_string(), 11)
            ]
        );
    }

    #[test]
    fn method_details_parsed() {
        let pkgs = parse(ESI_EXAMPLE).unwrap();
        let Definition::Interface(v) = &pkgs[0].definitions[2] else {
            panic!()
        };
        assert_eq!(v.name, "Vector");
        assert_eq!(v.extends, vec![QName::parse("Object")]);
        let dot = &v.methods[0];
        assert_eq!(dot.name, "dot");
        assert_eq!(dot.ret, Type::Double);
        assert_eq!(dot.args.len(), 1);
        assert_eq!(dot.args[0].mode, Mode::In);
        assert_eq!(dot.throws, vec![QName::parse("esi.SolveFailure")]);
        let local = &v.methods[2];
        assert_eq!(
            local.ret,
            Type::Array {
                elem: Box::new(Type::Double),
                rank: 1
            }
        );
    }

    #[test]
    fn class_modifiers_and_inheritance() {
        let pkgs = parse(ESI_EXAMPLE).unwrap();
        let Definition::Class(base) = &pkgs[0].definitions[5] else {
            panic!()
        };
        assert!(base.is_abstract);
        assert!(base.extends.is_none());
        assert_eq!(base.implements, vec![QName::parse("Operator")]);
        assert!(base.methods[0].is_static);
        let Definition::Class(cg) = &pkgs[0].definitions[6] else {
            panic!()
        };
        assert!(!cg.is_abstract);
        assert_eq!(cg.extends, Some(QName::parse("SolverBase")));
        assert!(cg.methods[0].is_final);
        assert_eq!(cg.methods[0].args[2].mode, Mode::InOut);
    }

    #[test]
    fn multiple_packages() {
        let src = "package a { interface X {} } package b version 2.0 { class Y {} }";
        let pkgs = parse(src).unwrap();
        assert_eq!(pkgs.len(), 2);
        assert_eq!(pkgs[1].version, "2.0");
    }

    #[test]
    fn default_version() {
        let pkgs = parse("package p { }").unwrap();
        assert_eq!(pkgs[0].version, "1.0");
    }

    #[test]
    fn dynamic_rank_array() {
        let pkgs = parse("package p { interface I { array<int> any(); } }").unwrap();
        let Definition::Interface(i) = &pkgs[0].definitions[0] else {
            panic!()
        };
        assert_eq!(
            i.methods[0].ret,
            Type::Array {
                elem: Box::new(Type::Int),
                rank: 0
            }
        );
    }

    #[test]
    fn syntax_errors_have_positions() {
        let err = parse("package p {\n  interface {\n}").unwrap_err();
        match err {
            SidlError::Parse { span, .. } => assert_eq!(span.line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_constructs() {
        assert!(parse("").is_err());
        assert!(parse("package p { enum E { } }").is_err());
        assert!(parse("package p { enum E { A, A } }").is_err());
        assert!(parse("package p { interface I { void f(in void x); } }").is_err());
        assert!(parse("package p { interface I { array<array<int,1>,1> f(); } }").is_err());
        assert!(parse("package p { interface I { array<int,9> f(); } }").is_err());
        assert!(parse("package p { interface I { double f(double x); } }").is_err());
        assert!(parse("package p { interface I { double f() }").is_err());
    }

    #[test]
    fn trailing_comma_in_enum() {
        let pkgs = parse("package p { enum E { A, B, } }").unwrap();
        let Definition::Enum(e) = &pkgs[0].definitions[0] else {
            panic!()
        };
        assert_eq!(e.variants.len(), 2);
    }
}
