//! Abstract syntax tree for SIDL sources.
//!
//! The shape follows the Babel-era language: a file holds packages; a
//! package holds interfaces, classes, and enums; interfaces support
//! multiple inheritance; classes extend at most one class and implement
//! any number of interfaces (§5's "multiple interface inheritance and
//! single implementation inheritance", the Java-style object model).

use crate::error::Span;
use std::fmt;

/// A dot-separated qualified name, e.g. `esi.Vector`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName(pub Vec<String>);

impl QName {
    /// Builds a qualified name from dot-separated text.
    pub fn parse(text: &str) -> Self {
        QName(text.split('.').map(str::to_string).collect())
    }

    /// The final (unqualified) segment.
    pub fn leaf(&self) -> &str {
        self.0.last().map(String::as_str).unwrap_or("")
    }

    /// True if the name has a package prefix.
    pub fn is_qualified(&self) -> bool {
        self.0.len() > 1
    }

    /// Returns this name qualified under `package` if it is not already.
    pub fn qualified_in(&self, package: &str) -> QName {
        if self.is_qualified() {
            self.clone()
        } else {
            let mut parts: Vec<String> = package.split('.').map(str::to_string).collect();
            parts.extend(self.0.iter().cloned());
            QName(parts)
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join("."))
    }
}

/// A SIDL type expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// No value (return type only).
    Void,
    /// Boolean.
    Bool,
    /// Single character.
    Char,
    /// 32-bit signed integer.
    Int,
    /// 64-bit signed integer.
    Long,
    /// Single-precision real.
    Float,
    /// Double-precision real.
    Double,
    /// Single-precision complex — a SIDL primitive the paper adds.
    Fcomplex,
    /// Double-precision complex — a SIDL primitive the paper adds.
    Dcomplex,
    /// UTF-8 string.
    Str,
    /// An opaque pointer-sized handle.
    Opaque,
    /// `array<elem, rank>`: dynamically dimensioned multidimensional array.
    /// `rank == 0` means "any rank at runtime".
    Array {
        /// Element type (primitives or named types).
        elem: Box<Type>,
        /// Declared rank; 0 leaves the rank dynamic.
        rank: u32,
    },
    /// A user-defined interface, class, or enum, by (possibly unqualified)
    /// name; resolution happens in `sema`.
    Named(QName),
}

impl Type {
    /// True for types that may appear as array elements.
    pub fn can_be_element(&self) -> bool {
        !matches!(self, Type::Void | Type::Array { .. })
    }
}

/// Parameter passing mode. SIDL distinguishes the three CORBA-style modes;
/// `out`/`inout` are how Fortran-style subroutines surface results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Caller supplies the value; callee must not modify it.
    In,
    /// Callee produces the value.
    Out,
    /// Caller supplies a value the callee may replace.
    InOut,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::In => write!(f, "in"),
            Mode::Out => write!(f, "out"),
            Mode::InOut => write!(f, "inout"),
        }
    }
}

/// One formal argument of a method.
#[derive(Debug, Clone, PartialEq)]
pub struct Argument {
    /// Passing mode.
    pub mode: Mode,
    /// Declared type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
}

/// A method declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Method {
    /// Documentation comment (`/** ... */`), if present.
    pub doc: Option<String>,
    /// True for `static` methods (no receiver).
    pub is_static: bool,
    /// True for `final` methods (may not be overridden).
    pub is_final: bool,
    /// Return type.
    pub ret: Type,
    /// Method name.
    pub name: String,
    /// Formal arguments in declaration order.
    pub args: Vec<Argument>,
    /// Exception types the method may raise.
    pub throws: Vec<QName>,
    /// Source location of the declaration.
    pub span: Span,
}

impl Method {
    /// A structural signature key: name plus argument modes/types plus
    /// return type. Two inherited methods *collide* iff they share a name
    /// but differ in signature (SIDL has no overloading).
    pub fn signature(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(s, "{:?} {}(", self.ret, self.name);
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{} {:?}", a.mode, a.ty);
        }
        s.push(')');
        s
    }
}

/// An interface definition (multiple inheritance allowed).
#[derive(Debug, Clone, PartialEq)]
pub struct Interface {
    /// Documentation comment.
    pub doc: Option<String>,
    /// Unqualified name.
    pub name: String,
    /// Base interfaces.
    pub extends: Vec<QName>,
    /// Declared methods.
    pub methods: Vec<Method>,
    /// Source location.
    pub span: Span,
}

/// A class definition (single implementation inheritance).
#[derive(Debug, Clone, PartialEq)]
pub struct Class {
    /// Documentation comment.
    pub doc: Option<String>,
    /// True for `abstract` classes, which may leave methods unimplemented.
    pub is_abstract: bool,
    /// Unqualified name.
    pub name: String,
    /// At most one base class.
    pub extends: Option<QName>,
    /// Implemented interfaces (the `implements-all` form: every interface
    /// method is pulled in without redeclaration).
    pub implements: Vec<QName>,
    /// Methods declared (or overridden) directly on the class.
    pub methods: Vec<Method>,
    /// Source location.
    pub span: Span,
}

/// An enum definition.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDef {
    /// Documentation comment.
    pub doc: Option<String>,
    /// Unqualified name.
    pub name: String,
    /// `(name, value)` pairs; explicit values are preserved, implicit ones
    /// continue from the previous value as in C.
    pub variants: Vec<(String, i64)>,
    /// Source location.
    pub span: Span,
}

/// A top-level definition inside a package.
#[derive(Debug, Clone, PartialEq)]
pub enum Definition {
    /// An interface.
    Interface(Interface),
    /// A class.
    Class(Class),
    /// An enum.
    Enum(EnumDef),
}

impl Definition {
    /// The definition's unqualified name.
    pub fn name(&self) -> &str {
        match self {
            Definition::Interface(i) => &i.name,
            Definition::Class(c) => &c.name,
            Definition::Enum(e) => &e.name,
        }
    }

    /// The definition's source span.
    pub fn span(&self) -> Span {
        match self {
            Definition::Interface(i) => i.span,
            Definition::Class(c) => c.span,
            Definition::Enum(e) => e.span,
        }
    }
}

/// A SIDL package: a named scope with a version.
#[derive(Debug, Clone, PartialEq)]
pub struct Package {
    /// Dot-separated package name.
    pub name: QName,
    /// Version string (`version 1.0`), defaulting to "1.0".
    pub version: String,
    /// The package's definitions in source order.
    pub definitions: Vec<Definition>,
    /// Source location.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qname_parse_and_display() {
        let q = QName::parse("esi.solvers.Vector");
        assert_eq!(q.leaf(), "Vector");
        assert!(q.is_qualified());
        assert_eq!(q.to_string(), "esi.solvers.Vector");
        let u = QName::parse("Vector");
        assert!(!u.is_qualified());
        assert_eq!(
            u.qualified_in("esi.solvers").to_string(),
            "esi.solvers.Vector"
        );
        // Already-qualified names are untouched.
        assert_eq!(q.qualified_in("other").to_string(), "esi.solvers.Vector");
    }

    #[test]
    fn method_signature_ignores_arg_names_but_not_types() {
        let m1 = Method {
            doc: None,
            is_static: false,
            is_final: false,
            ret: Type::Double,
            name: "dot".into(),
            args: vec![Argument {
                mode: Mode::In,
                ty: Type::Named(QName::parse("Vector")),
                name: "y".into(),
            }],
            throws: vec![],
            span: Span::default(),
        };
        let mut m2 = m1.clone();
        m2.args[0].name = "other".into();
        assert_eq!(m1.signature(), m2.signature());
        let mut m3 = m1.clone();
        m3.args[0].ty = Type::Double;
        assert_ne!(m1.signature(), m3.signature());
        let mut m4 = m1.clone();
        m4.ret = Type::Float;
        assert_ne!(m1.signature(), m4.signature());
    }

    #[test]
    fn array_element_rules() {
        assert!(Type::Double.can_be_element());
        assert!(!Type::Void.can_be_element());
        assert!(!Type::Array {
            elem: Box::new(Type::Int),
            rank: 1
        }
        .can_be_element());
    }
}
