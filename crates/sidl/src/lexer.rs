//! Hand-written lexer for SIDL sources.
//!
//! Produces a token stream with source positions. Doc comments
//! (`/** ... */`) are preserved as tokens so the parser can attach them to
//! the following definition; line (`//`) and block (`/* */`) comments are
//! skipped.

use crate::error::{SidlError, Span};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (the parser distinguishes keywords).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (used for versions like `"1.0"`; bare `1.0` is also
    /// accepted as a version via `Version`).
    Version(String),
    /// A doc comment's text, with the comment markers stripped.
    DocComment(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

impl Tok {
    /// Human-readable token description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier '{s}'"),
            Tok::Int(v) => format!("integer {v}"),
            Tok::Version(v) => format!("version '{v}'"),
            Tok::DocComment(_) => "doc comment".into(),
            Tok::LBrace => "'{'".into(),
            Tok::RBrace => "'}'".into(),
            Tok::LParen => "'('".into(),
            Tok::RParen => "')'".into(),
            Tok::Lt => "'<'".into(),
            Tok::Gt => "'>'".into(),
            Tok::Comma => "','".into(),
            Tok::Semi => "';'".into(),
            Tok::Dot => "'.'".into(),
            Tok::Eq => "'='".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it begins.
    pub span: Span,
}

/// Tokenizes a complete SIDL source string.
pub fn lex(source: &str) -> Result<Vec<SpannedTok>, SidlError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let span = Span::new(line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => bump!(),
            '/' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        bump!();
                    }
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    let is_doc = i + 2 < bytes.len() && bytes[i + 2] == b'*'
                        // `/**/` is an empty plain comment, not a doc comment
                        && !(i + 3 < bytes.len() && bytes[i + 3] == b'/');
                    let start = i;
                    bump!();
                    bump!();
                    let mut closed = false;
                    while i + 1 < bytes.len() {
                        if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                            bump!();
                            bump!();
                            closed = true;
                            break;
                        }
                        bump!();
                    }
                    if !closed {
                        return Err(SidlError::Lex {
                            span,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if is_doc {
                        let text = &source[start + 3..i - 2];
                        let cleaned = text
                            .lines()
                            .map(|l| l.trim().trim_start_matches('*').trim())
                            .filter(|l| !l.is_empty())
                            .collect::<Vec<_>>()
                            .join(" ");
                        out.push(SpannedTok {
                            tok: Tok::DocComment(cleaned),
                            span,
                        });
                    }
                } else {
                    return Err(SidlError::Lex {
                        span,
                        message: "unexpected '/'".into(),
                    });
                }
            }
            '"' => {
                bump!();
                let start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\n' {
                        return Err(SidlError::Lex {
                            span,
                            message: "unterminated string".into(),
                        });
                    }
                    bump!();
                }
                if i >= bytes.len() {
                    return Err(SidlError::Lex {
                        span,
                        message: "unterminated string".into(),
                    });
                }
                let text = source[start..i].to_string();
                bump!(); // closing quote
                out.push(SpannedTok {
                    tok: Tok::Version(text),
                    span,
                });
            }
            '{' | '}' | '(' | ')' | '<' | '>' | ',' | ';' | '.' | '=' => {
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '<' => Tok::Lt,
                    '>' => Tok::Gt,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    '.' => Tok::Dot,
                    _ => Tok::Eq,
                };
                out.push(SpannedTok { tok, span });
                bump!();
            }
            _ if c.is_ascii_digit() || c == '-' => {
                let start = i;
                if c == '-' {
                    bump!();
                    if i >= bytes.len() || !bytes[i].is_ascii_digit() {
                        return Err(SidlError::Lex {
                            span,
                            message: "expected digits after '-'".into(),
                        });
                    }
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                // Version-looking literal: digits '.' digits ('.' digits)*
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                        bump!();
                    }
                    out.push(SpannedTok {
                        tok: Tok::Version(source[start..i].to_string()),
                        span,
                    });
                } else {
                    let text = &source[start..i];
                    let value: i64 = text.parse().map_err(|_| SidlError::Lex {
                        span,
                        message: format!("invalid integer literal '{text}'"),
                    })?;
                    out.push(SpannedTok {
                        tok: Tok::Int(value),
                        span,
                    });
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'-')
                {
                    // Allow '-' inside identifiers only for the
                    // `implements-all` keyword.
                    if bytes[i] == b'-' && !source[start..i].ends_with("implements") {
                        break;
                    }
                    bump!();
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(source[start..i].to_string()),
                    span,
                });
            }
            _ => {
                return Err(SidlError::Lex {
                    span,
                    message: format!("unexpected character '{c}'"),
                });
            }
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        span: Span::new(line, col),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn punctuation_and_idents() {
        assert_eq!(
            toks("interface Foo { }"),
            vec![
                Tok::Ident("interface".into()),
                Tok::Ident("Foo".into()),
                Tok::LBrace,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn integers_and_negatives() {
        assert_eq!(toks("= 42"), vec![Tok::Eq, Tok::Int(42), Tok::Eof]);
        assert_eq!(toks("= -7"), vec![Tok::Eq, Tok::Int(-7), Tok::Eof]);
    }

    #[test]
    fn versions_bare_and_quoted() {
        assert_eq!(
            toks("version 1.0"),
            vec![
                Tok::Ident("version".into()),
                Tok::Version("1.0".into()),
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("version \"2.4.1\""),
            vec![
                Tok::Ident("version".into()),
                Tok::Version("2.4.1".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_doc_comments_kept() {
        let src = "// line\n/* block */ /** The doc.\n * More. */ interface X {}";
        let ts = toks(src);
        assert_eq!(ts[0], Tok::DocComment("The doc. More.".into()));
        assert_eq!(ts[1], Tok::Ident("interface".into()));
    }

    #[test]
    fn empty_block_comment_is_not_doc() {
        assert_eq!(toks("/**/ x"), vec![Tok::Ident("x".into()), Tok::Eof]);
    }

    #[test]
    fn implements_all_is_one_token() {
        assert_eq!(
            toks("implements-all Vector"),
            vec![
                Tok::Ident("implements-all".into()),
                Tok::Ident("Vector".into()),
                Tok::Eof
            ]
        );
        // But a '-' elsewhere is not part of an identifier: it begins a
        // (here malformed) numeric literal.
        assert!(lex("foo-bar").is_err());
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].span, Span::new(1, 1));
        assert_eq!(ts[1].span, Span::new(2, 3));
    }

    #[test]
    fn lex_errors() {
        assert!(matches!(lex("$"), Err(SidlError::Lex { .. })));
        assert!(matches!(lex("/* open"), Err(SidlError::Lex { .. })));
        assert!(matches!(lex("\"open"), Err(SidlError::Lex { .. })));
        assert!(matches!(lex("- x"), Err(SidlError::Lex { .. })));
        assert!(matches!(lex("/ x"), Err(SidlError::Lex { .. })));
    }

    #[test]
    fn array_type_tokens() {
        assert_eq!(
            toks("array<double,2>"),
            vec![
                Tok::Ident("array".into()),
                Tok::Lt,
                Tok::Ident("double".into()),
                Tok::Comma,
                Tok::Int(2),
                Tok::Gt,
                Tok::Eof
            ]
        );
    }
}
