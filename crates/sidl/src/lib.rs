#![warn(missing_docs)]
//! # cca-sidl — the Scientific Interface Definition Language
//!
//! §5 of the paper: "The Scientific Interface Definition Language is a
//! high-level description language used to specify the calling interfaces
//! of software components and framework APIs in the component architecture."
//!
//! This crate is a complete SIDL toolchain:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — parse `.sidl` sources into an AST.
//!   The grammar follows the Babel-era language: packages, interfaces with
//!   **multiple interface inheritance**, classes with **single
//!   implementation inheritance**, enums, `in`/`out`/`inout` parameter
//!   modes, `throws` clauses, and the scientific primitive types the paper
//!   calls out — `fcomplex`/`dcomplex` and `array<T, R>` with runtime rank.
//! * [`sema`] — symbol resolution and the object-model rules of §5:
//!   inheritance cycles, method-collision detection across multiply
//!   inherited interfaces, override-signature checking, abstract-method
//!   accounting for classes.
//! * [`reflect`] — the reflection metadata the paper says "will be
//!   generated automatically by the SIDL compiler based on IDL
//!   descriptions": runtime-queryable type, method, and argument info.
//! * [`dynamic`] — dynamic method invocation over [`dynamic::DynValue`],
//!   modelled on `java.lang.reflect` as the paper prescribes.
//! * [`codegen_rust`] / [`codegen_c`] — proxy/stub generation ("these
//!   definitions can serve as input to a proxy generator that generates
//!   component stubs", §4). The Rust backend emits a trait per interface
//!   plus a Babel-style vtable stub whose call path costs the 2–3
//!   indirections the paper estimates; the C backend emits an IOR-style
//!   header of function-pointer tables, demonstrating the cross-language
//!   mapping.
//! * [`fmt`] — a canonical pretty-printer, giving parse/print round-trip
//!   guarantees (property-tested).

pub mod ast;
pub mod codegen_c;
pub mod codegen_f77;
pub mod codegen_rust;
pub mod dynamic;
pub mod error;
pub mod fmt;
pub mod lexer;
pub mod parser;
pub mod reflect;
pub mod sema;

pub use ast::{
    Argument, Class, Definition, EnumDef, Interface, Method, Mode, Package, QName, Type,
};
pub use dynamic::{invoke_checked, DynObject, DynValue};
pub use error::{SidlError, Span};
pub use parser::parse;
pub use reflect::{MethodInfo, Reflection, TypeInfo, TypeKind};
pub use sema::{check, CheckedModel};

/// Parses and semantically checks a SIDL source string in one step.
pub fn compile(source: &str) -> Result<CheckedModel, SidlError> {
    let packages = parse(source)?;
    check(&packages)
}
