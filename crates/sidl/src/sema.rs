//! Semantic analysis: symbol resolution and object-model checking.
//!
//! Enforces the §5 object model: "object-oriented semantics with an
//! inheritance model similar to that of Java with multiple interface
//! inheritance and single implementation inheritance", including the rules
//! that make the Equation Solver Interface's polymorphism well-defined —
//! diamond inheritance is fine when signatures agree, but a name inherited
//! with two different signatures is rejected (SIDL has no overloading).
//!
//! The output, [`CheckedModel`], is the compiler's middle end: the
//! reflection generator, proxy generators, and the CCA port-compatibility
//! check ([`CheckedModel::is_subtype_of`]) all consume it.

use crate::ast::*;
use crate::error::{SidlError, Span};
use std::collections::{BTreeMap, BTreeSet};

/// A fully resolved interface: its own methods plus the flattened method
/// set inherited from every base interface (deduplicated).
#[derive(Debug, Clone)]
pub struct ResolvedInterface {
    /// Fully qualified name.
    pub qname: QName,
    /// Documentation comment.
    pub doc: Option<String>,
    /// Direct base interfaces (fully qualified).
    pub extends: Vec<QName>,
    /// All base interfaces, transitively (fully qualified, sorted).
    pub all_bases: Vec<QName>,
    /// Methods declared directly on this interface.
    pub own_methods: Vec<Method>,
    /// The complete flattened method set: `(declaring interface, method)`,
    /// in a deterministic order (own methods first, then inherited).
    pub all_methods: Vec<(QName, Method)>,
}

/// A fully resolved class.
#[derive(Debug, Clone)]
pub struct ResolvedClass {
    /// Fully qualified name.
    pub qname: QName,
    /// Documentation comment.
    pub doc: Option<String>,
    /// True for abstract classes (not instantiable).
    pub is_abstract: bool,
    /// Base class, fully qualified.
    pub extends: Option<QName>,
    /// Directly implemented interfaces, fully qualified.
    pub implements: Vec<QName>,
    /// Every interface the class satisfies, transitively (sorted).
    pub all_interfaces: Vec<QName>,
    /// Methods declared directly on the class.
    pub own_methods: Vec<Method>,
    /// The complete flattened method set the class exposes.
    pub all_methods: Vec<(QName, Method)>,
}

/// A resolved enum (unchanged from the AST apart from qualification).
#[derive(Debug, Clone)]
pub struct ResolvedEnum {
    /// Fully qualified name.
    pub qname: QName,
    /// Documentation comment.
    pub doc: Option<String>,
    /// `(name, value)` pairs.
    pub variants: Vec<(String, i64)>,
}

/// The checked, resolved model of one or more SIDL packages.
#[derive(Debug, Clone, Default)]
pub struct CheckedModel {
    interfaces: BTreeMap<QName, ResolvedInterface>,
    classes: BTreeMap<QName, ResolvedClass>,
    enums: BTreeMap<QName, ResolvedEnum>,
    packages: Vec<(QName, String)>,
}

impl CheckedModel {
    /// Looks up an interface by fully qualified name.
    pub fn interface(&self, qname: &QName) -> Option<&ResolvedInterface> {
        self.interfaces.get(qname)
    }

    /// Looks up a class by fully qualified name.
    pub fn class(&self, qname: &QName) -> Option<&ResolvedClass> {
        self.classes.get(qname)
    }

    /// Looks up an enum by fully qualified name.
    pub fn enum_def(&self, qname: &QName) -> Option<&ResolvedEnum> {
        self.enums.get(qname)
    }

    /// All interfaces, sorted by qualified name.
    pub fn interfaces(&self) -> impl Iterator<Item = &ResolvedInterface> {
        self.interfaces.values()
    }

    /// All classes, sorted by qualified name.
    pub fn classes(&self) -> impl Iterator<Item = &ResolvedClass> {
        self.classes.values()
    }

    /// All enums, sorted by qualified name.
    pub fn enums(&self) -> impl Iterator<Item = &ResolvedEnum> {
        self.enums.values()
    }

    /// `(package name, version)` pairs in source order.
    pub fn packages(&self) -> &[(QName, String)] {
        &self.packages
    }

    /// The CCA port-compatibility relation (§6: "port compatibility is
    /// defined as object-oriented type compatibility of the port
    /// interfaces"): true iff `sub` *is-a* `sup`. Both interfaces and
    /// classes may appear on the left; only interfaces and classes on the
    /// right. Reflexive.
    pub fn is_subtype_of(&self, sub: &QName, sup: &QName) -> bool {
        if sub == sup {
            return true;
        }
        if let Some(i) = self.interfaces.get(sub) {
            return i.all_bases.contains(sup);
        }
        if let Some(c) = self.classes.get(sub) {
            if c.all_interfaces.contains(sup) {
                return true;
            }
            let mut cur = c.extends.clone();
            while let Some(base) = cur {
                if &base == sup {
                    return true;
                }
                cur = self.classes.get(&base).and_then(|b| b.extends.clone());
            }
        }
        false
    }

    /// Classes that satisfy the given interface (useful for repository
    /// queries: "find me components providing this port type").
    pub fn implementors(&self, interface: &QName) -> Vec<&QName> {
        self.classes
            .values()
            .filter(|c| c.all_interfaces.contains(interface))
            .map(|c| &c.qname)
            .collect()
    }
}

/// Raw (pre-resolution) symbol.
enum RawSym<'a> {
    Interface(&'a Interface, String),
    Class(&'a Class, String),
    Enum(&'a EnumDef),
}

/// Checks parsed packages and produces the resolved model.
pub fn check(packages: &[Package]) -> Result<CheckedModel, SidlError> {
    // Pass 1: symbol table of fully qualified names.
    let mut raw: BTreeMap<QName, RawSym<'_>> = BTreeMap::new();
    let mut model = CheckedModel::default();
    for pkg in packages {
        let pkg_name = pkg.name.to_string();
        model.packages.push((pkg.name.clone(), pkg.version.clone()));
        for def in &pkg.definitions {
            let qname = QName::parse(def.name()).qualified_in(&pkg_name);
            if raw.contains_key(&qname) {
                return Err(SidlError::sema(
                    def.span(),
                    format!("duplicate definition of '{qname}'"),
                ));
            }
            let sym = match def {
                Definition::Interface(i) => RawSym::Interface(i, pkg_name.clone()),
                Definition::Class(c) => RawSym::Class(c, pkg_name.clone()),
                Definition::Enum(e) => RawSym::Enum(e),
            };
            raw.insert(qname, sym);
        }
    }

    let resolver = Resolver { raw: &raw };

    // Pass 2: resolve enums (trivial) and interfaces (flatten inheritance).
    for (qname, sym) in &raw {
        match sym {
            RawSym::Enum(e) => {
                model.enums.insert(
                    qname.clone(),
                    ResolvedEnum {
                        qname: qname.clone(),
                        doc: e.doc.clone(),
                        variants: e.variants.clone(),
                    },
                );
            }
            RawSym::Interface(_, _) => {
                let resolved = resolver.resolve_interface(qname, &mut Vec::new())?;
                model.interfaces.insert(qname.clone(), resolved);
            }
            RawSym::Class(_, _) => {}
        }
    }

    // Pass 3: resolve classes (needs interfaces resolved).
    for (qname, sym) in &raw {
        if let RawSym::Class(c, pkg) = sym {
            let resolved = resolver.resolve_class(qname, c, pkg, &model, &mut Vec::new())?;
            model.classes.insert(qname.clone(), resolved);
        }
    }

    // Pass 4: validate every method's referenced types (args, returns,
    // throws) against the symbol table.
    for pkg in packages {
        let pkg_name = pkg.name.to_string();
        for def in &pkg.definitions {
            let methods: &[Method] = match def {
                Definition::Interface(i) => &i.methods,
                Definition::Class(c) => &c.methods,
                Definition::Enum(_) => &[],
            };
            for m in methods {
                resolver.check_type(&m.ret, &pkg_name, m.span)?;
                for a in &m.args {
                    resolver.check_type(&a.ty, &pkg_name, m.span)?;
                    if a.ty == Type::Void {
                        return Err(SidlError::sema(
                            m.span,
                            format!("argument '{}' of '{}' cannot be void", a.name, m.name),
                        ));
                    }
                }
                for t in &m.throws {
                    let q = t.qualified_in(&pkg_name);
                    if !raw.contains_key(&q) {
                        return Err(SidlError::sema(
                            m.span,
                            format!("unknown exception type '{t}' in throws clause"),
                        ));
                    }
                }
            }
        }
    }

    Ok(model)
}

struct Resolver<'a> {
    raw: &'a BTreeMap<QName, RawSym<'a>>,
}

impl<'a> Resolver<'a> {
    /// Resolves a possibly-unqualified reference from within `pkg`.
    fn lookup(&self, name: &QName, pkg: &str, span: Span) -> Result<QName, SidlError> {
        let local = name.qualified_in(pkg);
        if self.raw.contains_key(&local) {
            return Ok(local);
        }
        if name.is_qualified() && self.raw.contains_key(name) {
            return Ok(name.clone());
        }
        Err(SidlError::sema(
            span,
            format!("unknown type '{name}' (looked up as '{local}')"),
        ))
    }

    fn check_type(&self, ty: &Type, pkg: &str, span: Span) -> Result<(), SidlError> {
        match ty {
            Type::Named(q) => {
                self.lookup(q, pkg, span)?;
                Ok(())
            }
            Type::Array { elem, .. } => self.check_type(elem, pkg, span),
            _ => Ok(()),
        }
    }

    /// Rewrites a method's `Named` types and `throws` entries to fully
    /// qualified names, resolving from the declaring package. Codegen and
    /// reflection then never see package-relative names.
    fn qualify_method(&self, m: &Method, pkg: &str) -> Result<Method, SidlError> {
        fn qualify_type(
            r: &Resolver<'_>,
            ty: &Type,
            pkg: &str,
            span: Span,
        ) -> Result<Type, SidlError> {
            Ok(match ty {
                Type::Named(q) => Type::Named(r.lookup(q, pkg, span)?),
                Type::Array { elem, rank } => Type::Array {
                    elem: Box::new(qualify_type(r, elem, pkg, span)?),
                    rank: *rank,
                },
                other => other.clone(),
            })
        }
        let mut out = m.clone();
        out.ret = qualify_type(self, &m.ret, pkg, m.span)?;
        for a in &mut out.args {
            a.ty = qualify_type(self, &a.ty, pkg, m.span)?;
        }
        for t in &mut out.throws {
            *t = self.lookup(t, pkg, m.span).map_err(|_| {
                SidlError::sema(
                    m.span,
                    format!("unknown exception type '{t}' in throws clause"),
                )
            })?;
        }
        Ok(out)
    }

    fn interface_parts(&self, qname: &QName) -> Option<(&'a Interface, &str)> {
        match self.raw.get(qname) {
            Some(RawSym::Interface(i, pkg)) => Some((i, pkg.as_str())),
            _ => None,
        }
    }

    fn resolve_interface(
        &self,
        qname: &QName,
        stack: &mut Vec<QName>,
    ) -> Result<ResolvedInterface, SidlError> {
        let (iface, pkg) = self.interface_parts(qname).ok_or_else(|| {
            SidlError::sema(Span::default(), format!("'{qname}' is not an interface"))
        })?;
        if stack.contains(qname) {
            return Err(SidlError::sema(
                iface.span,
                format!(
                    "inheritance cycle involving '{qname}': {}",
                    stack
                        .iter()
                        .map(QName::to_string)
                        .collect::<Vec<_>>()
                        .join(" -> ")
                ),
            ));
        }
        stack.push(qname.clone());

        check_no_overloads(&iface.methods, &iface.name)?;
        for m in &iface.methods {
            if m.is_static {
                return Err(SidlError::sema(
                    m.span,
                    format!("interface method '{}' cannot be static", m.name),
                ));
            }
        }
        let own_methods: Vec<Method> = iface
            .methods
            .iter()
            .map(|m| self.qualify_method(m, pkg))
            .collect::<Result<_, _>>()?;

        let mut extends = Vec::new();
        let mut all_bases = BTreeSet::new();
        // name -> (declaring qname, method) for collision checking.
        let mut merged: BTreeMap<String, (QName, Method)> = BTreeMap::new();
        for m in &own_methods {
            merged.insert(m.name.clone(), (qname.clone(), m.clone()));
        }

        let mut inherited: Vec<(QName, Method)> = Vec::new();
        for base_ref in &iface.extends {
            let base_q = self.lookup(base_ref, pkg, iface.span)?;
            if self.interface_parts(&base_q).is_none() {
                return Err(SidlError::sema(
                    iface.span,
                    format!(
                        "interface '{}' cannot extend non-interface '{base_q}'",
                        iface.name
                    ),
                ));
            }
            let base = self.resolve_interface(&base_q, stack)?;
            extends.push(base_q.clone());
            all_bases.insert(base_q.clone());
            for b in &base.all_bases {
                all_bases.insert(b.clone());
            }
            for (decl, m) in base.all_methods {
                match merged.get(&m.name) {
                    Some((prev_decl, prev)) => {
                        if prev.signature() != m.signature() {
                            return Err(SidlError::sema(
                                iface.span,
                                format!(
                                    "method collision in '{qname}': '{}' inherited from \
                                     '{decl}' conflicts with declaration in '{prev_decl}' \
                                     (SIDL has no overloading)",
                                    m.name
                                ),
                            ));
                        }
                        if prev_decl == qname && prev.signature() == m.signature() && m.is_final {
                            return Err(SidlError::sema(
                                iface.span,
                                format!(
                                    "'{qname}' overrides final method '{}' from '{decl}'",
                                    m.name
                                ),
                            ));
                        }
                        // Diamond: identical signature, keep the first.
                    }
                    None => {
                        merged.insert(m.name.clone(), (decl.clone(), m.clone()));
                        inherited.push((decl, m));
                    }
                }
            }
        }
        stack.pop();

        let mut all_methods: Vec<(QName, Method)> = own_methods
            .iter()
            .map(|m| (qname.clone(), m.clone()))
            .collect();
        all_methods.extend(inherited);

        Ok(ResolvedInterface {
            qname: qname.clone(),
            doc: iface.doc.clone(),
            extends,
            all_bases: all_bases.into_iter().collect(),
            own_methods,
            all_methods,
        })
    }

    #[allow(clippy::only_used_in_recursion)] // `model` threads through the base-class recursion
    fn resolve_class(
        &self,
        qname: &QName,
        class: &Class,
        pkg: &str,
        model: &CheckedModel,
        stack: &mut Vec<QName>,
    ) -> Result<ResolvedClass, SidlError> {
        if stack.contains(qname) {
            return Err(SidlError::sema(
                class.span,
                format!("class inheritance cycle involving '{qname}'"),
            ));
        }
        stack.push(qname.clone());

        check_no_overloads(&class.methods, &class.name)?;
        let own_methods: Vec<Method> = class
            .methods
            .iter()
            .map(|m| self.qualify_method(m, pkg))
            .collect::<Result<_, _>>()?;

        // Resolve base class chain.
        let mut all_interfaces: BTreeSet<QName> = BTreeSet::new();
        let mut merged: BTreeMap<String, (QName, Method)> = BTreeMap::new();
        for m in &own_methods {
            merged.insert(m.name.clone(), (qname.clone(), m.clone()));
        }
        let mut inherited: Vec<(QName, Method)> = Vec::new();

        let extends = match &class.extends {
            Some(base_ref) => {
                let base_q = self.lookup(base_ref, pkg, class.span)?;
                let (base_class, base_pkg) = match self.raw.get(&base_q) {
                    Some(RawSym::Class(c, p)) => (*c, p.as_str()),
                    _ => {
                        return Err(SidlError::sema(
                            class.span,
                            format!("class '{}' cannot extend non-class '{base_q}'", class.name),
                        ))
                    }
                };
                let base = self.resolve_class(&base_q, base_class, base_pkg, model, stack)?;
                for i in &base.all_interfaces {
                    all_interfaces.insert(i.clone());
                }
                for (decl, m) in base.all_methods {
                    match merged.get(&m.name) {
                        Some((prev_decl, prev)) => {
                            if prev.signature() != m.signature() {
                                return Err(SidlError::sema(
                                    class.span,
                                    format!(
                                        "'{qname}.{}' conflicts with inherited method from \
                                         '{decl}' (different signature; no overloading)",
                                        m.name
                                    ),
                                ));
                            }
                            if m.is_final && prev_decl == qname {
                                return Err(SidlError::sema(
                                    class.span,
                                    format!(
                                        "'{qname}' overrides final method '{}' from '{decl}'",
                                        m.name
                                    ),
                                ));
                            }
                            // Legal override: keep the derived declaration.
                        }
                        None => {
                            merged.insert(m.name.clone(), (decl.clone(), m.clone()));
                            inherited.push((decl, m));
                        }
                    }
                }
                Some(base_q)
            }
            None => None,
        };

        // Resolve implemented interfaces.
        let mut implements = Vec::new();
        for iface_ref in &class.implements {
            let iface_q = self.lookup(iface_ref, pkg, class.span)?;
            let iface = self
                .resolve_interface(&iface_q, &mut Vec::new())
                .map_err(|_| {
                    SidlError::sema(
                        class.span,
                        format!(
                            "class '{}' cannot implement non-interface '{iface_q}'",
                            class.name
                        ),
                    )
                })?;
            implements.push(iface_q.clone());
            all_interfaces.insert(iface_q.clone());
            for b in &iface.all_bases {
                all_interfaces.insert(b.clone());
            }
            for (decl, m) in iface.all_methods {
                match merged.get(&m.name) {
                    Some((_, prev)) => {
                        if prev.signature() != m.signature() {
                            return Err(SidlError::sema(
                                class.span,
                                format!(
                                    "'{qname}.{}' does not match the signature required by \
                                     interface '{decl}'",
                                    m.name
                                ),
                            ));
                        }
                        // Class (or base) implements the interface method.
                    }
                    None => {
                        // implements-all semantics: pull the method in.
                        merged.insert(m.name.clone(), (decl.clone(), m.clone()));
                        inherited.push((decl, m));
                    }
                }
            }
        }
        stack.pop();

        let mut all_methods: Vec<(QName, Method)> = own_methods
            .iter()
            .map(|m| (qname.clone(), m.clone()))
            .collect();
        all_methods.extend(inherited);

        Ok(ResolvedClass {
            qname: qname.clone(),
            doc: class.doc.clone(),
            is_abstract: class.is_abstract,
            extends,
            implements,
            all_interfaces: all_interfaces.into_iter().collect(),
            own_methods,
            all_methods,
        })
    }
}

fn check_no_overloads(methods: &[Method], owner: &str) -> Result<(), SidlError> {
    let mut seen = BTreeSet::new();
    for m in methods {
        if !seen.insert(&m.name) {
            return Err(SidlError::sema(
                m.span,
                format!(
                    "duplicate method '{}' in '{owner}' (SIDL has no overloading)",
                    m.name
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn model(src: &str) -> CheckedModel {
        check(&parse(src).unwrap()).unwrap()
    }

    fn err(src: &str) -> String {
        check(&parse(src).unwrap()).unwrap_err().to_string()
    }

    #[test]
    fn resolves_cross_package_references() {
        let m = model(
            "package a { interface X { void f(); } } \
             package b { interface Y extends a.X { void g(); } }",
        );
        let y = m.interface(&QName::parse("b.Y")).unwrap();
        assert_eq!(y.extends, vec![QName::parse("a.X")]);
        assert_eq!(y.all_methods.len(), 2);
    }

    #[test]
    fn flattens_diamond_inheritance() {
        let m = model(
            "package p {
                interface Root { string name(); }
                interface A extends Root { void fa(); }
                interface B extends Root { void fb(); }
                interface D extends A, B { void fd(); }
            }",
        );
        let d = m.interface(&QName::parse("p.D")).unwrap();
        // name() appears once despite two inheritance paths.
        let names: Vec<&str> = d.all_methods.iter().map(|(_, m)| m.name.as_str()).collect();
        assert_eq!(names.iter().filter(|n| **n == "name").count(), 1);
        assert_eq!(d.all_methods.len(), 4);
        assert_eq!(d.all_bases.len(), 3);
    }

    #[test]
    fn signature_conflict_in_multiple_inheritance_rejected() {
        let e = err("package p {
                interface A { void f(in int x); }
                interface B { void f(in double x); }
                interface C extends A, B { }
            }");
        assert!(e.contains("collision"), "{e}");
    }

    #[test]
    fn same_signature_diamond_is_fine() {
        let m = model(
            "package p {
                interface A { void f(in int x); }
                interface B { void f(in int x); }
                interface C extends A, B { }
            }",
        );
        let c = m.interface(&QName::parse("p.C")).unwrap();
        assert_eq!(c.all_methods.len(), 1);
    }

    #[test]
    fn inheritance_cycle_detected() {
        let e = err("package p {
                interface A extends B { }
                interface B extends A { }
            }");
        assert!(e.contains("cycle"), "{e}");
    }

    #[test]
    fn class_cycle_detected() {
        let e = err("package p {
                class A extends B { }
                class B extends A { }
            }");
        assert!(e.contains("cycle"), "{e}");
    }

    #[test]
    fn unknown_types_rejected() {
        assert!(err("package p { interface A extends Nope { } }").contains("unknown type"));
        assert!(err("package p { class C extends Nope { } }").contains("unknown type"));
        assert!(err("package p { interface A { void f(in Mystery m); } }").contains("unknown type"));
        assert!(err("package p { interface A { void f() throws Gone; } }")
            .contains("unknown exception type"));
    }

    #[test]
    fn kind_confusion_rejected() {
        assert!(err("package p { class C { } interface I extends C { } }")
            .contains("cannot extend non-interface"));
        assert!(err("package p { interface I { } class C extends I { } }")
            .contains("cannot extend non-class"));
        assert!(
            err("package p { class D { } class C implements-all D { } }")
                .contains("cannot implement non-interface")
        );
    }

    #[test]
    fn duplicate_definitions_rejected() {
        assert!(err("package p { interface X { } class X { } }").contains("duplicate definition"));
    }

    #[test]
    fn overloading_rejected() {
        assert!(
            err("package p { interface I { void f(); void f(in int x); } }")
                .contains("no overloading")
        );
    }

    #[test]
    fn static_interface_methods_rejected() {
        assert!(err("package p { interface I { static void f(); } }").contains("static"));
    }

    #[test]
    fn implements_all_pulls_methods_into_class() {
        let m = model(
            "package p {
                interface Op { void apply(in double x); }
                interface Pre extends Op { void setup(); }
                class Solver implements-all Pre { void solve(); }
            }",
        );
        let c = m.class(&QName::parse("p.Solver")).unwrap();
        let names: BTreeSet<&str> = c.all_methods.iter().map(|(_, m)| m.name.as_str()).collect();
        assert_eq!(names, ["apply", "setup", "solve"].into_iter().collect());
        assert_eq!(
            c.all_interfaces,
            vec![QName::parse("p.Op"), QName::parse("p.Pre")]
        );
    }

    #[test]
    fn class_override_keeps_derived_declaration() {
        let m = model(
            "package p {
                class Base { /** base doc */ void run(); }
                class Derived extends Base { /** derived doc */ void run(); }
            }",
        );
        let d = m.class(&QName::parse("p.Derived")).unwrap();
        assert_eq!(d.all_methods.len(), 1);
        let (decl, m0) = &d.all_methods[0];
        assert_eq!(decl.to_string(), "p.Derived");
        assert_eq!(m0.doc.as_deref(), Some("derived doc"));
    }

    #[test]
    fn final_method_override_rejected() {
        let e = err("package p {
                class Base { final void run(); }
                class Derived extends Base { void run(); }
            }");
        assert!(e.contains("final"), "{e}");
    }

    #[test]
    fn class_signature_must_match_interface() {
        let e = err("package p {
                interface I { void f(in int x); }
                class C implements-all I { void f(in double x); }
            }");
        assert!(e.contains("signature"), "{e}");
    }

    #[test]
    fn subtyping_relation() {
        let m = model(
            "package p {
                interface Port { }
                interface SolverPort extends Port { }
                class Base { }
                class Cg extends Base implements-all SolverPort { }
            }",
        );
        let q = QName::parse;
        assert!(m.is_subtype_of(&q("p.SolverPort"), &q("p.Port")));
        assert!(m.is_subtype_of(&q("p.Cg"), &q("p.SolverPort")));
        assert!(m.is_subtype_of(&q("p.Cg"), &q("p.Port")));
        assert!(m.is_subtype_of(&q("p.Cg"), &q("p.Base")));
        assert!(m.is_subtype_of(&q("p.Port"), &q("p.Port")));
        assert!(!m.is_subtype_of(&q("p.Port"), &q("p.SolverPort")));
        assert!(!m.is_subtype_of(&q("p.Base"), &q("p.Cg")));
    }

    #[test]
    fn implementors_query() {
        let m = model(
            "package p {
                interface Port { }
                class A implements-all Port { }
                class B { }
                class C implements-all Port { }
            }",
        );
        let found = m.implementors(&QName::parse("p.Port"));
        let names: Vec<String> = found.iter().map(|q| q.to_string()).collect();
        assert_eq!(names, vec!["p.A", "p.C"]);
    }

    #[test]
    fn enums_resolved() {
        let m = model("package p { enum E { X, Y = 5 } }");
        let e = m.enum_def(&QName::parse("p.E")).unwrap();
        assert_eq!(e.variants[1], ("Y".to_string(), 5));
    }

    #[test]
    fn compile_entry_point() {
        let m = crate::compile("package p { interface I { void f(); } }").unwrap();
        assert!(m.interface(&QName::parse("p.I")).is_some());
    }
}
