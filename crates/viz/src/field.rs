//! The `viz.FieldSource` port: how a simulation exposes its fields.

use cca_core::CcaError;
use cca_data::DistArrayDesc;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// SIDL type name of the field-source port.
pub const FIELD_SOURCE_PORT_TYPE: &str = "viz.FieldSource";

/// A provider of named, distributed fields.
///
/// The key design point from §6.3: the provider hands out its
/// *distribution descriptor*, and the consumer — which may be decomposed
/// entirely differently — derives the data movement itself. The provider
/// never learns who is watching.
pub trait FieldSourcePort: Send + Sync {
    /// Names of the available fields.
    fn field_names(&self) -> Vec<String>;

    /// The distribution descriptor of a field.
    fn field_desc(&self, name: &str) -> Result<DistArrayDesc, CcaError>;

    /// This rank's local portion of the field (column-major local layout,
    /// as `cca_data::RedistPlan::local_offset` prescribes). For serial
    /// sources `rank` is 0.
    fn local_field(&self, name: &str, rank: usize) -> Result<Vec<f64>, CcaError>;

    /// A monotonically increasing frame counter, so consumers can detect
    /// new timesteps.
    fn frame(&self) -> u64;
}

/// A simple shared-memory field source: the simulation pushes snapshots,
/// consumers pull them. Works for serial simulations and as the rank-0
/// aggregation point of parallel ones.
#[derive(Default)]
pub struct InMemoryFieldSource {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    fields: BTreeMap<String, (DistArrayDesc, Vec<Vec<f64>>)>,
    frame: u64,
}

impl InMemoryFieldSource {
    /// Creates an empty source.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publishes (or replaces) a field: its descriptor plus one local
    /// buffer per rank of the descriptor. Bumps the frame counter.
    pub fn publish(
        &self,
        name: impl Into<String>,
        desc: DistArrayDesc,
        buffers: Vec<Vec<f64>>,
    ) -> Result<(), CcaError> {
        if buffers.len() != desc.nranks() {
            return Err(CcaError::Framework(format!(
                "field has {} buffers for {} ranks",
                buffers.len(),
                desc.nranks()
            )));
        }
        for (r, b) in buffers.iter().enumerate() {
            let want = desc
                .local_count(r)
                .map_err(|e| CcaError::Framework(e.to_string()))?;
            if b.len() != want {
                return Err(CcaError::Framework(format!(
                    "rank {r} buffer has {} elements, descriptor says {want}",
                    b.len()
                )));
            }
        }
        let mut inner = self.inner.write();
        inner.fields.insert(name.into(), (desc, buffers));
        inner.frame += 1;
        Ok(())
    }
}

impl FieldSourcePort for InMemoryFieldSource {
    fn field_names(&self) -> Vec<String> {
        self.inner.read().fields.keys().cloned().collect()
    }

    fn field_desc(&self, name: &str) -> Result<DistArrayDesc, CcaError> {
        self.inner
            .read()
            .fields
            .get(name)
            .map(|(d, _)| d.clone())
            .ok_or_else(|| CcaError::PortNotFound(format!("field '{name}'")))
    }

    fn local_field(&self, name: &str, rank: usize) -> Result<Vec<f64>, CcaError> {
        let inner = self.inner.read();
        let (desc, buffers) = inner
            .fields
            .get(name)
            .ok_or_else(|| CcaError::PortNotFound(format!("field '{name}'")))?;
        if rank >= desc.nranks() {
            return Err(CcaError::Framework(format!(
                "rank {rank} out of range for field '{name}'"
            )));
        }
        Ok(buffers[rank].clone())
    }

    fn frame(&self) -> u64 {
        self.inner.read().frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca_data::Distribution;

    fn serial_desc(n: usize) -> DistArrayDesc {
        DistArrayDesc::new(&[n], Distribution::serial(1).unwrap()).unwrap()
    }

    #[test]
    fn publish_and_pull() {
        let src = InMemoryFieldSource::new();
        assert_eq!(src.frame(), 0);
        src.publish("pressure", serial_desc(4), vec![vec![1.0, 2.0, 3.0, 4.0]])
            .unwrap();
        assert_eq!(src.frame(), 1);
        assert_eq!(src.field_names(), vec!["pressure"]);
        assert_eq!(
            src.local_field("pressure", 0).unwrap(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
        assert_eq!(src.field_desc("pressure").unwrap().global_extents(), &[4]);
    }

    #[test]
    fn republishing_bumps_frame() {
        let src = InMemoryFieldSource::new();
        src.publish("u", serial_desc(2), vec![vec![0.0, 0.0]])
            .unwrap();
        src.publish("u", serial_desc(2), vec![vec![1.0, 1.0]])
            .unwrap();
        assert_eq!(src.frame(), 2);
        assert_eq!(src.local_field("u", 0).unwrap(), vec![1.0, 1.0]);
    }

    #[test]
    fn parallel_descriptor_buffers() {
        let desc = DistArrayDesc::new(&[10], Distribution::block_1d(2, 1).unwrap()).unwrap();
        let src = InMemoryFieldSource::new();
        src.publish("u", desc, vec![vec![0.0; 5], vec![1.0; 5]])
            .unwrap();
        assert_eq!(src.local_field("u", 1).unwrap(), vec![1.0; 5]);
        assert!(src.local_field("u", 2).is_err());
    }

    #[test]
    fn validation() {
        let src = InMemoryFieldSource::new();
        // Wrong buffer count.
        assert!(src
            .publish("u", serial_desc(2), vec![vec![0.0; 2], vec![0.0; 2]])
            .is_err());
        // Wrong buffer length.
        assert!(src
            .publish("u", serial_desc(2), vec![vec![0.0; 3]])
            .is_err());
        // Missing field.
        assert!(src.field_desc("ghost").is_err());
        assert!(src.local_field("ghost", 0).is_err());
    }
}
