//! Computational steering: bounded, named parameters.
//!
//! CUMULVS (paper ref [26]) provided "fault tolerance, visualization and
//! steering of parallel applications"; the steering half is a registry of
//! parameters the simulation reads every timestep and a remote tool may
//! change between them. We reproduce it with explicit bounds checking and
//! a change counter so the simulation can cheaply detect "someone turned
//! a knob".

use cca_core::CcaError;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// SIDL type name of the steering port.
pub const STEERING_PORT_TYPE: &str = "viz.Steering";

/// The steering port: what a monitoring/UI component calls.
pub trait SteeringPort: Send + Sync {
    /// Registered parameter names.
    fn parameter_names(&self) -> Vec<String>;

    /// `(current, min, max)` of a parameter.
    fn get(&self, name: &str) -> Result<(f64, f64, f64), CcaError>;

    /// Sets a parameter, clamped semantics **not** applied: out-of-bounds
    /// values are rejected so a slipped finger cannot destabilize a
    /// simulation.
    fn set(&self, name: &str, value: f64) -> Result<(), CcaError>;

    /// Total number of successful sets (change detection).
    fn revision(&self) -> u64;
}

#[derive(Debug, Clone, Copy)]
struct Param {
    value: f64,
    min: f64,
    max: f64,
}

/// The registry a simulation owns and exposes as its steering port.
#[derive(Default)]
pub struct SteeringRegistry {
    inner: RwLock<(BTreeMap<String, Param>, u64)>,
}

impl SteeringRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers a parameter with initial value and inclusive bounds.
    pub fn register(
        &self,
        name: impl Into<String>,
        value: f64,
        min: f64,
        max: f64,
    ) -> Result<(), CcaError> {
        let name = name.into();
        if !(min <= value && value <= max) {
            return Err(CcaError::Framework(format!(
                "parameter '{name}': initial {value} outside [{min}, {max}]"
            )));
        }
        let mut inner = self.inner.write();
        if inner.0.contains_key(&name) {
            return Err(CcaError::PortAlreadyExists(name));
        }
        inner.0.insert(name, Param { value, min, max });
        Ok(())
    }

    /// The simulation-side read (hot path; no error handling needed when
    /// the simulation registered the parameter itself).
    pub fn value(&self, name: &str) -> f64 {
        self.inner
            .read()
            .0
            .get(name)
            .map(|p| p.value)
            .unwrap_or(f64::NAN)
    }
}

impl SteeringPort for SteeringRegistry {
    fn parameter_names(&self) -> Vec<String> {
        self.inner.read().0.keys().cloned().collect()
    }

    fn get(&self, name: &str) -> Result<(f64, f64, f64), CcaError> {
        self.inner
            .read()
            .0
            .get(name)
            .map(|p| (p.value, p.min, p.max))
            .ok_or_else(|| CcaError::PortNotFound(format!("parameter '{name}'")))
    }

    fn set(&self, name: &str, value: f64) -> Result<(), CcaError> {
        let mut inner = self.inner.write();
        let (params, revision) = &mut *inner;
        let p = params
            .get_mut(name)
            .ok_or_else(|| CcaError::PortNotFound(format!("parameter '{name}'")))?;
        if !value.is_finite() || !(p.min..=p.max).contains(&value) {
            return Err(CcaError::Framework(format!(
                "parameter '{name}': {value} outside [{}, {}]",
                p.min, p.max
            )));
        }
        p.value = value;
        *revision += 1;
        Ok(())
    }

    fn revision(&self) -> u64 {
        self.inner.read().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_get_set_cycle() {
        let reg = SteeringRegistry::new();
        reg.register("dt", 1e-3, 1e-6, 1e-1).unwrap();
        reg.register("nu", 0.1, 0.0, 10.0).unwrap();
        assert_eq!(reg.parameter_names(), vec!["dt", "nu"]);
        assert_eq!(reg.get("dt").unwrap(), (1e-3, 1e-6, 1e-1));
        assert_eq!(reg.revision(), 0);
        reg.set("dt", 5e-3).unwrap();
        assert_eq!(reg.revision(), 1);
        assert_eq!(reg.value("dt"), 5e-3);
    }

    #[test]
    fn bounds_enforced() {
        let reg = SteeringRegistry::new();
        reg.register("omega", 1.0, 0.0, 2.0).unwrap();
        assert!(reg.set("omega", 2.5).is_err());
        assert!(reg.set("omega", -0.1).is_err());
        assert!(reg.set("omega", f64::NAN).is_err());
        assert_eq!(reg.value("omega"), 1.0);
        assert_eq!(reg.revision(), 0);
        // Boundary values are accepted (inclusive bounds).
        reg.set("omega", 2.0).unwrap();
        reg.set("omega", 0.0).unwrap();
        assert_eq!(reg.revision(), 2);
    }

    #[test]
    fn registration_validation() {
        let reg = SteeringRegistry::new();
        assert!(reg.register("bad", 5.0, 0.0, 1.0).is_err());
        reg.register("x", 0.5, 0.0, 1.0).unwrap();
        assert!(reg.register("x", 0.5, 0.0, 1.0).is_err());
    }

    #[test]
    fn unknown_parameters() {
        let reg = SteeringRegistry::new();
        assert!(reg.get("nope").is_err());
        assert!(reg.set("nope", 1.0).is_err());
        assert!(reg.value("nope").is_nan());
    }
}
