//! A monitoring component: attaches to a field source, pulls frames,
//! redistributes them to its own (serial) layout, and keeps statistics.
//!
//! This is the "dynamically attaching a visualization tool to an ongoing
//! simulation" component of §2.2 — and because it computes the transfer
//! from the two distribution descriptors, it works unchanged whether the
//! source is serial or decomposed over many ranks (§6.3's arbitrary M×N).

use crate::field::FieldSourcePort;
use crate::render::{render_ascii, FieldStats};
use cca_core::{CcaError, CcaServices, Component, PortHandle};
use cca_data::TypeMap;
use cca_data::{CompiledPlan, DistArrayDesc, Distribution, RedistPlan};
use cca_sidl::DynObject;
use parking_lot::Mutex;
use std::sync::Arc;

/// One captured frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Source frame counter at capture time.
    pub frame: u64,
    /// Statistics of the globally assembled field.
    pub stats: FieldStats,
    /// The assembled global field (serial layout).
    pub data: Vec<f64>,
}

/// The monitor: a CCA component using a `viz.FieldSource` port named
/// `"fields"` and providing nothing (a pure observer).
pub struct MonitorComponent {
    field: String,
    services: Mutex<Option<Arc<CcaServices>>>,
    history: Mutex<Vec<Frame>>,
    /// Cached gather plan, rebuilt only when the source's distribution
    /// changes (plan construction is the expensive once-per-connection
    /// step; see the E4 ablation).
    plan_cache: Mutex<Option<(DistArrayDesc, CompiledPlan)>>,
}

impl MonitorComponent {
    /// Creates a monitor that watches the named field.
    pub fn new(field: impl Into<String>) -> Arc<Self> {
        Arc::new(MonitorComponent {
            field: field.into(),
            services: Mutex::new(None),
            history: Mutex::new(Vec::new()),
            plan_cache: Mutex::new(None),
        })
    }

    /// Pulls one frame through the port: fetches every source rank's local
    /// buffer, builds the M→1 redistribution plan from the descriptors,
    /// and assembles the global field.
    pub fn capture(&self) -> Result<Frame, CcaError> {
        let services = self
            .services
            .lock()
            .clone()
            .ok_or_else(|| CcaError::Framework("setServices not called".into()))?;
        let src: Arc<dyn FieldSourcePort> = services.get_port_as("fields")?;
        let desc = src.field_desc(&self.field)?;
        let buffers: Vec<Vec<f64>> = (0..desc.nranks())
            .map(|r| src.local_field(&self.field, r))
            .collect::<Result<_, _>>()?;
        // Target: the monitor's own serial layout. The plan is cached and
        // only rebuilt if the source distribution changed.
        let mut cache = self.plan_cache.lock();
        let rebuild = match &*cache {
            Some((cached_desc, _)) => cached_desc != &desc,
            None => true,
        };
        if rebuild {
            let serial = DistArrayDesc::new(
                desc.global_extents(),
                Distribution::serial(desc.rank())
                    .map_err(|e| CcaError::Framework(e.to_string()))?,
            )
            .map_err(|e| CcaError::Framework(e.to_string()))?;
            let plan = RedistPlan::build(&desc, &serial)
                .map_err(|e| CcaError::Framework(e.to_string()))?
                .compile()
                .map_err(|e| CcaError::Framework(e.to_string()))?;
            *cache = Some((desc.clone(), plan));
        }
        let (_, plan) = cache.as_ref().expect("just filled");
        let mut out = plan
            .apply(&buffers)
            .map_err(|e| CcaError::Framework(e.to_string()))?;
        let data = out.pop().unwrap_or_default();
        let frame = Frame {
            frame: src.frame(),
            stats: FieldStats::of(&data),
            data,
        };
        self.history.lock().push(frame.clone());
        Ok(frame)
    }

    /// Renders the latest captured frame as ASCII art (2-D fields only).
    pub fn render_latest(&self, width: usize, height: usize) -> Result<String, CcaError> {
        let services = self
            .services
            .lock()
            .clone()
            .ok_or_else(|| CcaError::Framework("setServices not called".into()))?;
        let src: Arc<dyn FieldSourcePort> = services.get_port_as("fields")?;
        let desc = src.field_desc(&self.field)?;
        let extents = desc.global_extents().to_vec();
        if extents.len() != 2 {
            return Err(CcaError::Framework(format!(
                "render needs a 2-D field, got rank {}",
                extents.len()
            )));
        }
        let latest = self
            .history
            .lock()
            .last()
            .cloned()
            .ok_or_else(|| CcaError::Framework("no frame captured yet".into()))?;
        Ok(render_ascii(
            &latest.data,
            extents[0],
            extents[1],
            width,
            height,
        ))
    }

    /// Captured history (oldest first).
    pub fn history(&self) -> Vec<Frame> {
        self.history.lock().clone()
    }
}

impl Component for MonitorComponent {
    fn component_type(&self) -> &str {
        "viz.Monitor"
    }

    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        services.register_uses_port(
            "fields",
            crate::field::FIELD_SOURCE_PORT_TYPE,
            TypeMap::new(),
        )?;
        *self.services.lock() = Some(services);
        Ok(())
    }
}

/// Wraps an [`InMemoryFieldSource`](crate::field::InMemoryFieldSource)
/// owner as a provider component exposing the `"fields"` provides port.
pub struct FieldProviderComponent {
    source: Arc<dyn FieldSourcePort>,
    dynamic: Option<Arc<dyn DynObject>>,
}

impl FieldProviderComponent {
    /// Wraps any field source.
    pub fn new(source: Arc<dyn FieldSourcePort>) -> Arc<Self> {
        Arc::new(FieldProviderComponent {
            source,
            dynamic: None,
        })
    }

    /// Attaches a dynamic facade for proxied connections.
    pub fn with_dynamic(
        source: Arc<dyn FieldSourcePort>,
        dynamic: Arc<dyn DynObject>,
    ) -> Arc<Self> {
        Arc::new(FieldProviderComponent {
            source,
            dynamic: Some(dynamic),
        })
    }
}

impl Component for FieldProviderComponent {
    fn component_type(&self) -> &str {
        "viz.FieldProvider"
    }

    fn set_services(&self, services: Arc<CcaServices>) -> Result<(), CcaError> {
        let mut handle = PortHandle::new(
            "fields",
            crate::field::FIELD_SOURCE_PORT_TYPE,
            Arc::clone(&self.source),
        );
        if let Some(d) = &self.dynamic {
            handle = handle.with_dynamic(Arc::clone(d));
        }
        services.add_provides_port(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::InMemoryFieldSource;
    use cca_data::{DimDist, ProcessGrid};
    use cca_framework::Framework;
    use cca_repository::Repository;

    fn wire_monitor(
        source: Arc<InMemoryFieldSource>,
        field: &str,
    ) -> (Arc<Framework>, Arc<MonitorComponent>) {
        let fw = Framework::new(Repository::new());
        let provider = FieldProviderComponent::new(source);
        let monitor = MonitorComponent::new(field);
        fw.add_instance("sim0", provider).unwrap();
        fw.add_instance("viz0", monitor.clone()).unwrap();
        fw.connect("viz0", "fields", "sim0", "fields").unwrap();
        (fw, monitor)
    }

    #[test]
    fn monitor_assembles_distributed_field() {
        // A 12-element field block-distributed over 3 "ranks".
        let desc =
            DistArrayDesc::new(&[12], cca_data::Distribution::block_1d(3, 1).unwrap()).unwrap();
        let buffers: Vec<Vec<f64>> = (0..3)
            .map(|r| (0..4).map(|k| (r * 4 + k) as f64).collect())
            .collect();
        let source = InMemoryFieldSource::new();
        source.publish("u", desc, buffers).unwrap();
        let (_fw, monitor) = wire_monitor(source, "u");
        let frame = monitor.capture().unwrap();
        assert_eq!(frame.data, (0..12).map(|i| i as f64).collect::<Vec<_>>());
        assert_eq!(frame.stats.count, 12);
        assert_eq!(frame.frame, 1);
    }

    #[test]
    fn monitor_handles_cyclic_sources() {
        let dist = cca_data::Distribution::new(ProcessGrid::linear(2).unwrap(), &[DimDist::Cyclic])
            .unwrap();
        let desc = DistArrayDesc::new(&[6], dist).unwrap();
        // Rank 0 owns 0,2,4; rank 1 owns 1,3,5.
        let source = InMemoryFieldSource::new();
        source
            .publish("u", desc, vec![vec![0.0, 2.0, 4.0], vec![1.0, 3.0, 5.0]])
            .unwrap();
        let (_fw, monitor) = wire_monitor(source, "u");
        let frame = monitor.capture().unwrap();
        assert_eq!(frame.data, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn history_accumulates_frames() {
        let source = InMemoryFieldSource::new();
        let desc = DistArrayDesc::new(&[2], cca_data::Distribution::serial(1).unwrap()).unwrap();
        source
            .publish("u", desc.clone(), vec![vec![1.0, 1.0]])
            .unwrap();
        let (_fw, monitor) = wire_monitor(source.clone(), "u");
        monitor.capture().unwrap();
        source.publish("u", desc, vec![vec![2.0, 2.0]]).unwrap();
        monitor.capture().unwrap();
        let h = monitor.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].stats.mean, 1.0);
        assert_eq!(h[1].stats.mean, 2.0);
        assert!(h[1].frame > h[0].frame);
    }

    #[test]
    fn render_latest_2d() {
        let source = InMemoryFieldSource::new();
        let desc = DistArrayDesc::new(&[4, 4], cca_data::Distribution::serial(2).unwrap()).unwrap();
        let mut data = vec![0.0; 16];
        data[3] = 5.0;
        source.publish("u", desc, vec![data]).unwrap();
        let (_fw, monitor) = wire_monitor(source, "u");
        assert!(monitor.render_latest(4, 4).is_err()); // nothing captured yet
        monitor.capture().unwrap();
        let img = monitor.render_latest(4, 4).unwrap();
        assert_eq!(img.lines().count(), 4);
        assert!(img.contains('@'));
    }

    #[test]
    fn capture_without_connection_fails_cleanly() {
        let fw = Framework::new(Repository::new());
        let monitor = MonitorComponent::new("u");
        fw.add_instance("viz0", monitor.clone()).unwrap();
        assert!(monitor.capture().is_err());
    }
}
