//! Deterministic rendering and statistics of 2-D fields.

/// Summary statistics of a field snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStats {
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Euclidean norm.
    pub norm2: f64,
    /// Element count.
    pub count: usize,
}

impl FieldStats {
    /// Computes statistics over a slice. Empty slices produce zeros.
    pub fn of(data: &[f64]) -> FieldStats {
        if data.is_empty() {
            return FieldStats {
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                norm2: 0.0,
                count: 0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for &v in data {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            sq += v * v;
        }
        FieldStats {
            min,
            max,
            mean: sum / data.len() as f64,
            norm2: sq.sqrt(),
            count: data.len(),
        }
    }
}

/// Intensity ramp used by the ASCII renderer, dimmest to brightest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a global 2-D field (column-major `[nx, ny]`, i.e.
/// `value(i,j) = data[i + nx*j]`) as `width × height` ASCII characters by
/// box-averaging. Values are normalized to the field's own min/max;
/// constant fields render as all-minimum.
pub fn render_ascii(data: &[f64], nx: usize, ny: usize, width: usize, height: usize) -> String {
    assert_eq!(data.len(), nx * ny, "data length != nx*ny");
    assert!(width > 0 && height > 0);
    let stats = FieldStats::of(data);
    let range = stats.max - stats.min;
    let mut out = String::with_capacity((width + 1) * height);
    for row in 0..height {
        // Render top row = largest j (like a plot, y upward).
        let j_hi = ny - (row * ny) / height;
        let j_lo = ny - ((row + 1) * ny) / height;
        for col in 0..width {
            let i_lo = (col * nx) / width;
            let i_hi = (((col + 1) * nx) / width).max(i_lo + 1);
            let mut acc = 0.0;
            let mut n = 0usize;
            for j in j_lo..j_hi.max(j_lo + 1).min(ny) {
                for i in i_lo..i_hi.min(nx) {
                    acc += data[i + nx * j];
                    n += 1;
                }
            }
            let v = if n == 0 { stats.min } else { acc / n as f64 };
            let t = if range > 0.0 {
                ((v - stats.min) / range).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Ramp used by [`sparkline`], 8 levels.
const SPARK: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a numeric series as a one-line sparkline (monitor history at a
/// glance). Values are normalized to the series' own min/max; a constant
/// series renders at the lowest level; NaNs render as spaces.
pub fn sparkline(series: &[f64]) -> String {
    if series.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = series.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let range = max - min;
    series
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if range > 0.0 {
                let t = ((v - min) / range).clamp(0.0, 1.0);
                SPARK[((t * (SPARK.len() - 1) as f64).round() as usize).min(SPARK.len() - 1)]
            } else {
                SPARK[0]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        // Monotone ramp: first char lowest, last highest.
        let s: Vec<char> = sparkline(&[0.0, 1.0, 2.0, 3.0]).chars().collect();
        assert_eq!(s[0], '▁');
        assert_eq!(s[3], '█');
        // Constant series renders at the floor.
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▁▁▁");
        // NaN becomes a gap.
        let s = sparkline(&[0.0, f64::NAN, 1.0]);
        assert_eq!(s.chars().nth(1), Some(' '));
    }

    #[test]
    fn stats_basic() {
        let s = FieldStats::of(&[1.0, -2.0, 3.0, 0.0]);
        assert_eq!(s.min, -2.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 0.5);
        assert!((s.norm2 - (14.0f64).sqrt()).abs() < 1e-14);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn stats_empty() {
        let s = FieldStats::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.norm2, 0.0);
    }

    #[test]
    fn render_dimensions() {
        let data = vec![0.0; 16];
        let img = render_ascii(&data, 4, 4, 8, 3);
        let lines: Vec<&str> = img.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 8));
    }

    #[test]
    fn constant_field_renders_minimum() {
        let data = vec![7.0; 9];
        let img = render_ascii(&data, 3, 3, 3, 3);
        assert!(img.chars().filter(|c| *c != '\n').all(|c| c == ' '));
    }

    #[test]
    fn bright_spot_lands_where_expected() {
        // Hot cell at (i=3, j=0) — bottom-right. Rendered bottom row,
        // right column must be the brightest character.
        let nx = 4;
        let ny = 4;
        let mut data = vec![0.0; nx * ny];
        data[3] = 10.0; // i=3, j=0
        let img = render_ascii(&data, nx, ny, 4, 4);
        let lines: Vec<&str> = img.lines().collect();
        let bottom = lines.last().unwrap();
        assert_eq!(bottom.chars().last().unwrap(), '@');
        // Top-left stays dim.
        assert_eq!(lines[0].chars().next().unwrap(), ' ');
    }

    #[test]
    fn render_is_deterministic() {
        let data: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let a = render_ascii(&data, 8, 8, 10, 5);
        let b = render_ascii(&data, 8, 8, 10, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn render_validates_shape() {
        render_ascii(&[0.0; 5], 2, 2, 2, 2);
    }
}
