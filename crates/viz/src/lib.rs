#![warn(missing_docs)]
//! # cca-viz — visualization, monitoring, and computational steering
//!
//! Figure 1's lower half: "components for visualization, which can often be
//! more loosely coupled and differently distributed than the numerical
//! components". The paper's §2.2 scenario — "a researcher may wish to
//! visualize flow fields on a local workstation by dynamically attaching a
//! visualization tool to an ongoing simulation that is running on a remote
//! parallel machine" — is the CUMULVS use case, and this crate is our
//! CUMULVS stand-in (see DESIGN.md substitutions):
//!
//! * [`field`] — the `viz.FieldSource` port a simulation provides: named
//!   fields plus their distribution descriptors, so a differently
//!   distributed consumer can compute the M×N transfer itself.
//! * [`render`] — deterministic ASCII rendering and summary statistics of
//!   2-D fields (fidelity is irrelevant to the architecture; determinism
//!   makes it testable).
//! * [`steer`] — CUMULVS-style steerable parameters: the simulation
//!   registers bounded named parameters, a (possibly remote) tool adjusts
//!   them, the simulation reads them each timestep.
//! * [`monitor`] — a monitoring component that attaches to a field source
//!   through the framework, pulls frames, and keeps a statistics history.

pub mod field;
pub mod monitor;
pub mod render;
pub mod steer;

pub use field::{FieldSourcePort, InMemoryFieldSource, FIELD_SOURCE_PORT_TYPE};
pub use monitor::{FieldProviderComponent, Frame, MonitorComponent};
pub use render::{render_ascii, sparkline, FieldStats};
pub use steer::{SteeringPort, SteeringRegistry, STEERING_PORT_TYPE};
