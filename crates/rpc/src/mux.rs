//! Request-id multiplexing: thousands of concurrent logical clients on a
//! handful of sockets.
//!
//! The PR-5 stack is correct but serial: `TcpTransport` allows one in-flight
//! request per pooled connection, and `TcpServer` spends a blocking thread
//! per peer. The frame header has carried a `u64` request id since PR-5
//! precisely so that replies can be routed without demarshaling — this
//! module cashes that in on both sides of the socket, std-only (vendor
//! policy: no new runtime deps, no async runtime).
//!
//! * [`MuxTransport`] — the client: many concurrent calls pipeline over a
//!   small fixed set of connections. Per connection, one writer thread
//!   drains a shared output buffer (submissions under load coalesce into
//!   single `write` syscalls) and one reader thread routes completed
//!   replies to per-request waiters by frame id. [`MuxTransport::submit`]
//!   returns a [`PendingReply`] without blocking on the reply, so one OS
//!   thread can keep hundreds of logical calls in flight. When a
//!   connection dies, every in-flight call on it fails with a typed
//!   [`CONNECTION_EXCEPTION_TYPE`] error — which feeds the PR-3 circuit
//!   breaker exactly like a pooled-transport failure.
//! * [`MuxServer`] — the server: an event-driven readiness loop over
//!   nonblocking sockets instead of a thread per peer. One loop thread
//!   reads frames from every connection, a bounded worker pool dispatches
//!   into the same [`Dispatcher`] trait the blocking server uses (the
//!   Figure-2 pipeline and the hostile-network battery run unchanged), and
//!   replies are flushed back by the loop. Backpressure is per-connection:
//!   when a peer's replies aren't draining, the loop stops *reading* that
//!   connection until the write buffer empties, so one slow consumer can't
//!   balloon server memory.
//!
//! Protocol discipline: a reply bearing an unknown or already-completed
//! request id is a mux violation. It fails only its own connection — every
//! in-flight call on that connection gets a typed error, and no caller can
//! ever receive another caller's bytes (cross-delivery is structurally
//! impossible: the routing table hands each payload to exactly the waiter
//! that registered the id). A caller that abandons a call (deadline) leaves
//! a tombstone so the late reply is dropped silently rather than
//! misclassified as a violation.

use crate::frame::{
    encode_frame, encode_frame_header_onto, encode_frame_onto, encode_frame_with, read_frame,
    Frame, FrameDecoder, FrameKind, DEFAULT_MAX_PAYLOAD, FRAME_HEADER_LEN,
};
use crate::tcp::CONNECTION_EXCEPTION_TYPE;
use crate::transport::{Dispatcher, Transport};
use bytes::Bytes;
use cca_core::resilience::{SplitMix64, DEADLINE_EXCEPTION_TYPE};
use cca_obs::{MuxMetrics, TraceContext, TransportMetrics};
use cca_sidl::SidlError;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn conn_err(message: impl Into<String>) -> SidlError {
    SidlError::user(CONNECTION_EXCEPTION_TYPE, message)
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Default number of sockets a [`MuxTransport`] multiplexes over.
pub const DEFAULT_MUX_CONNECTIONS: usize = 4;

/// What the completion router knows about one outstanding request id.
enum PendingEntry {
    /// A caller is waiting; deliver here.
    Live(Arc<WaitCell>),
    /// The caller gave up (deadline) — drop the late reply silently.
    Abandoned,
}

/// The per-connection routing table. `dead` doubles as the tombstone for
/// the whole connection: once set, no new ids register and the stored
/// error is what late submitters see.
struct PendingMap {
    waiters: HashMap<u64, PendingEntry>,
    dead: Option<SidlError>,
}

/// One caller's rendezvous with the reader thread.
struct WaitCell {
    /// `(outcome, completion instant)` — the instant is captured at
    /// delivery, not at wakeup, so pipelined benchmarks measure network
    /// latency rather than waiter-scheduling latency.
    slot: Mutex<Option<(Result<Bytes, SidlError>, Instant)>>,
    cond: Condvar,
}

impl WaitCell {
    fn new() -> Self {
        WaitCell {
            slot: Mutex::new(None),
            cond: Condvar::new(),
        }
    }

    fn deliver(&self, outcome: Result<Bytes, SidlError>) {
        *self.slot.lock().unwrap() = Some((outcome, Instant::now()));
        self.cond.notify_one();
    }
}

/// The shared output buffer a connection's writer thread drains.
struct OutQueue {
    buf: Vec<u8>,
    dead: bool,
}

/// One multiplexed connection: a writer thread serializing frames, a
/// reader thread routing completions, and the routing table between them.
struct MuxConn {
    addr: String,
    /// Original stream handle, kept so teardown can unblock the reader.
    stream: TcpStream,
    out: Mutex<OutQueue>,
    out_cv: Condvar,
    pending: Mutex<PendingMap>,
    /// Fast liveness check for connection selection; authoritative state
    /// is `pending.dead`.
    alive: AtomicBool,
    metrics: Arc<MuxMetrics>,
    transport_metrics: Arc<TransportMetrics>,
}

// TcpStream, Mutex-guarded state, and atomics only: safe to share across
// the reader, writer, and any number of submitting threads.

impl MuxConn {
    /// Kills the connection: marks it dead, fails every live in-flight
    /// call with `cause`, unblocks both service threads. Idempotent — the
    /// first caller wins; later causes are dropped.
    fn teardown(&self, cause: SidlError) {
        let victims: Vec<Arc<WaitCell>> = {
            let mut pending = self.pending.lock().unwrap();
            if pending.dead.is_some() {
                return;
            }
            pending.dead = Some(cause.clone());
            pending
                .waiters
                .drain()
                .filter_map(|(_, entry)| match entry {
                    PendingEntry::Live(cell) => Some(cell),
                    PendingEntry::Abandoned => None,
                })
                .collect()
        };
        // The connection must be fully dead — liveness flag down, socket
        // shut, writer told to exit — *before* any waiter wakes. A caller
        // that retries the moment its error is delivered must observe
        // `alive == false` and re-dial; were the error delivered first,
        // the retry could land back on this corpse and fail without ever
        // reaching the server.
        self.alive.store(false, Ordering::SeqCst);
        self.transport_metrics.record_connection_drop();
        let _ = self.stream.shutdown(Shutdown::Both);
        {
            let mut out = self.out.lock().unwrap();
            out.dead = true;
            out.buf.clear();
        }
        self.out_cv.notify_all();
        // Black-box the death while the evidence is fresh: what the mux
        // counters saw and what the trace rings hold, before the waiters
        // wake and their retries overwrite both.
        if cca_obs::flight::enabled() {
            cca_obs::flight::record_incident_with_metrics(
                "ConnectionFailure",
                &format!("tcp+mux://{}: {cause}", self.addr),
                Some(&self.metrics.snapshot().to_json()),
            );
        }
        for cell in victims {
            self.metrics.record_end();
            cell.deliver(Err(cause.clone()));
        }
    }

    /// The writer loop: swap the shared buffer out under the lock, write
    /// it without the lock. Submissions that arrive while a write syscall
    /// is in progress coalesce into the next swap — under load, many
    /// frames per syscall.
    fn write_loop(&self, mut stream: TcpStream) {
        let mut batch = Vec::new();
        loop {
            {
                let mut out = self.out.lock().unwrap();
                loop {
                    if out.dead {
                        return;
                    }
                    if !out.buf.is_empty() {
                        std::mem::swap(&mut batch, &mut out.buf);
                        break;
                    }
                    out = self.out_cv.wait(out).unwrap();
                }
            }
            if let Err(e) = stream.write_all(&batch) {
                self.teardown(conn_err(format!(
                    "socket write to tcp://{}: {e}",
                    self.addr
                )));
                return;
            }
            batch.clear();
        }
    }

    /// The reader loop: block on the socket, route each reply to its
    /// waiter by frame id. Any violation — a request frame, an unknown or
    /// already-completed id, a framing error — kills this connection and
    /// only this connection.
    fn read_loop(&self, mut stream: TcpStream, max_payload: u32) {
        loop {
            let frame = match read_frame(&mut stream, max_payload) {
                Ok(Some(frame)) => frame,
                Ok(None) => {
                    self.teardown(conn_err(format!(
                        "tcp://{} closed the connection with calls in flight",
                        self.addr
                    )));
                    return;
                }
                Err(e) => {
                    self.teardown(conn_err(format!(
                        "socket read from tcp://{}: {e}",
                        self.addr
                    )));
                    return;
                }
            };
            if frame.kind != FrameKind::Reply {
                self.metrics.record_protocol_violation();
                self.teardown(conn_err(format!(
                    "tcp://{} sent a request frame on a client connection",
                    self.addr
                )));
                return;
            }
            let entry = self
                .pending
                .lock()
                .unwrap()
                .waiters
                .remove(&frame.request_id);
            match entry {
                Some(PendingEntry::Live(cell)) => {
                    self.metrics.record_end();
                    cell.deliver(Ok(frame.payload));
                }
                // The caller abandoned this id (deadline); the late reply
                // is dropped without ceremony.
                Some(PendingEntry::Abandoned) => {}
                None => {
                    self.metrics.record_protocol_violation();
                    self.teardown(conn_err(format!(
                        "tcp://{} sent a reply for unknown or already-completed \
                         request id {}",
                        self.addr, frame.request_id
                    )));
                    return;
                }
            }
        }
    }
}

/// A connection slot: lazily dialed, replaced wholesale when its
/// connection dies (the dead `Arc<MuxConn>` lingers only as long as its
/// waiters do).
struct Slot {
    conn: Mutex<Option<Arc<MuxConn>>>,
}

/// The multiplexing client transport: pipelined concurrent calls over a
/// small fixed set of connections.
///
/// Shape: [`submit`](Self::submit) registers a waiter keyed by a fresh
/// frame id, appends the encoded frame to the connection's output buffer,
/// and returns a [`PendingReply`] immediately; the [`Transport::call`]
/// implementation is `submit` + [`PendingReply::wait`]. Connections are
/// selected round-robin and dialed lazily; a dead connection is replaced
/// on the next submission that lands on its slot — dialing fresh *is* the
/// circuit breaker's half-open probe, exactly as with the pooled
/// transport.
pub struct MuxTransport {
    addr: String,
    io_timeout: Option<Duration>,
    max_payload: u32,
    slots: Vec<Slot>,
    rr: AtomicUsize,
    next_id: AtomicU64,
    metrics: Arc<TransportMetrics>,
    mux_metrics: Arc<MuxMetrics>,
}

fn make_slots(conns: usize) -> Vec<Slot> {
    (0..conns.max(1))
        .map(|_| Slot {
            conn: Mutex::new(None),
        })
        .collect()
}

impl MuxTransport {
    /// A transport multiplexing calls to `addr` over
    /// [`DEFAULT_MUX_CONNECTIONS`] lazily dialed connections.
    /// Construction never touches the network.
    pub fn new(addr: impl Into<String>) -> Self {
        MuxTransport {
            addr: addr.into(),
            io_timeout: None,
            max_payload: DEFAULT_MAX_PAYLOAD,
            slots: make_slots(DEFAULT_MUX_CONNECTIONS),
            rr: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            metrics: Arc::new(TransportMetrics::default()),
            mux_metrics: MuxMetrics::new(),
        }
    }

    /// Sets the fixed connection-set size (minimum 1).
    pub fn with_connections(mut self, conns: usize) -> Self {
        self.slots = make_slots(conns);
        self
    }

    /// Bounds every call's end-to-end wait. A call that exceeds the budget
    /// abandons its request id (the late reply is dropped, the connection
    /// survives) and surfaces as a [`DEADLINE_EXCEPTION_TYPE`] user
    /// exception — the same error every other deadline path raises.
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = Some(timeout);
        self
    }

    /// Overrides the frame payload cap (both directions).
    pub fn with_max_payload(mut self, max_payload: u32) -> Self {
        self.max_payload = max_payload;
        self
    }

    /// The server address this transport dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The fixed connection-set size.
    pub fn connections(&self) -> usize {
        self.slots.len()
    }

    /// Client-side transport metrics (dials, drops, round trips).
    pub fn metrics(&self) -> &TransportMetrics {
        &self.metrics
    }

    /// Multiplexing depth metrics: in-flight calls, high-water marks,
    /// protocol violations.
    pub fn mux_metrics(&self) -> &MuxMetrics {
        &self.mux_metrics
    }

    /// Connections currently live.
    pub fn live_connections(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                s.conn
                    .lock()
                    .unwrap()
                    .as_ref()
                    .is_some_and(|c| c.alive.load(Ordering::SeqCst))
            })
            .count()
    }

    /// Round-robin slot pick; dials (or re-dials) the slot's connection if
    /// it is absent or dead.
    fn conn_for_call(&self) -> Result<Arc<MuxConn>, SidlError> {
        let index = self.rr.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let mut slot = self.slots[index].conn.lock().unwrap();
        if let Some(conn) = slot.as_ref() {
            if conn.alive.load(Ordering::SeqCst) {
                return Ok(Arc::clone(conn));
            }
        }
        let conn = self.dial()?;
        *slot = Some(Arc::clone(&conn));
        Ok(conn)
    }

    fn dial(&self) -> Result<Arc<MuxConn>, SidlError> {
        self.metrics.record_dial();
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| conn_err(format!("dial tcp://{}: {e}", self.addr)))?;
        // Nagle would park small pipelined frames behind the previous ACK.
        let _ = stream.set_nodelay(true);
        let reader_half = stream
            .try_clone()
            .map_err(|e| conn_err(format!("clone socket for tcp://{}: {e}", self.addr)))?;
        let writer_half = stream
            .try_clone()
            .map_err(|e| conn_err(format!("clone socket for tcp://{}: {e}", self.addr)))?;
        let conn = Arc::new(MuxConn {
            addr: self.addr.clone(),
            stream,
            out: Mutex::new(OutQueue {
                buf: Vec::new(),
                dead: false,
            }),
            out_cv: Condvar::new(),
            pending: Mutex::new(PendingMap {
                waiters: HashMap::new(),
                dead: None,
            }),
            alive: AtomicBool::new(true),
            metrics: Arc::clone(&self.mux_metrics),
            transport_metrics: Arc::clone(&self.metrics),
        });
        let max_payload = self.max_payload;
        let for_reader = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("cca-mux-read-{}", self.addr))
            .spawn(move || for_reader.read_loop(reader_half, max_payload))
            .map_err(|e| conn_err(format!("spawn mux reader: {e}")))?;
        let for_writer = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("cca-mux-write-{}", self.addr))
            .spawn(move || for_writer.write_loop(writer_half))
            .map_err(|e| conn_err(format!("spawn mux writer: {e}")))?;
        Ok(conn)
    }

    /// Starts one call without waiting for its reply: registers the
    /// request id with the completion router, hands the frame to the
    /// connection's writer, and returns immediately. Any number of calls
    /// from any number of threads may be in flight per connection.
    pub fn submit(&self, request: Bytes) -> Result<PendingReply, SidlError> {
        let _span = cca_obs::span("rpc.mux.submit");
        self.submit_frame(FrameKind::Request, request)
    }

    /// Starts one bulk-slab transfer: identical multiplexing to
    /// [`submit`](Self::submit) — same sockets, same writer batching, same
    /// id-routed completion — but the frame kind is `Bulk` and the payload
    /// is a raw slab (see [`crate::bulk`]). The reply's payload is the
    /// receiver's encoded [`crate::bulk::BulkAck`].
    pub fn submit_bulk(&self, slab: Bytes) -> Result<PendingReply, SidlError> {
        let _span = cca_obs::span("rpc.mux.submit_bulk");
        self.submit_frame(FrameKind::Bulk, slab)
    }

    /// Announces a fleet rank on this transport's connection: sends a
    /// `Join` frame whose payload the server's
    /// [`SessionSink`] interprets (rank id, incarnation, provider
    /// labels). The reply is the sink's join acknowledgement. A fleet
    /// member should build its transport with
    /// [`with_connections(1)`](Self::with_connections) so the joined
    /// connection's death is an unambiguous rank-death signal.
    pub fn submit_join(&self, hello: Bytes) -> Result<PendingReply, SidlError> {
        let _span = cca_obs::span("rpc.mux.submit_join");
        self.submit_frame(FrameKind::Join, hello)
    }

    /// Departs cleanly: sends a `Leave` frame so the server's
    /// [`SessionSink`] marks this rank as gone on purpose and the
    /// subsequent socket close is not treated as a crash.
    pub fn submit_leave(&self, goodbye: Bytes) -> Result<PendingReply, SidlError> {
        let _span = cca_obs::span("rpc.mux.submit_leave");
        self.submit_frame(FrameKind::Leave, goodbye)
    }

    /// [`submit_bulk`](Self::submit_bulk) without the intermediate frame
    /// buffer: the header and slab are appended straight onto the
    /// connection's write queue, so the caller may reuse `slab` for the
    /// next chunk as soon as this returns. Saves one allocation and one
    /// full-payload copy per chunk, which is what the data plane is
    /// throughput-bound on.
    pub fn submit_bulk_ref(&self, slab: &[u8]) -> Result<PendingReply, SidlError> {
        let _span = cca_obs::span("rpc.mux.submit_bulk");
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let conn = self.conn_for_call()?;
        let context = cca_obs::trace::current_context();
        let cell = Arc::new(WaitCell::new());
        {
            let mut pending = conn.pending.lock().unwrap();
            if let Some(err) = &pending.dead {
                return Err(err.clone());
            }
            pending
                .waiters
                .insert(request_id, PendingEntry::Live(Arc::clone(&cell)));
        }
        self.mux_metrics.record_begin();
        let enqueued = {
            let mut out = conn.out.lock().unwrap();
            if out.dead {
                Ok(())
            } else {
                encode_frame_onto(
                    &mut out.buf,
                    FrameKind::Bulk,
                    request_id,
                    slab,
                    self.max_payload,
                    context,
                )
            }
        };
        if let Err(err) = enqueued {
            // Oversize slab: nothing was written, so unhook the waiter
            // instead of leaving a request id that can never complete.
            conn.pending.lock().unwrap().waiters.remove(&request_id);
            self.mux_metrics.record_end();
            return Err(err.into());
        }
        conn.out_cv.notify_one();
        Ok(PendingReply {
            cell: Some(cell),
            conn,
            request_id,
            request_bytes: slab.len() as u64,
            submitted: Instant::now(),
            timeout: self.io_timeout,
        })
    }

    /// The zero-materialization variant of
    /// [`submit_bulk_ref`](Self::submit_bulk_ref): appends the frame
    /// header to the connection's write queue, then hands `fill` the
    /// payload's `payload_len` bytes *in place* so the sender's gather
    /// writes element bytes directly where the writer thread will read
    /// them. The slab never exists anywhere else — between source array
    /// and socket there is exactly one copy.
    pub fn submit_bulk_with(
        &self,
        payload_len: usize,
        fill: impl FnOnce(&mut [u8]),
    ) -> Result<PendingReply, SidlError> {
        let _span = cca_obs::span("rpc.mux.submit_bulk");
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let conn = self.conn_for_call()?;
        let context = cca_obs::trace::current_context();
        let cell = Arc::new(WaitCell::new());
        {
            let mut pending = conn.pending.lock().unwrap();
            if let Some(err) = &pending.dead {
                return Err(err.clone());
            }
            pending
                .waiters
                .insert(request_id, PendingEntry::Live(Arc::clone(&cell)));
        }
        self.mux_metrics.record_begin();
        let enqueued = {
            let mut out = conn.out.lock().unwrap();
            if out.dead {
                Ok(())
            } else {
                encode_frame_header_onto(
                    &mut out.buf,
                    FrameKind::Bulk,
                    request_id,
                    payload_len,
                    self.max_payload,
                    context,
                )
                .map(|()| {
                    let at = out.buf.len();
                    out.buf.resize(at + payload_len, 0);
                    fill(&mut out.buf[at..]);
                })
            }
        };
        if let Err(err) = enqueued {
            conn.pending.lock().unwrap().waiters.remove(&request_id);
            self.mux_metrics.record_end();
            return Err(err.into());
        }
        conn.out_cv.notify_one();
        Ok(PendingReply {
            cell: Some(cell),
            conn,
            request_id,
            request_bytes: payload_len as u64,
            submitted: Instant::now(),
            timeout: self.io_timeout,
        })
    }

    fn submit_frame(&self, kind: FrameKind, request: Bytes) -> Result<PendingReply, SidlError> {
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let conn = self.conn_for_call()?;
        // The caller's span is current here, so the wire context parents
        // the server's dispatch span to this very call. Tracing off ⇒
        // `None` after one relaxed load, zero extension bytes.
        let framed = encode_frame_with(
            kind,
            request_id,
            request.as_ref(),
            self.max_payload,
            cca_obs::trace::current_context(),
        )?;
        let cell = Arc::new(WaitCell::new());
        {
            let mut pending = conn.pending.lock().unwrap();
            if let Some(err) = &pending.dead {
                return Err(err.clone());
            }
            pending
                .waiters
                .insert(request_id, PendingEntry::Live(Arc::clone(&cell)));
        }
        self.mux_metrics.record_begin();
        {
            let mut out = conn.out.lock().unwrap();
            // If the connection died between the two locks, teardown has
            // already delivered the error to our cell; skip the enqueue
            // and let `wait` surface it.
            if !out.dead {
                out.buf.extend_from_slice(&framed);
            }
        }
        conn.out_cv.notify_one();
        Ok(PendingReply {
            cell: Some(cell),
            conn,
            request_id,
            request_bytes: request.len() as u64,
            submitted: Instant::now(),
            timeout: self.io_timeout,
        })
    }
}

impl Drop for MuxTransport {
    fn drop(&mut self) {
        for slot in &self.slots {
            let conn = slot.conn.lock().unwrap().clone();
            if let Some(conn) = conn {
                conn.teardown(conn_err("transport dropped"));
            }
        }
    }
}

impl Transport for MuxTransport {
    fn call(&self, request: Bytes) -> Result<Bytes, SidlError> {
        let _span = cca_obs::span("rpc.mux.call");
        let counters = cca_obs::counters_enabled();
        let pending = self.submit(request)?;
        let request_bytes = pending.request_bytes;
        let (reply, latency) = pending.wait_timed()?;
        if counters {
            self.metrics.record_round_trip(
                "mux",
                request_bytes,
                reply.len() as u64,
                latency.as_nanos() as u64,
            );
        }
        Ok(reply)
    }
}

/// A [`Transport`]-shaped view of a [`MuxTransport`]'s bulk lane: `call`
/// submits the payload as a `Bulk` frame and waits for the ack reply.
/// Being a `Transport`, it composes unchanged with the PR-3 resilience
/// stack — wrap it in a [`crate::DeadlineTransport`] and a stalled
/// receiver surfaces `cca.rpc.DeadlineExceeded` instead of wedging the
/// writer thread, or in a [`crate::FaultTransport`] for the CI fault
/// matrix; connection failures feed the circuit breaker exactly like
/// control-plane calls.
pub struct BulkChannel {
    transport: Arc<MuxTransport>,
}

impl BulkChannel {
    /// A bulk lane over `transport`'s connection set.
    pub fn new(transport: Arc<MuxTransport>) -> Arc<Self> {
        Arc::new(BulkChannel { transport })
    }

    /// The underlying multiplexed transport.
    pub fn transport(&self) -> &Arc<MuxTransport> {
        &self.transport
    }

    /// Starts one slab without waiting for its ack. The windowed sender
    /// keeps several of these in flight so the gather, the wire, and the
    /// receiver's scatter overlap instead of serializing on round trips;
    /// [`call`](Transport::call) is the stop-and-wait special case. The
    /// slab is borrowed — its bytes are on the connection's write queue
    /// when this returns, so the caller may refill the same buffer for
    /// the next chunk immediately.
    pub fn submit_ref(&self, slab: &[u8]) -> Result<PendingReply, SidlError> {
        let _span = cca_obs::span("rpc.bulk.chunk");
        self.transport.submit_bulk_ref(slab)
    }

    /// Like [`submit_ref`](Self::submit_ref), but the slab is *built in
    /// place* on the connection's write queue by `fill` — see
    /// [`MuxTransport::submit_bulk_with`].
    pub fn submit_with(
        &self,
        payload_len: usize,
        fill: impl FnOnce(&mut [u8]),
    ) -> Result<PendingReply, SidlError> {
        let _span = cca_obs::span("rpc.bulk.chunk");
        self.transport.submit_bulk_with(payload_len, fill)
    }
}

impl Transport for BulkChannel {
    fn call(&self, slab: Bytes) -> Result<Bytes, SidlError> {
        let _span = cca_obs::span("rpc.bulk.chunk");
        let pending = self.transport.submit_bulk(slab)?;
        Ok(pending.wait_timed()?.0)
    }
}

/// A handle to one in-flight multiplexed call. Consume it with
/// [`wait`](Self::wait); dropping it unwaited abandons the call (the reply,
/// if it ever arrives, is discarded without penalizing the connection).
pub struct PendingReply {
    cell: Option<Arc<WaitCell>>,
    conn: Arc<MuxConn>,
    request_id: u64,
    request_bytes: u64,
    submitted: Instant,
    timeout: Option<Duration>,
}

impl PendingReply {
    /// The frame-level request id routing this call.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Blocks until the reply arrives (bounded by the transport's
    /// io-timeout, if any) and returns its payload.
    pub fn wait(self) -> Result<Bytes, SidlError> {
        self.wait_timed().map(|(bytes, _)| bytes)
    }

    /// Like [`wait`](Self::wait), also returning the submit-to-completion
    /// latency measured at *delivery* time — unbiased by how long this
    /// thread took to get around to waiting.
    pub fn wait_timed(mut self) -> Result<(Bytes, Duration), SidlError> {
        let cell = self.cell.take().expect("wait consumes the cell");
        let deadline = self.timeout.map(|t| self.submitted + t);
        let mut slot = cell.slot.lock().unwrap();
        loop {
            if let Some((outcome, done_at)) = slot.take() {
                let latency = done_at.saturating_duration_since(self.submitted);
                return outcome.map(|bytes| (bytes, latency));
            }
            match deadline {
                None => slot = cell.cond.wait(slot).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        drop(slot);
                        if let Some((outcome, done_at)) = self.abandon(&cell) {
                            // Lost the race: the reply landed while we
                            // were deciding to give up. Take it.
                            let latency = done_at.saturating_duration_since(self.submitted);
                            return outcome.map(|bytes| (bytes, latency));
                        }
                        return Err(SidlError::user(
                            DEADLINE_EXCEPTION_TYPE,
                            format!(
                                "mux call {} to tcp://{} exceeded its {:?} budget",
                                self.request_id, self.conn.addr, self.timeout
                            ),
                        ));
                    }
                    slot = cell.cond.wait_timeout(slot, d - now).unwrap().0;
                }
            }
        }
    }

    /// Converts this call's routing entry to a tombstone. Returns the
    /// outcome instead if delivery won the race.
    fn abandon(&self, cell: &Arc<WaitCell>) -> Option<(Result<Bytes, SidlError>, Instant)> {
        let mut pending = self.conn.pending.lock().unwrap();
        match pending.waiters.get_mut(&self.request_id) {
            Some(entry @ PendingEntry::Live(_)) => {
                *entry = PendingEntry::Abandoned;
                self.conn.metrics.record_end();
                None
            }
            // Already delivered (or the connection died and delivered an
            // error): the cell holds the outcome.
            _ => cell.slot.lock().unwrap().take(),
        }
    }
}

impl Drop for PendingReply {
    fn drop(&mut self) {
        if let Some(cell) = self.cell.take() {
            let _ = self.abandon(&cell);
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Tuning knobs for a [`MuxServer`]. `Default` is sized for tests and
/// moderate service; the E13 bench overrides nothing.
#[derive(Debug, Clone)]
pub struct MuxServerConfig {
    /// Dispatch worker threads (completions may finish out of order up to
    /// this parallelism).
    pub dispatch_threads: usize,
    /// Per-connection cap on buffered reply bytes; beyond it the loop
    /// stops reading that connection until the buffer drains.
    pub write_buffer_cap: usize,
    /// Live-connection bound: accepts beyond it are refused immediately
    /// (the bounded accept/handshake concurrency).
    pub max_connections: usize,
    /// Frame payload cap (both directions).
    pub max_payload: u32,
}

impl Default for MuxServerConfig {
    fn default() -> Self {
        MuxServerConfig {
            dispatch_threads: 4,
            write_buffer_cap: 1 << 20,
            max_connections: 1024,
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }
}

/// Where fleet `Join`/`Leave` frames land, and how connection death is
/// reported for joined connections. The connection id doubles as the
/// rank's *session id*: it is unique for the server's lifetime, so a
/// restarted rank's new session is always distinguishable from its dead
/// predecessor's.
pub trait SessionSink: Send + Sync {
    /// A `Join` frame arrived on connection `session`. The returned bytes
    /// travel back as the `Reply` payload (the join acknowledgement);
    /// an error closes the connection.
    fn join(&self, session: u64, hello: Bytes) -> Result<Vec<u8>, SidlError>;

    /// A `Leave` frame arrived on connection `session` — the rank is
    /// departing on purpose; its imminent socket close is not a crash.
    fn leave(&self, session: u64, goodbye: Bytes) -> Result<Vec<u8>, SidlError>;

    /// Connection `session` died (EOF, reset, framing violation) after a
    /// successful `Join` frame was decoded on it. Called from the event
    /// loop's reap pass — implementations must not block.
    fn disconnected(&self, session: u64);
}

/// One unit of work for the dispatch pool.
struct Job {
    conn_id: u64,
    request_id: u64,
    /// `Request` goes to the [`Dispatcher`]; `Bulk` goes to the installed
    /// [`BulkSink`]; `Join`/`Leave` go to the installed [`SessionSink`].
    /// (`Reply` never reaches the queue.)
    kind: FrameKind,
    payload: Bytes,
    /// The caller's trace identity from the frame, installed around the
    /// dispatch so the worker's spans join the caller's trace.
    context: Option<TraceContext>,
    /// Bytes this job charges against its connection's backlog until the
    /// reply lands in the write buffer (see [`ServerConn::pending_cost`]).
    cost: usize,
}

struct JobQueue {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

/// A connection as the event loop sees it.
struct ServerConn {
    id: u64,
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded reply bytes awaiting the socket, with a cursor instead of
    /// repeated front-drains.
    out: Vec<u8>,
    out_pos: usize,
    /// Request bytes decoded but not yet answered into `out`. Without this
    /// the read loop sees zero backlog for a whole pass (completions only
    /// reach `out` on a later pass) and a single pass can swallow an
    /// arbitrarily large burst into the job queue.
    pending_cost: usize,
    /// Reads paused by backpressure?
    paused: bool,
    closed: bool,
    /// A `Join` frame was decoded on this connection: its death must be
    /// reported to the [`SessionSink`] as a rank death.
    joined: bool,
}

impl ServerConn {
    /// Unanswered work held for this connection: unflushed reply bytes
    /// plus requests still in (or bound for) the dispatch pool.
    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos + self.pending_cost
    }
}

/// The event-driven multiplexing server: a readiness loop over nonblocking
/// sockets, dispatching into the same [`Dispatcher`] as [`crate::TcpServer`]
/// — a servant, a test battery, or the Figure-2 pipeline cannot tell the
/// two apart.
///
/// Thread budget is *fixed*, independent of peer count: one accept thread,
/// one event-loop thread, `dispatch_threads` workers. Ten thousand logical
/// clients over eight sockets cost the same threads as one.
///
/// Fault injection mirrors [`crate::TcpServer::set_fault_plan`]: the drop
/// decision is made on the event loop as each request frame is decoded, so
/// a serialized client observes a schedule that is a pure function of the
/// seed.
pub struct MuxServer {
    local_addr: SocketAddr,
    dispatcher: Arc<dyn Dispatcher>,
    config: MuxServerConfig,
    shutting_down: AtomicBool,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    event_thread: Mutex<Option<JoinHandle<()>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Accepted sockets awaiting registration by the event loop.
    incoming: Mutex<Vec<TcpStream>>,
    /// Live + pending-registration connections, maintained for the accept
    /// bound.
    live_conns: AtomicUsize,
    jobs: Mutex<JobQueue>,
    jobs_cv: Condvar,
    /// Completed dispatches awaiting the event loop:
    /// `(conn id, job cost, frame)`.
    completed: Mutex<Vec<(u64, usize, Vec<u8>)>>,
    /// Event-loop wakeup: workers and the accept thread set the flag.
    wake: Mutex<bool>,
    wake_cv: Condvar,
    accepted: AtomicU64,
    rejected_over_capacity: AtomicU64,
    dispatched: AtomicU64,
    dropped_mid_call: AtomicU64,
    drop_permille: AtomicU64,
    fault_draws: Mutex<SplitMix64>,
    metrics: Arc<MuxMetrics>,
    /// Where `Bulk` frames land. Installed by [`Self::set_bulk_sink`];
    /// a bulk frame arriving with no sink is a protocol violation.
    bulk_sink: Mutex<Option<Arc<dyn crate::bulk::BulkSink>>>,
    /// Where `Join`/`Leave` frames (and joined-connection deaths) land.
    /// Installed by [`Self::set_session_sink`]; a join frame arriving
    /// with no sink is a protocol violation.
    session_sink: Mutex<Option<Arc<dyn SessionSink>>>,
}

impl MuxServer {
    /// Binds `addr` (port 0 for ephemeral) with default tuning and starts
    /// the accept thread, event loop, and dispatch pool.
    pub fn bind(
        addr: impl ToSocketAddrs,
        dispatcher: Arc<dyn Dispatcher>,
    ) -> std::io::Result<Arc<Self>> {
        Self::bind_with(addr, dispatcher, MuxServerConfig::default())
    }

    /// Binds with explicit tuning.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        dispatcher: Arc<dyn Dispatcher>,
        config: MuxServerConfig,
    ) -> std::io::Result<Arc<Self>> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let dispatch_threads = config.dispatch_threads.max(1);
        let server = Arc::new(MuxServer {
            local_addr,
            dispatcher,
            config,
            shutting_down: AtomicBool::new(false),
            accept_thread: Mutex::new(None),
            event_thread: Mutex::new(None),
            workers: Mutex::new(Vec::new()),
            incoming: Mutex::new(Vec::new()),
            live_conns: AtomicUsize::new(0),
            jobs: Mutex::new(JobQueue {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            jobs_cv: Condvar::new(),
            completed: Mutex::new(Vec::new()),
            wake: Mutex::new(false),
            wake_cv: Condvar::new(),
            accepted: AtomicU64::new(0),
            rejected_over_capacity: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            dropped_mid_call: AtomicU64::new(0),
            drop_permille: AtomicU64::new(0),
            fault_draws: Mutex::new(SplitMix64::new(0)),
            metrics: MuxMetrics::new(),
            bulk_sink: Mutex::new(None),
            session_sink: Mutex::new(None),
        });
        let for_accept = Arc::clone(&server);
        *server.accept_thread.lock().unwrap() = Some(
            std::thread::Builder::new()
                .name(format!("cca-mux-accept-{local_addr}"))
                .spawn(move || for_accept.accept_loop(listener))?,
        );
        let for_events = Arc::clone(&server);
        *server.event_thread.lock().unwrap() = Some(
            std::thread::Builder::new()
                .name(format!("cca-mux-events-{local_addr}"))
                .spawn(move || for_events.event_loop())?,
        );
        let mut workers = server.workers.lock().unwrap();
        for i in 0..dispatch_threads {
            let me = Arc::clone(&server);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cca-mux-work-{i}"))
                    .spawn(move || me.worker_loop())?,
            );
        }
        drop(workers);
        Ok(server)
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections accepted over the server's lifetime.
    pub fn connections_accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections refused because the live-connection bound was reached.
    pub fn rejected_over_capacity(&self) -> u64 {
        self.rejected_over_capacity.load(Ordering::Relaxed)
    }

    /// Requests dispatched with their reply queued to the wire.
    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Connections deliberately hung up mid-call by the fault plan.
    pub fn dropped_mid_call(&self) -> u64 {
        self.dropped_mid_call.load(Ordering::Relaxed)
    }

    /// Server-side depth metrics: queued reply bytes, paused connections,
    /// dispatch in-flight.
    pub fn metrics(&self) -> &MuxMetrics {
        &self.metrics
    }

    /// Installs the data-plane sink: every decoded `Bulk` frame is handed
    /// to `sink` on a dispatch worker and its returned bytes travel back
    /// as the `Reply` payload (normally an encoded
    /// [`crate::bulk::BulkAck`]). A sink error closes the producing
    /// connection — the same blast radius as a framing violation — and no
    /// other. Without a sink, bulk frames are protocol violations.
    pub fn set_bulk_sink(&self, sink: Arc<dyn crate::bulk::BulkSink>) {
        *self.bulk_sink.lock().unwrap() = Some(sink);
    }

    /// Installs the fleet session sink: decoded `Join`/`Leave` frames are
    /// handed to `sink` on a dispatch worker (its returned bytes are the
    /// reply), and the death of any connection that joined is reported
    /// via [`SessionSink::disconnected`] from the reap pass. Without a
    /// sink, join/leave frames are protocol violations.
    pub fn set_session_sink(&self, sink: Arc<dyn SessionSink>) {
        *self.session_sink.lock().unwrap() = Some(sink);
    }

    /// Arms (or disarms with `drop_permille == 0`) the hostile-network
    /// fault plan — same contract as [`crate::TcpServer::set_fault_plan`]:
    /// the schedule is a pure function of `seed`, drawn once per request
    /// in the order the event loop decodes them.
    pub fn set_fault_plan(&self, seed: u64, drop_permille: u64) {
        *self.fault_draws.lock().unwrap() = SplitMix64::new(seed);
        self.drop_permille.store(drop_permille, Ordering::SeqCst);
    }

    fn should_drop(&self) -> bool {
        let permille = self.drop_permille.load(Ordering::SeqCst);
        if permille == 0 {
            return false;
        }
        self.fault_draws.lock().unwrap().next_below(1000) < permille
    }

    fn wake_event_loop(&self) {
        *self.wake.lock().unwrap() = true;
        self.wake_cv.notify_one();
    }

    fn accept_loop(self: Arc<Self>, listener: TcpListener) {
        for stream in listener.incoming() {
            if self.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if self.live_conns.load(Ordering::SeqCst) >= self.config.max_connections {
                // Bounded accept concurrency: refuse outright rather than
                // queueing unbounded peers. The socket drops; the peer
                // sees EOF/reset and may retry against the breaker.
                self.rejected_over_capacity.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let _ = stream.set_nodelay(true);
            self.accepted.fetch_add(1, Ordering::Relaxed);
            self.live_conns.fetch_add(1, Ordering::SeqCst);
            self.incoming.lock().unwrap().push(stream);
            self.wake_event_loop();
        }
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            let job = {
                let mut queue = self.jobs.lock().unwrap();
                loop {
                    if let Some(job) = queue.jobs.pop_front() {
                        break job;
                    }
                    if queue.shutting_down {
                        return;
                    }
                    queue = self.jobs_cv.wait(queue).unwrap();
                }
            };
            // Dispatch errors mean the payload was undecodable — the
            // dispatcher marshals servant errors into replies — which is a
            // protocol violation. The reply is simply not produced; the
            // event loop closed (or will close) hostile connections via
            // framing errors, and a client that sent garbage inside a
            // valid frame observes its call never completing against its
            // deadline. To keep parity with `TcpServer` (which hangs up),
            // we enqueue a sentinel close instead.
            let outcome = {
                // Adopt the caller's wire identity for the dispatch: the
                // ORB's dispatch span parents to the client's call span.
                let _ctx = cca_obs::install_context(job.context);
                match job.kind {
                    FrameKind::Bulk => {
                        // Data plane: the slab goes to the sink, not the
                        // dispatcher; the sink's ack bytes are the reply.
                        // The sink is checked at decode time, so absence
                        // here means it was uninstalled mid-flight — the
                        // close sentinel handles that too.
                        let sink = self.bulk_sink.lock().unwrap().clone();
                        match sink {
                            Some(sink) => sink.receive(job.payload).map(Bytes::from),
                            None => Err(SidlError::user(
                                crate::bulk::BULK_EXCEPTION_TYPE,
                                "no bulk sink installed",
                            )),
                        }
                    }
                    FrameKind::Join | FrameKind::Leave => {
                        // Fleet session plane: the sink's ack bytes are
                        // the reply. Checked at decode time, like Bulk.
                        let sink = self.session_sink.lock().unwrap().clone();
                        match sink {
                            Some(sink) if job.kind == FrameKind::Join => {
                                sink.join(job.conn_id, job.payload).map(Bytes::from)
                            }
                            Some(sink) => sink.leave(job.conn_id, job.payload).map(Bytes::from),
                            None => Err(SidlError::user(
                                "cca.rpc.FleetViolation",
                                "no session sink installed",
                            )),
                        }
                    }
                    _ => self.dispatcher.dispatch(job.payload),
                }
            };
            match outcome {
                Ok(reply) => {
                    match encode_frame(
                        FrameKind::Reply,
                        job.request_id,
                        reply.as_ref(),
                        self.config.max_payload,
                    ) {
                        Ok(framed) => {
                            self.completed
                                .lock()
                                .unwrap()
                                .push((job.conn_id, job.cost, framed));
                        }
                        Err(_) => {
                            // Reply exceeds the frame cap: close the
                            // connection (empty frame = close sentinel).
                            self.completed.lock().unwrap().push((
                                job.conn_id,
                                job.cost,
                                Vec::new(),
                            ));
                        }
                    }
                }
                Err(_) => {
                    self.completed
                        .lock()
                        .unwrap()
                        .push((job.conn_id, job.cost, Vec::new()));
                }
            }
            self.metrics.record_end();
            self.wake_event_loop();
        }
    }

    /// The readiness loop. Std-only means no `epoll`: readiness is
    /// discovered by attempting nonblocking reads/writes each pass and
    /// parking briefly (or until a worker/acceptor wakes us) when a full
    /// pass makes no progress. Under load the loop never parks; idle it
    /// costs one wakeup per park interval.
    fn event_loop(self: Arc<Self>) {
        let mut conns: Vec<ServerConn> = Vec::new();
        let mut next_conn_id: u64 = 0;
        // Per-read ceiling, sized for the bulk plane: megabyte slabs
        // arrive in a handful of reads instead of sixteen, and the loop
        // visits each connection that much less often per byte moved.
        const READ_CHUNK: usize = 256 << 10;
        loop {
            let mut progressed = false;

            // New connections, registered nonblocking.
            {
                let mut incoming = self.incoming.lock().unwrap();
                for stream in incoming.drain(..) {
                    if stream.set_nonblocking(true).is_err() {
                        self.live_conns.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    next_conn_id += 1;
                    conns.push(ServerConn {
                        id: next_conn_id,
                        stream,
                        decoder: FrameDecoder::with_max_payload(self.config.max_payload),
                        out: Vec::new(),
                        out_pos: 0,
                        pending_cost: 0,
                        paused: false,
                        closed: false,
                        joined: false,
                    });
                    progressed = true;
                }
            }

            // Completed dispatches into per-connection write buffers.
            {
                let mut completed = self.completed.lock().unwrap();
                for (conn_id, cost, framed) in completed.drain(..) {
                    progressed = true;
                    let Some(conn) = conns.iter_mut().find(|c| c.id == conn_id && !c.closed) else {
                        continue; // connection died mid-dispatch
                    };
                    conn.pending_cost = conn.pending_cost.saturating_sub(cost);
                    if framed.is_empty() {
                        // Close sentinel: undecodable payload or oversized
                        // reply — hang up, like the blocking server.
                        conn.closed = true;
                        continue;
                    }
                    conn.out.extend_from_slice(&framed);
                    self.dispatched.fetch_add(1, Ordering::Relaxed);
                }
            }

            let shutting_down = self.shutting_down.load(Ordering::SeqCst);

            for conn in conns.iter_mut() {
                if conn.closed {
                    continue;
                }
                // Flush pending replies (nonblocking).
                while conn.out_pos < conn.out.len() {
                    match conn.stream.write(&conn.out[conn.out_pos..]) {
                        Ok(0) => {
                            conn.closed = true;
                            break;
                        }
                        Ok(n) => {
                            conn.out_pos += n;
                            progressed = true;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.closed = true;
                            break;
                        }
                    }
                }
                if conn.out_pos == conn.out.len() && conn.out_pos > 0 {
                    conn.out.clear();
                    conn.out_pos = 0;
                }
                if conn.closed || shutting_down {
                    continue;
                }

                // Backpressure: a connection whose replies aren't draining
                // gets no further reads until the backlog clears.
                conn.paused = conn.backlog() > self.config.write_buffer_cap;
                if conn.paused {
                    continue;
                }

                // Read whatever is ready, straight into the decoder's
                // buffer — no scratch hop, the payload bytes are copied
                // exactly once between socket and frame.
                loop {
                    match conn.decoder.fill_from(&mut conn.stream, READ_CHUNK) {
                        Ok(0) => {
                            conn.closed = true;
                            break;
                        }
                        Ok(_) => {
                            progressed = true;
                            if !self.drain_frames(conn) {
                                break;
                            }
                            // Keep reading only while the backlog is sane;
                            // a huge burst re-checks backpressure next pass.
                            if conn.backlog() > self.config.write_buffer_cap {
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            conn.closed = true;
                            break;
                        }
                    }
                }
            }

            // Reap closed connections. A joined connection's death IS the
            // rank-death signal: report it before the conn is forgotten.
            let before = conns.len();
            let session_sink = if conns.iter().any(|c| c.closed && c.joined) {
                self.session_sink.lock().unwrap().clone()
            } else {
                None
            };
            conns.retain(|c| {
                if c.closed {
                    let _ = c.stream.shutdown(Shutdown::Both);
                    if c.joined {
                        if let Some(sink) = &session_sink {
                            sink.disconnected(c.id);
                        }
                    }
                }
                !c.closed
            });
            if conns.len() != before {
                self.live_conns
                    .fetch_sub(before - conns.len(), Ordering::SeqCst);
                progressed = true;
            }

            // Publish depth metrics once per pass (cheap stores).
            self.metrics
                .set_queued_bytes(conns.iter().map(|c| c.backlog() as u64).sum());
            self.metrics
                .set_paused_connections(conns.iter().filter(|c| c.paused).count() as u64);

            if shutting_down {
                // Drain phase: exit once nothing is left to flush (or the
                // peers are gone). Workers were already told to stop.
                for conn in &conns {
                    let _ = conn.stream.shutdown(Shutdown::Both);
                }
                return;
            }

            if !progressed {
                let mut woken = self.wake.lock().unwrap();
                if !*woken {
                    // Park briefly: worker completions and new accepts
                    // set the flag; incoming bytes on nonblocking sockets
                    // cannot, so the timeout is the poll interval.
                    let (guard, _) = self
                        .wake_cv
                        .wait_timeout(woken, Duration::from_micros(200))
                        .unwrap();
                    woken = guard;
                }
                *woken = false;
            }
        }
    }

    /// Decodes every complete frame buffered on `conn`; returns `false`
    /// when the connection must close (violation or armed fault).
    fn drain_frames(&self, conn: &mut ServerConn) -> bool {
        loop {
            match conn.decoder.next_frame() {
                Ok(Some(Frame {
                    kind:
                        kind @ (FrameKind::Request
                        | FrameKind::Bulk
                        | FrameKind::Join
                        | FrameKind::Leave),
                    request_id,
                    context,
                    payload,
                })) => {
                    if kind == FrameKind::Bulk && self.bulk_sink.lock().unwrap().is_none() {
                        // Data-plane frame at a server with no data plane:
                        // protocol violation, same as a client reply.
                        self.metrics.record_protocol_violation();
                        conn.closed = true;
                        return false;
                    }
                    if matches!(kind, FrameKind::Join | FrameKind::Leave)
                        && self.session_sink.lock().unwrap().is_none()
                    {
                        // Fleet frame at a server with no fleet: protocol
                        // violation, same blast radius as above.
                        self.metrics.record_protocol_violation();
                        conn.closed = true;
                        return false;
                    }
                    if kind == FrameKind::Join {
                        // Marked at decode time, not dispatch time, so a
                        // death between the two is still reported.
                        conn.joined = true;
                    }
                    if self.should_drop() {
                        self.dropped_mid_call.fetch_add(1, Ordering::Relaxed);
                        cca_obs::trace_instant("rpc.mux.injected_drop");
                        conn.closed = true;
                        return false;
                    }
                    self.metrics.record_begin();
                    // Charge at least the header so a flood of empty
                    // requests still accumulates backlog. Bulk frames
                    // charge their full slab, so the write-buffer cap
                    // bounds in-memory payload per connection for the
                    // data plane exactly as for replies.
                    let cost = payload.len() + FRAME_HEADER_LEN;
                    conn.pending_cost += cost;
                    self.jobs.lock().unwrap().jobs.push_back(Job {
                        conn_id: conn.id,
                        request_id,
                        kind,
                        context,
                        payload,
                        cost,
                    });
                    self.jobs_cv.notify_one();
                }
                Ok(Some(_)) => {
                    // A reply frame from a client: mux violation — this
                    // connection dies, others are untouched.
                    self.metrics.record_protocol_violation();
                    conn.closed = true;
                    return false;
                }
                Ok(None) => return true,
                Err(_) => {
                    // Framing violation: no resync point, hang up.
                    conn.closed = true;
                    return false;
                }
            }
        }
    }

    /// Stops the server: closes the listener path, tells workers and the
    /// event loop to exit, closes every live connection, joins every
    /// thread. Returns the number of threads joined; idempotent — later
    /// calls return 0.
    pub fn shutdown(&self) -> usize {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return 0;
        }
        // Unblock the accept thread.
        let _ = TcpStream::connect(self.local_addr);
        // Tell the workers to finish the queue and exit.
        {
            let mut queue = self.jobs.lock().unwrap();
            queue.shutting_down = true;
        }
        self.jobs_cv.notify_all();
        self.wake_event_loop();
        let mut joined = 0;
        if let Some(h) = self.accept_thread.lock().unwrap().take() {
            let _ = h.join();
            joined += 1;
        }
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
            joined += 1;
        }
        if let Some(h) = self.event_thread.lock().unwrap().take() {
            let _ = h.join();
            joined += 1;
        }
        joined
    }
}

impl Drop for MuxServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;
    use crate::orb::{ObjRef, Orb};
    use cca_sidl::{DynObject, DynValue};

    struct Doubler;
    impl DynObject for Doubler {
        fn sidl_type(&self) -> &str {
            "demo.Doubler"
        }
        fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
            match method {
                "double" => Ok(DynValue::Double(args[0].as_double()? * 2.0)),
                other => Err(SidlError::invoke(format!("no method '{other}'"))),
            }
        }
    }

    fn serve() -> (Arc<MuxServer>, Arc<Orb>) {
        let orb = Orb::new();
        orb.register("doubler", Arc::new(Doubler));
        let server = MuxServer::bind("127.0.0.1:0", Arc::clone(&orb) as Arc<dyn Dispatcher>)
            .expect("bind ephemeral port");
        (server, orb)
    }

    #[test]
    fn invocation_crosses_the_mux_stack() {
        let (server, _orb) = serve();
        let transport = Arc::new(MuxTransport::new(server.local_addr().to_string()));
        let objref = ObjRef::new("doubler", Arc::clone(&transport) as Arc<dyn Transport>);
        let r = objref
            .invoke("double", vec![DynValue::Double(21.0)])
            .unwrap();
        assert!(matches!(r, DynValue::Double(v) if v == 42.0));
        assert!(server.shutdown() >= 3);
        assert_eq!(server.dispatched(), 1);
    }

    #[test]
    fn many_pipelined_calls_share_one_socket() {
        let (server, _orb) = serve();
        let transport =
            Arc::new(MuxTransport::new(server.local_addr().to_string()).with_connections(1));
        let objref = ObjRef::new("doubler", Arc::clone(&transport) as Arc<dyn Transport>);
        for i in 0..100 {
            let r = objref
                .invoke("double", vec![DynValue::Double(i as f64)])
                .unwrap();
            assert!(matches!(r, DynValue::Double(v) if v == 2.0 * i as f64));
        }
        assert_eq!(transport.metrics().dials(), 1, "one socket, 100 calls");
        assert_eq!(server.connections_accepted(), 1);
        server.shutdown();
        assert_eq!(server.dispatched(), 100);
    }

    #[test]
    fn dial_failure_is_a_typed_connection_error() {
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let t = MuxTransport::new(dead.to_string());
        let e = t.call(Bytes::from_static(b"x")).unwrap_err();
        match e {
            SidlError::UserException { exception_type, .. } => {
                assert_eq!(exception_type, CONNECTION_EXCEPTION_TYPE);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(t.live_connections(), 0);
    }

    /// A fake server that reads request frames and answers them however
    /// `reply_for` says — the tool for protocol-violation tests.
    fn hostile_server(
        reply_for: impl Fn(u64) -> Vec<(u64, Vec<u8>)> + Send + 'static,
    ) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                while let Ok(Some(frame)) = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD) {
                    for (id, payload) in reply_for(frame.request_id) {
                        if write_frame(
                            &mut stream,
                            FrameKind::Reply,
                            id,
                            &payload,
                            DEFAULT_MAX_PAYLOAD,
                        )
                        .is_err()
                        {
                            break;
                        }
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn unknown_request_id_kills_only_that_connection() {
        // Every reply bears a fabricated id the client never issued.
        let addr = hostile_server(|id| vec![(id + 1_000_000, b"boo".to_vec())]);
        let t = MuxTransport::new(addr.to_string()).with_connections(1);
        let e = t.call(Bytes::from_static(b"ping")).unwrap_err();
        match &e {
            SidlError::UserException {
                exception_type,
                message,
            } => {
                assert_eq!(exception_type, CONNECTION_EXCEPTION_TYPE);
                assert!(
                    message.contains("unknown or already-completed"),
                    "{message}"
                );
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(t.mux_metrics().protocol_violations(), 1);
        // The transport heals by re-dialing a fresh connection: the next
        // call fails the same way (server is still hostile) but on a new
        // socket, proving the poisoned connection was not reused.
        let _ = t.call(Bytes::from_static(b"ping")).unwrap_err();
        assert_eq!(t.metrics().dials(), 2);
    }

    #[test]
    fn duplicate_reply_id_is_a_violation_that_fails_in_flight_calls() {
        // Requests are answered correctly, then answered AGAIN: the second
        // delivery hits an already-completed id.
        let addr = hostile_server(|id| vec![(id, b"first".to_vec()), (id, b"second".to_vec())]);
        let t = Arc::new(MuxTransport::new(addr.to_string()).with_connections(1));
        // Two calls in flight on one connection. The first gets its reply;
        // the duplicate delivery then hits an already-completed id and
        // kills the connection, failing the second call with a typed
        // error — never cross-delivering "second" to it.
        let a = t.submit(Bytes::from_static(b"a")).unwrap();
        let b = t.submit(Bytes::from_static(b"b"));
        assert_eq!(a.wait().unwrap(), Bytes::from_static(b"first"));
        // Depending on scheduling, `b` failed at submit (connection
        // already torn down) or fails at wait; either way the error is
        // the typed connection failure.
        let e = match b {
            Ok(pending) => pending.wait().unwrap_err(),
            Err(e) => e,
        };
        match e {
            SidlError::UserException { exception_type, .. } => {
                assert_eq!(exception_type, CONNECTION_EXCEPTION_TYPE);
            }
            other => panic!("{other:?}"),
        }
        assert!(t.mux_metrics().protocol_violations() >= 1);
    }

    #[test]
    fn connection_death_fans_the_error_to_every_in_flight_call() {
        // A server that swallows exactly five requests without replying,
        // then slams the door — so the door slams only once all five
        // calls are in flight.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            for _ in 0..5 {
                let _ = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD);
            }
            let _ = stream.shutdown(Shutdown::Both);
        });
        let t = MuxTransport::new(addr.to_string()).with_connections(1);
        let pending: Vec<_> = (0..5)
            .map(|_| t.submit(Bytes::from_static(b"payload")).unwrap())
            .collect();
        for p in pending {
            let e = p.wait().unwrap_err();
            match e {
                SidlError::UserException { exception_type, .. } => {
                    assert_eq!(exception_type, CONNECTION_EXCEPTION_TYPE);
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(
            t.mux_metrics().peak_in_flight(),
            5,
            "all five were concurrently in flight"
        );
        assert_eq!(t.mux_metrics().in_flight(), 0, "fan-out drained the gauge");
    }

    #[test]
    fn deadline_abandons_the_call_without_killing_the_connection() {
        struct Sleepy;
        impl Dispatcher for Sleepy {
            fn dispatch(&self, request: Bytes) -> Result<Bytes, SidlError> {
                std::thread::sleep(Duration::from_millis(80));
                Ok(request)
            }
        }
        let server = MuxServer::bind("127.0.0.1:0", Arc::new(Sleepy)).unwrap();
        let t = MuxTransport::new(server.local_addr().to_string())
            .with_connections(1)
            .with_io_timeout(Duration::from_millis(10));
        let e = t.call(Bytes::from_static(b"slow")).unwrap_err();
        match e {
            SidlError::UserException { exception_type, .. } => {
                assert_eq!(exception_type, DEADLINE_EXCEPTION_TYPE);
            }
            other => panic!("{other:?}"),
        }
        // The late reply lands on a tombstone: the connection survives and
        // the next (patient) call reuses it.
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(t.live_connections(), 1, "tombstoned reply kept the socket");
        assert_eq!(
            t.mux_metrics().protocol_violations(),
            0,
            "a late reply to an abandoned call is not a violation"
        );
        server.shutdown();
    }

    #[test]
    fn backpressure_pauses_reading_a_connection_that_wont_drain() {
        // Echo large payloads through a tiny write buffer while the client
        // refuses to read: the server must stop reading (dispatch stalls)
        // instead of buffering without bound, then finish once the client
        // drains.
        struct Echo;
        impl Dispatcher for Echo {
            fn dispatch(&self, request: Bytes) -> Result<Bytes, SidlError> {
                Ok(request)
            }
        }
        let server = MuxServer::bind_with(
            "127.0.0.1:0",
            Arc::new(Echo),
            MuxServerConfig {
                write_buffer_cap: 64 << 10,
                ..MuxServerConfig::default()
            },
        )
        .unwrap();

        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Enough volume that loopback kernel buffers cannot absorb it all:
        // the server must either buffer it (what the cap forbids) or pause.
        // With autotuning, each direction can swallow up to wmem_max +
        // rmem_max (32 MiB rmem here), so the request and reply paths
        // together can hide ~70 MiB — 128 MiB keeps the stall observable.
        let payload = vec![7u8; 128 << 10];
        const SENT: u64 = 1024;
        // Write from a helper thread: once the server pauses reads and the
        // kernel buffers fill, these writes block — exactly the condition
        // under test — and unblock when the main thread starts draining.
        let mut write_half = stream.try_clone().unwrap();
        let body = payload.clone();
        let writer = std::thread::spawn(move || {
            for id in 0..SENT {
                write_frame(
                    &mut write_half,
                    FrameKind::Request,
                    id,
                    &body,
                    DEFAULT_MAX_PAYLOAD,
                )
                .unwrap();
            }
        });
        // Give the server time to read as much as it will: with a 64 KiB
        // cap on 128 KiB echoes and a stubborn client, it cannot come
        // close to finishing all 1024.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics().pause_events() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            server.metrics().pause_events() > 0,
            "a non-draining connection must pause reads"
        );
        assert!(
            server.dispatched() < SENT,
            "dispatch must stall behind backpressure, got {}",
            server.dispatched()
        );

        // Drain: read every reply; the server resumes and finishes them all.
        let mut got = 0u64;
        while got < SENT {
            let frame = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD)
                .unwrap()
                .expect("reply");
            assert_eq!(frame.payload.len(), payload.len());
            got += 1;
        }
        writer.join().unwrap();
        server.shutdown();
        assert_eq!(server.dispatched(), SENT);
    }

    #[test]
    fn accept_bound_refuses_excess_connections() {
        struct Echo;
        impl Dispatcher for Echo {
            fn dispatch(&self, request: Bytes) -> Result<Bytes, SidlError> {
                Ok(request)
            }
        }
        let server = MuxServer::bind_with(
            "127.0.0.1:0",
            Arc::new(Echo),
            MuxServerConfig {
                max_connections: 2,
                ..MuxServerConfig::default()
            },
        )
        .unwrap();
        let keep: Vec<TcpStream> = (0..2)
            .map(|_| TcpStream::connect(server.local_addr()).unwrap())
            .collect();
        // Wait until both are registered live.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.connections_accepted() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Excess dials connect at the TCP level but are refused (closed)
        // without registration.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.rejected_over_capacity() == 0 && Instant::now() < deadline {
            let _ = TcpStream::connect(server.local_addr());
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(server.rejected_over_capacity() > 0);
        assert_eq!(server.connections_accepted(), 2);
        drop(keep);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_all_threads() {
        let (server, _orb) = serve();
        let transport = Arc::new(MuxTransport::new(server.local_addr().to_string()));
        let objref = ObjRef::new("doubler", Arc::clone(&transport) as Arc<dyn Transport>);
        objref
            .invoke("double", vec![DynValue::Double(1.0)])
            .unwrap();
        // accept + event loop + 4 default workers.
        assert_eq!(server.shutdown(), 6);
        assert_eq!(server.shutdown(), 0);
        assert!(objref
            .invoke("double", vec![DynValue::Double(1.0)])
            .is_err());
    }
}
