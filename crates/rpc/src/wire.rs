//! CDR-flavoured binary marshaling of dynamic values and RPC messages.
//!
//! The encoding is little-endian, length-prefixed, and self-describing via
//! a one-byte tag per value — structurally what CORBA's CDR/GIOP does for a
//! `DII` (dynamic invocation interface) request. The point is not wire
//! compatibility with IIOP but *cost* fidelity: every argument of every
//! call through the ORB pays serialize + copy + deserialize, which is the
//! overhead source the paper's §3 names.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cca_data::{Complex32, Complex64, NdArray, Order};
use cca_sidl::{DynValue, SidlError};

/// Tag bytes for [`DynValue`] variants.
mod tag {
    pub const VOID: u8 = 0;
    pub const BOOL: u8 = 1;
    pub const CHAR: u8 = 2;
    pub const INT: u8 = 3;
    pub const LONG: u8 = 4;
    pub const FLOAT: u8 = 5;
    pub const DOUBLE: u8 = 6;
    pub const FCOMPLEX: u8 = 7;
    pub const DCOMPLEX: u8 = 8;
    pub const STR: u8 = 9;
    pub const OPAQUE: u8 = 10;
    pub const DOUBLE_ARRAY: u8 = 11;
    pub const LONG_ARRAY: u8 = 12;
    pub const DCOMPLEX_ARRAY: u8 = 13;
    pub const ENUM: u8 = 14;
}

/// A marshaled request: "call `operation` on the object registered under
/// `object_key` with these arguments".
#[derive(Debug, Clone)]
pub struct Request {
    /// Correlation id chosen by the caller.
    pub request_id: u64,
    /// The target object's registration key.
    pub object_key: String,
    /// Operation (method) name — CORBA dispatches by name, so do we.
    pub operation: String,
    /// Positional arguments (no `PartialEq`: object references compare
    /// structurally via re-encoding in tests instead).
    pub args: Vec<DynValue>,
}

/// A marshaled reply.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Correlation id copied from the request.
    pub request_id: u64,
    /// The outcome: a value, or a (exception type, message) pair.
    pub result: Result<DynValue, (String, String)>,
}

/// Marshals one value.
pub fn encode_value(buf: &mut BytesMut, v: &DynValue) -> Result<(), SidlError> {
    match v {
        DynValue::Void => buf.put_u8(tag::VOID),
        DynValue::Bool(b) => {
            buf.put_u8(tag::BOOL);
            buf.put_u8(*b as u8);
        }
        DynValue::Char(c) => {
            buf.put_u8(tag::CHAR);
            buf.put_u32_le(*c as u32);
        }
        DynValue::Int(x) => {
            buf.put_u8(tag::INT);
            buf.put_i32_le(*x);
        }
        DynValue::Long(x) => {
            buf.put_u8(tag::LONG);
            buf.put_i64_le(*x);
        }
        DynValue::Float(x) => {
            buf.put_u8(tag::FLOAT);
            buf.put_f32_le(*x);
        }
        DynValue::Double(x) => {
            buf.put_u8(tag::DOUBLE);
            buf.put_f64_le(*x);
        }
        DynValue::Fcomplex(z) => {
            buf.put_u8(tag::FCOMPLEX);
            buf.put_f32_le(z.re);
            buf.put_f32_le(z.im);
        }
        DynValue::Dcomplex(z) => {
            buf.put_u8(tag::DCOMPLEX);
            buf.put_f64_le(z.re);
            buf.put_f64_le(z.im);
        }
        DynValue::Str(s) => {
            buf.put_u8(tag::STR);
            put_str(buf, s);
        }
        DynValue::Opaque(x) => {
            buf.put_u8(tag::OPAQUE);
            buf.put_u64_le(*x);
        }
        DynValue::DoubleArray(a) => {
            buf.put_u8(tag::DOUBLE_ARRAY);
            put_array_header(buf, a.lower(), a.extents());
            for x in a.as_slice() {
                buf.put_f64_le(*x);
            }
        }
        DynValue::LongArray(a) => {
            buf.put_u8(tag::LONG_ARRAY);
            put_array_header(buf, a.lower(), a.extents());
            for x in a.as_slice() {
                buf.put_i64_le(*x);
            }
        }
        DynValue::DcomplexArray(a) => {
            buf.put_u8(tag::DCOMPLEX_ARRAY);
            put_array_header(buf, a.lower(), a.extents());
            for z in a.as_slice() {
                buf.put_f64_le(z.re);
                buf.put_f64_le(z.im);
            }
        }
        DynValue::Enum(ty, value) => {
            buf.put_u8(tag::ENUM);
            put_str(buf, ty);
            buf.put_i64_le(*value);
        }
        DynValue::Object(_) => {
            return Err(SidlError::invoke(
                "object references cannot be marshaled by value; register the object \
                 with the ORB and pass its key"
                    .to_string(),
            ));
        }
    }
    Ok(())
}

/// Unmarshals one value.
pub fn decode_value(buf: &mut Bytes) -> Result<DynValue, SidlError> {
    let t = get_u8(buf)?;
    Ok(match t {
        tag::VOID => DynValue::Void,
        tag::BOOL => DynValue::Bool(get_u8(buf)? != 0),
        tag::CHAR => {
            let c = get_u32(buf)?;
            DynValue::Char(char::from_u32(c).ok_or_else(|| bad("invalid char"))?)
        }
        tag::INT => DynValue::Int(get_i32(buf)?),
        tag::LONG => DynValue::Long(get_i64(buf)?),
        tag::FLOAT => DynValue::Float(f32::from_bits(get_u32(buf)?)),
        tag::DOUBLE => DynValue::Double(f64::from_bits(get_u64(buf)?)),
        tag::FCOMPLEX => DynValue::Fcomplex(Complex32::new(
            f32::from_bits(get_u32(buf)?),
            f32::from_bits(get_u32(buf)?),
        )),
        tag::DCOMPLEX => DynValue::Dcomplex(Complex64::new(
            f64::from_bits(get_u64(buf)?),
            f64::from_bits(get_u64(buf)?),
        )),
        tag::STR => DynValue::Str(get_str(buf)?),
        tag::OPAQUE => DynValue::Opaque(get_u64(buf)?),
        tag::DOUBLE_ARRAY => {
            let (lower, extents, n) = get_array_header(buf)?;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(f64::from_bits(get_u64(buf)?));
            }
            DynValue::DoubleArray(make_array(&lower, &extents, data)?)
        }
        tag::LONG_ARRAY => {
            let (lower, extents, n) = get_array_header(buf)?;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(get_i64(buf)?);
            }
            DynValue::LongArray(make_array(&lower, &extents, data)?)
        }
        tag::DCOMPLEX_ARRAY => {
            let (lower, extents, n) = get_array_header(buf)?;
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(Complex64::new(
                    f64::from_bits(get_u64(buf)?),
                    f64::from_bits(get_u64(buf)?),
                ));
            }
            DynValue::DcomplexArray(make_array(&lower, &extents, data)?)
        }
        tag::ENUM => {
            let ty = get_str(buf)?;
            DynValue::Enum(ty, get_i64(buf)?)
        }
        other => return Err(bad(&format!("unknown value tag {other}"))),
    })
}

/// Marshals a request message.
pub fn encode_request(req: &Request) -> Result<Bytes, SidlError> {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u64_le(req.request_id);
    put_str(&mut buf, &req.object_key);
    put_str(&mut buf, &req.operation);
    buf.put_u32_le(req.args.len() as u32);
    for a in &req.args {
        encode_value(&mut buf, a)?;
    }
    Ok(buf.freeze())
}

/// Unmarshals a request message.
pub fn decode_request(mut bytes: Bytes) -> Result<Request, SidlError> {
    let request_id = get_u64(&mut bytes)?;
    let object_key = get_str(&mut bytes)?;
    let operation = get_str(&mut bytes)?;
    let n = get_u32(&mut bytes)? as usize;
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        args.push(decode_value(&mut bytes)?);
    }
    Ok(Request {
        request_id,
        object_key,
        operation,
        args,
    })
}

/// Marshals a reply message.
pub fn encode_reply(reply: &Reply) -> Result<Bytes, SidlError> {
    let mut buf = BytesMut::with_capacity(32);
    buf.put_u64_le(reply.request_id);
    match &reply.result {
        Ok(v) => {
            buf.put_u8(0);
            encode_value(&mut buf, v)?;
        }
        Err((ty, msg)) => {
            buf.put_u8(1);
            put_str(&mut buf, ty);
            put_str(&mut buf, msg);
        }
    }
    Ok(buf.freeze())
}

/// Unmarshals a reply message.
pub fn decode_reply(mut bytes: Bytes) -> Result<Reply, SidlError> {
    let request_id = get_u64(&mut bytes)?;
    let is_err = get_u8(&mut bytes)? != 0;
    let result = if is_err {
        Err((get_str(&mut bytes)?, get_str(&mut bytes)?))
    } else {
        Ok(decode_value(&mut bytes)?)
    };
    Ok(Reply { request_id, result })
}

// ---- helpers -----------------------------------------------------------

fn bad(msg: &str) -> SidlError {
    SidlError::invoke(format!("wire format error: {msg}"))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, SidlError> {
    let n = get_u32(buf)? as usize;
    if buf.remaining() < n {
        return Err(bad("truncated string"));
    }
    let raw = buf.split_to(n);
    String::from_utf8(raw.to_vec()).map_err(|_| bad("invalid utf-8"))
}

fn put_array_header(buf: &mut BytesMut, lower: &[isize], extents: &[usize]) {
    buf.put_u8(extents.len() as u8);
    for (&l, &e) in lower.iter().zip(extents) {
        buf.put_i64_le(l as i64);
        buf.put_u64_le(e as u64);
    }
}

#[allow(clippy::type_complexity)]
fn get_array_header(buf: &mut Bytes) -> Result<(Vec<isize>, Vec<usize>, usize), SidlError> {
    let rank = get_u8(buf)? as usize;
    if rank == 0 || rank > 7 {
        return Err(bad(&format!("invalid array rank {rank}")));
    }
    let mut lower = Vec::with_capacity(rank);
    let mut extents = Vec::with_capacity(rank);
    for _ in 0..rank {
        lower.push(get_i64(buf)? as isize);
        extents.push(get_u64(buf)? as usize);
    }
    let n: usize = extents.iter().product();
    if n > (1 << 30) {
        return Err(bad("array too large"));
    }
    Ok((lower, extents, n))
}

fn make_array<T: Clone>(
    lower: &[isize],
    extents: &[usize],
    data: Vec<T>,
) -> Result<NdArray<T>, SidlError> {
    NdArray::with_lower(lower, extents, data, Order::ColumnMajor)
        .map_err(|e| bad(&format!("array reconstruction failed: {e}")))
}

macro_rules! getter {
    ($name:ident, $ty:ty, $get:ident, $n:expr) => {
        fn $name(buf: &mut Bytes) -> Result<$ty, SidlError> {
            if buf.remaining() < $n {
                return Err(bad(concat!("truncated ", stringify!($ty))));
            }
            Ok(buf.$get())
        }
    };
}
getter!(get_u8, u8, get_u8, 1);
getter!(get_u32, u32, get_u32_le, 4);
getter!(get_i32, i32, get_i32_le, 4);
getter!(get_u64, u64, get_u64_le, 8);
getter!(get_i64, i64, get_i64_le, 8);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: DynValue) -> DynValue {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, &v).unwrap();
        let mut bytes = buf.freeze();
        let back = decode_value(&mut bytes).unwrap();
        assert!(!bytes.has_remaining(), "trailing bytes after decode");
        back
    }

    #[test]
    fn scalar_round_trips() {
        assert!(matches!(round_trip(DynValue::Void), DynValue::Void));
        assert!(matches!(
            round_trip(DynValue::Bool(true)),
            DynValue::Bool(true)
        ));
        assert!(matches!(
            round_trip(DynValue::Char('λ')),
            DynValue::Char('λ')
        ));
        assert!(matches!(round_trip(DynValue::Int(-5)), DynValue::Int(-5)));
        assert!(matches!(
            round_trip(DynValue::Long(1 << 60)),
            DynValue::Long(v) if v == 1 << 60
        ));
        assert!(matches!(round_trip(DynValue::Double(2.5)), DynValue::Double(v) if v == 2.5));
        assert!(matches!(round_trip(DynValue::Float(0.5)), DynValue::Float(v) if v == 0.5));
        assert!(matches!(
            round_trip(DynValue::Opaque(0xdeadbeef)),
            DynValue::Opaque(0xdeadbeef)
        ));
    }

    #[test]
    fn nan_survives_marshaling() {
        match round_trip(DynValue::Double(f64::NAN)) {
            DynValue::Double(v) => assert!(v.is_nan()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn complex_and_enum_round_trip() {
        match round_trip(DynValue::Dcomplex(Complex64::new(1.5, -2.5))) {
            DynValue::Dcomplex(z) => assert_eq!(z, Complex64::new(1.5, -2.5)),
            other => panic!("{other:?}"),
        }
        match round_trip(DynValue::Enum("esi.Status".into(), 9)) {
            DynValue::Enum(t, v) => {
                assert_eq!(t, "esi.Status");
                assert_eq!(v, 9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn string_round_trip_including_unicode() {
        match round_trip(DynValue::Str("héllo wörld".into())) {
            DynValue::Str(s) => assert_eq!(s, "héllo wörld"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn array_round_trip_preserves_shape_and_bounds() {
        let a = NdArray::with_lower(
            &[-1, 0],
            &[2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            Order::ColumnMajor,
        )
        .unwrap();
        match round_trip(DynValue::DoubleArray(a.clone())) {
            DynValue::DoubleArray(b) => {
                assert_eq!(b.lower(), a.lower());
                assert_eq!(b.extents(), a.extents());
                assert_eq!(b.as_slice(), a.as_slice());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn object_refs_are_rejected() {
        struct Dummy;
        impl cca_sidl::DynObject for Dummy {
            fn sidl_type(&self) -> &str {
                "x"
            }
            fn invoke(&self, _: &str, _: Vec<DynValue>) -> Result<DynValue, SidlError> {
                Ok(DynValue::Void)
            }
        }
        let mut buf = BytesMut::new();
        let v = DynValue::Object(std::sync::Arc::new(Dummy));
        assert!(encode_value(&mut buf, &v).is_err());
    }

    #[test]
    fn request_reply_round_trip() {
        let req = Request {
            request_id: 77,
            object_key: "mesh0/field".into(),
            operation: "getField".into(),
            args: vec![DynValue::Str("pressure".into()), DynValue::Int(3)],
        };
        let bytes = encode_request(&req).unwrap();
        let back = decode_request(bytes).unwrap();
        assert_eq!(back.request_id, 77);
        assert_eq!(back.object_key, "mesh0/field");
        assert_eq!(back.operation, "getField");
        assert_eq!(back.args.len(), 2);

        let ok = Reply {
            request_id: 77,
            result: Ok(DynValue::Double(3.25)),
        };
        let back = decode_reply(encode_reply(&ok).unwrap()).unwrap();
        assert!(matches!(back.result, Ok(DynValue::Double(v)) if v == 3.25));

        let err = Reply {
            request_id: 78,
            result: Err(("esi.SolveFailure".into(), "diverged".into())),
        };
        let back = decode_reply(encode_reply(&err).unwrap()).unwrap();
        assert_eq!(
            back.result.unwrap_err(),
            ("esi.SolveFailure".to_string(), "diverged".to_string())
        );
    }

    #[test]
    fn truncated_messages_error_cleanly() {
        let req = Request {
            request_id: 1,
            object_key: "k".into(),
            operation: "op".into(),
            args: vec![DynValue::Long(5)],
        };
        let bytes = encode_request(&req).unwrap();
        for cut in [0, 3, 8, bytes.len() - 1] {
            let partial = bytes.slice(0..cut);
            assert!(decode_request(partial).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn garbage_tags_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(200);
        assert!(decode_value(&mut buf.freeze()).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_scalar() -> impl Strategy<Value = DynValue> {
        prop_oneof![
            Just(DynValue::Void),
            any::<bool>().prop_map(DynValue::Bool),
            any::<i32>().prop_map(DynValue::Int),
            any::<i64>().prop_map(DynValue::Long),
            any::<f64>().prop_map(DynValue::Double),
            any::<u64>().prop_map(DynValue::Opaque),
            "[ -~]{0,32}".prop_map(DynValue::Str),
            (any::<f64>(), any::<f64>())
                .prop_map(|(re, im)| DynValue::Dcomplex(Complex64::new(re, im))),
            ("[a-z.]{1,12}", any::<i64>()).prop_map(|(t, v)| DynValue::Enum(t, v)),
        ]
    }

    fn arb_array() -> impl Strategy<Value = DynValue> {
        (1usize..=3)
            .prop_flat_map(|rank| {
                (
                    proptest::collection::vec(-3isize..3, rank),
                    proptest::collection::vec(1usize..4, rank),
                )
            })
            .prop_flat_map(|(lower, extents)| {
                let n: usize = extents.iter().product();
                proptest::collection::vec(any::<f64>(), n).prop_map(move |data| {
                    DynValue::DoubleArray(
                        NdArray::with_lower(&lower, &extents, data, Order::ColumnMajor).unwrap(),
                    )
                })
            })
    }

    fn values_equal(a: &DynValue, b: &DynValue) -> bool {
        // Structural equality via re-encoding (handles NaN bit patterns).
        let mut ba = BytesMut::new();
        let mut bb = BytesMut::new();
        encode_value(&mut ba, a).unwrap();
        encode_value(&mut bb, b).unwrap();
        ba == bb
    }

    proptest! {
        #[test]
        fn any_value_round_trips(v in prop_oneof![arb_scalar(), arb_array()]) {
            let mut buf = BytesMut::new();
            encode_value(&mut buf, &v).unwrap();
            let back = decode_value(&mut buf.freeze()).unwrap();
            prop_assert!(values_equal(&v, &back));
        }

        #[test]
        fn any_request_round_trips(
            id in any::<u64>(),
            key in "[a-z/]{1,16}",
            op in "[a-zA-Z]{1,12}",
            args in proptest::collection::vec(arb_scalar(), 0..5),
        ) {
            let req = Request { request_id: id, object_key: key, operation: op, args };
            let back = decode_request(encode_request(&req).unwrap()).unwrap();
            prop_assert_eq!(back.request_id, req.request_id);
            prop_assert_eq!(back.object_key, req.object_key);
            prop_assert_eq!(back.operation, req.operation);
            prop_assert_eq!(back.args.len(), req.args.len());
            for (a, b) in req.args.iter().zip(&back.args) {
                prop_assert!(values_equal(a, b));
            }
        }

        #[test]
        fn decoding_random_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = decode_request(Bytes::from(data.clone()));
            let _ = decode_reply(Bytes::from(data.clone()));
            let _ = decode_value(&mut Bytes::from(data));
        }
    }
}
