//! A real network transport: blocking TCP with framed messages.
//!
//! §4 of the paper spans "distributed computing" alongside same-process
//! direct connect; until now the ORB only shipped a loopback. This module
//! is the wire:
//!
//! * [`TcpServer`] — a threaded `std::net` server (vendor policy: no new
//!   deps). One accept thread, one handler thread per connection, each
//!   reading [`frame`](crate::frame)d requests and dispatching into the
//!   same [`Dispatcher`] the loopback uses — a servant cannot tell whether
//!   its caller is local or remote. [`TcpServer::shutdown`] closes every
//!   live socket and joins every thread it spawned.
//! * [`TcpTransport`] — the client side: a bounded connection pool
//!   (callers beyond the cap wait, they do not dial), per-call socket
//!   timeouts that surface as the existing `cca.rpc.DeadlineExceeded`
//!   exception (so `CallPolicy` deadlines and socket deadlines read the
//!   same), and connection failures surfaced as typed
//!   [`CONNECTION_EXCEPTION_TYPE`] errors — which feed the PR-3 circuit
//!   breaker exactly like a wedged local provider, and dialing fresh on
//!   the next call is the breaker's half-open probe.
//!
//! Fault injection for the hostile-network battery lives server-side:
//! [`TcpServer::set_fault_plan`] arms a seeded schedule that hangs up
//! *after* reading a request and *before* replying — the worst moment.

use crate::frame::{read_frame, write_frame, write_frame_with, FrameKind, DEFAULT_MAX_PAYLOAD};
use crate::transport::{Dispatcher, Transport};
use bytes::Bytes;
use cca_core::resilience::{SplitMix64, DEADLINE_EXCEPTION_TYPE};
use cca_obs::TransportMetrics;
use cca_sidl::SidlError;
use std::io::ErrorKind;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The SIDL exception type for transport-level connection failures: failed
/// dials, peers hanging up mid-call, and framing violations. Distinct from
/// dispatch errors (which arrive as marshaled replies) and from
/// [`DEADLINE_EXCEPTION_TYPE`] (socket timeouts), so a breaker observer or
/// a test can tell *how* the wire failed.
pub const CONNECTION_EXCEPTION_TYPE: &str = "cca.rpc.ConnectionFailure";

fn conn_err(message: impl Into<String>) -> SidlError {
    let message = message.into();
    // Failure path only: freeze the evidence while it is still fresh. A
    // disabled recorder (the default) returns without IO.
    if cca_obs::flight::enabled() {
        cca_obs::flight::record_incident("ConnectionFailure", &message);
    }
    SidlError::user(CONNECTION_EXCEPTION_TYPE, message)
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A blocking, threaded TCP server dispatching framed requests into a
/// [`Dispatcher`]. Connection lifecycle: accept → one handler thread →
/// read frames until EOF, error, or an armed fault fires.
pub struct TcpServer {
    local_addr: SocketAddr,
    dispatcher: Arc<dyn Dispatcher>,
    max_payload: u32,
    shutting_down: AtomicBool,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    /// `try_clone`d handles of live connections, so `shutdown` can unblock
    /// handler threads parked in `read`.
    conns: Mutex<Vec<TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    accepted: AtomicU64,
    dispatched: AtomicU64,
    dropped_mid_call: AtomicU64,
    drop_permille: AtomicU64,
    fault_draws: Mutex<SplitMix64>,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread. The returned server is live until [`shutdown`].
    ///
    /// [`shutdown`]: TcpServer::shutdown
    pub fn bind(
        addr: impl ToSocketAddrs,
        dispatcher: Arc<dyn Dispatcher>,
    ) -> std::io::Result<Arc<Self>> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let server = Arc::new(TcpServer {
            local_addr,
            dispatcher,
            max_payload: DEFAULT_MAX_PAYLOAD,
            shutting_down: AtomicBool::new(false),
            accept_thread: Mutex::new(None),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            accepted: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            dropped_mid_call: AtomicU64::new(0),
            drop_permille: AtomicU64::new(0),
            fault_draws: Mutex::new(SplitMix64::new(0)),
        });
        let for_accept = Arc::clone(&server);
        let handle = std::thread::Builder::new()
            .name(format!("cca-tcp-accept-{local_addr}"))
            .spawn(move || for_accept.accept_loop(listener))?;
        *server.accept_thread.lock().unwrap() = Some(handle);
        Ok(server)
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections accepted over the server's lifetime.
    pub fn connections_accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Requests dispatched *and replied to*.
    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Connections deliberately hung up mid-call by the fault plan.
    pub fn dropped_mid_call(&self) -> u64 {
        self.dropped_mid_call.load(Ordering::Relaxed)
    }

    /// Arms (or, with `drop_permille == 0`, disarms) the hostile-network
    /// fault plan: out of every 1000 requests (statistically),
    /// `drop_permille` have their connection closed after the request is
    /// read and before any reply is written. The schedule is a pure
    /// function of `seed` — the same contract as
    /// [`FaultTransport`](crate::resilient::FaultTransport), so the CI
    /// fault matrix replays identically per `CCA_FAULT_SEED`.
    pub fn set_fault_plan(&self, seed: u64, drop_permille: u64) {
        *self.fault_draws.lock().unwrap() = SplitMix64::new(seed);
        self.drop_permille.store(drop_permille, Ordering::SeqCst);
    }

    fn should_drop(&self) -> bool {
        let permille = self.drop_permille.load(Ordering::SeqCst);
        if permille == 0 {
            return false;
        }
        self.fault_draws.lock().unwrap().next_below(1000) < permille
    }

    fn accept_loop(self: Arc<Self>, listener: TcpListener) {
        for stream in listener.incoming() {
            if self.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let _ = stream.set_nodelay(true);
            self.accepted.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                self.conns.lock().unwrap().push(clone);
            }
            let me = Arc::clone(&self);
            let name = format!("cca-tcp-conn-{}", self.accepted.load(Ordering::Relaxed));
            match std::thread::Builder::new()
                .name(name)
                .spawn(move || me.handle_connection(stream))
            {
                Ok(h) => self.handlers.lock().unwrap().push(h),
                Err(_) => { /* spawn failed; the stream drops and the peer sees EOF */ }
            }
        }
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        let _span = cca_obs::span("rpc.tcp.serve");
        // The loop ends on a clean EOF at a frame boundary (`Ok(None)`) or
        // on a framing violation / io error: either way this connection is
        // done. Framing has no resync point, so violations cannot be
        // skipped.
        while let Ok(Some(frame)) = read_frame(&mut stream, self.max_payload) {
            if frame.kind != FrameKind::Request {
                break;
            }
            if self.should_drop() {
                self.dropped_mid_call.fetch_add(1, Ordering::Relaxed);
                cca_obs::trace_instant("rpc.tcp.injected_drop");
                let _ = stream.shutdown(Shutdown::Both);
                break;
            }
            // Dispatch errors here mean the *payload* was undecodable (the
            // dispatcher marshals servant errors into replies) — a protocol
            // violation, handled like a framing one: hang up.
            let reply = {
                // Adopt the caller's trace identity for the duration of the
                // dispatch: the ORB's dispatch span parents to the client's
                // call span across the wire.
                let _ctx = cca_obs::install_context(frame.context);
                match self.dispatcher.dispatch(frame.payload) {
                    Ok(r) => r,
                    Err(_) => break,
                }
            };
            if write_frame(
                &mut stream,
                FrameKind::Reply,
                frame.request_id,
                reply.as_slice(),
                self.max_payload,
            )
            .is_err()
            {
                break;
            }
            self.dispatched.fetch_add(1, Ordering::Relaxed);
        }
        // Close actively: `shutdown` registered a `try_clone` of this
        // stream, so merely dropping ours would leave the underlying
        // socket open and the peer waiting for an EOF that never comes.
        let _ = stream.shutdown(Shutdown::Both);
    }

    /// Stops the server: closes every live connection, unblocks and joins
    /// the accept thread and every handler thread. Returns the number of
    /// handler threads joined. Idempotent — later calls return 0.
    pub fn shutdown(&self) -> usize {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return 0;
        }
        for conn in self.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Wake the accept thread: it re-checks the flag after each accept.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_thread.lock().unwrap().take() {
            let _ = h.join();
        }
        // Connections registered between the drain above and the accept
        // thread exiting are closed now that no new ones can appear.
        for conn in self.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let handlers: Vec<_> = self.handlers.lock().unwrap().drain(..).collect();
        let joined = handlers.len();
        for h in handlers {
            let _ = h.join();
        }
        joined
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Default connection-pool bound.
pub const DEFAULT_POOL_SIZE: usize = 4;

struct PoolState {
    idle: Vec<TcpStream>,
    live: usize,
}

/// The client half: a [`Transport`] over TCP with a bounded connection
/// pool. Each call checks a connection out (dialing lazily up to the pool
/// bound, waiting when every connection is in flight), performs exactly one
/// framed request/reply exchange, and returns the connection — or discards
/// it on any error, so the next call dials fresh (the half-open probe).
pub struct TcpTransport {
    addr: String,
    max_conns: usize,
    io_timeout: Option<Duration>,
    max_payload: u32,
    pool: Mutex<PoolState>,
    returned: Condvar,
    next_frame_id: AtomicU64,
    metrics: TransportMetrics,
}

impl TcpTransport {
    /// A transport dialing `addr` lazily, with the default pool bound and
    /// no socket timeout. Construction never touches the network.
    pub fn new(addr: impl Into<String>) -> Self {
        TcpTransport {
            addr: addr.into(),
            max_conns: DEFAULT_POOL_SIZE,
            io_timeout: None,
            max_payload: DEFAULT_MAX_PAYLOAD,
            pool: Mutex::new(PoolState {
                idle: Vec::new(),
                live: 0,
            }),
            returned: Condvar::new(),
            next_frame_id: AtomicU64::new(1),
            metrics: TransportMetrics::default(),
        }
    }

    /// Caps the pool at `max_conns` live connections (minimum 1).
    pub fn with_pool_size(mut self, max_conns: usize) -> Self {
        self.max_conns = max_conns.max(1);
        self
    }

    /// Bounds every socket read and write. A timed-out call surfaces as a
    /// [`DEADLINE_EXCEPTION_TYPE`] user exception — the same error a
    /// [`DeadlineTransport`](crate::resilient::DeadlineTransport) raises,
    /// so `CcaError::DeadlineExceeded` and breaker accounting apply
    /// unchanged.
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = Some(timeout);
        self
    }

    /// Overrides the frame payload cap (both directions).
    pub fn with_max_payload(mut self, max_payload: u32) -> Self {
        self.max_payload = max_payload;
        self
    }

    /// The server address this transport dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The pool bound.
    pub fn pool_size(&self) -> usize {
        self.max_conns
    }

    /// Client-side transport metrics: socket dials, connections discarded
    /// after errors, and (counters enabled) bytes/round trips/latency.
    pub fn metrics(&self) -> &TransportMetrics {
        &self.metrics
    }

    /// Connections currently live (idle + checked out).
    pub fn live_connections(&self) -> usize {
        self.pool.lock().unwrap().live
    }

    fn checkout(&self) -> Result<TcpStream, SidlError> {
        // A saturated pool must not become an unbounded hang: the wait for
        // a returned connection is charged against the same deadline as
        // the socket I/O it precedes. With no io-timeout configured the
        // historical wait-forever behavior stands (callers opted out of
        // deadlines entirely).
        let deadline = self.io_timeout.map(|t| Instant::now() + t);
        let mut pool = self.pool.lock().unwrap();
        loop {
            if let Some(stream) = pool.idle.pop() {
                return Ok(stream);
            }
            if pool.live < self.max_conns {
                pool.live += 1;
                drop(pool);
                return match self.dial() {
                    Ok(stream) => Ok(stream),
                    Err(e) => {
                        self.discard();
                        Err(e)
                    }
                };
            }
            match deadline {
                None => pool = self.returned.wait(pool).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(SidlError::user(
                            DEADLINE_EXCEPTION_TYPE,
                            format!(
                                "pool of {} connections to tcp://{} exhausted for \
                                 {:?}: no connection returned within the call budget",
                                self.max_conns, self.addr, self.io_timeout
                            ),
                        ));
                    }
                    pool = self.returned.wait_timeout(pool, d - now).unwrap().0;
                }
            }
        }
    }

    fn dial(&self) -> Result<TcpStream, SidlError> {
        self.metrics.record_dial();
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| conn_err(format!("dial tcp://{}: {e}", self.addr)))?;
        // Nagle would batch our small frames behind the previous ACK —
        // fatal to the E12 round-trip budget.
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn checkin(&self, stream: TcpStream) {
        self.pool.lock().unwrap().idle.push(stream);
        self.returned.notify_one();
    }

    /// Forgets a connection that errored (its stream is dropped by the
    /// caller): frees its pool slot so a future call may dial fresh.
    fn discard(&self) {
        self.metrics.record_connection_drop();
        self.pool.lock().unwrap().live -= 1;
        self.returned.notify_one();
    }

    fn io_to_sidl(&self, verb: &str, e: std::io::Error) -> SidlError {
        if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
            let message = format!(
                "socket {verb} to tcp://{} timed out (budget {:?})",
                self.addr, self.io_timeout
            );
            if cca_obs::flight::enabled() {
                cca_obs::flight::record_incident("DeadlineExceeded", &message);
            }
            SidlError::user(DEADLINE_EXCEPTION_TYPE, message)
        } else {
            conn_err(format!("socket {verb} to tcp://{}: {e}", self.addr))
        }
    }

    fn exchange(
        &self,
        stream: &mut TcpStream,
        request_id: u64,
        request: &[u8],
    ) -> Result<Bytes, SidlError> {
        let _ = stream.set_read_timeout(self.io_timeout);
        let _ = stream.set_write_timeout(self.io_timeout);
        // Tracing off ⇒ `current_context()` is `None` after one relaxed
        // load and the frame spends zero extension bytes.
        write_frame_with(
            stream,
            FrameKind::Request,
            request_id,
            request,
            self.max_payload,
            cca_obs::trace::current_context(),
        )
        .map_err(|e| self.io_to_sidl("write", e))?;
        let frame = read_frame(stream, self.max_payload)
            .map_err(|e| self.io_to_sidl("read", e))?
            .ok_or_else(|| {
                conn_err(format!(
                    "tcp://{} closed the connection mid-call",
                    self.addr
                ))
            })?;
        if frame.kind != FrameKind::Reply {
            return Err(conn_err(format!(
                "tcp://{} sent a request frame where a reply was due",
                self.addr
            )));
        }
        if frame.request_id != request_id {
            // One exchange at a time per checked-out connection, so ids
            // must match; a mismatch means the stream state is corrupt.
            return Err(conn_err(format!(
                "frame correlation mismatch from tcp://{}: sent {request_id}, got {}",
                self.addr, frame.request_id
            )));
        }
        Ok(frame.payload)
    }
}

impl Transport for TcpTransport {
    fn call(&self, request: Bytes) -> Result<Bytes, SidlError> {
        let _span = cca_obs::span("rpc.tcp.call");
        let counters = cca_obs::counters_enabled();
        let started = if counters { Some(Instant::now()) } else { None };
        let mut stream = self.checkout()?;
        let request_id = self.next_frame_id.fetch_add(1, Ordering::Relaxed);
        match self.exchange(&mut stream, request_id, request.as_slice()) {
            Ok(reply) => {
                self.checkin(stream);
                if let Some(started) = started {
                    self.metrics.record_round_trip(
                        "tcp",
                        request.len() as u64,
                        reply.len() as u64,
                        started.elapsed().as_nanos() as u64,
                    );
                }
                Ok(reply)
            }
            Err(e) => {
                // The stream may hold half a frame; never reuse it.
                drop(stream);
                self.discard();
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orb::{ObjRef, Orb};
    use cca_sidl::{DynObject, DynValue};

    struct Doubler;
    impl DynObject for Doubler {
        fn sidl_type(&self) -> &str {
            "demo.Doubler"
        }
        fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
            match method {
                "double" => Ok(DynValue::Double(args[0].as_double()? * 2.0)),
                other => Err(SidlError::invoke(format!("no method '{other}'"))),
            }
        }
    }

    fn serve() -> (Arc<TcpServer>, Arc<Orb>) {
        let orb = Orb::new();
        orb.register("doubler", Arc::new(Doubler));
        let server = TcpServer::bind("127.0.0.1:0", Arc::clone(&orb) as Arc<dyn Dispatcher>)
            .expect("bind ephemeral port");
        (server, orb)
    }

    #[test]
    fn invocation_crosses_real_sockets() {
        let (server, _orb) = serve();
        let objref = ObjRef::tcp("doubler", server.local_addr().to_string());
        let r = objref
            .invoke("double", vec![DynValue::Double(21.0)])
            .unwrap();
        assert!(matches!(r, DynValue::Double(v) if v == 42.0));
        // Shutdown joins the handler thread, making the counter final.
        assert_eq!(server.shutdown(), 1);
        assert_eq!(server.dispatched(), 1);
    }

    #[test]
    fn user_exceptions_cross_the_socket() {
        let (server, _orb) = serve();
        let objref = ObjRef::tcp("doubler", server.local_addr().to_string());
        let e = objref.invoke("missing", vec![]).unwrap_err();
        assert!(e.to_string().contains("SystemException"), "{e}");
        server.shutdown();
    }

    #[test]
    fn dial_failure_is_a_typed_connection_error() {
        // Bind-then-drop guarantees a dead port.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let t = TcpTransport::new(dead.to_string());
        let e = t.call(Bytes::from_static(b"x")).unwrap_err();
        match e {
            SidlError::UserException { exception_type, .. } => {
                assert_eq!(exception_type, CONNECTION_EXCEPTION_TYPE);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(t.live_connections(), 0, "failed dial freed its slot");
    }

    #[test]
    fn pool_reuses_connections_up_to_the_bound() {
        let (server, _orb) = serve();
        let t = Arc::new(TcpTransport::new(server.local_addr().to_string()).with_pool_size(1));
        let objref = ObjRef::new("doubler", Arc::clone(&t) as Arc<dyn Transport>);
        for _ in 0..10 {
            objref
                .invoke("double", vec![DynValue::Double(1.0)])
                .unwrap();
        }
        assert_eq!(t.live_connections(), 1, "ten calls, one connection");
        assert_eq!(server.connections_accepted(), 1);
        server.shutdown();
    }

    #[test]
    fn mid_call_drop_surfaces_as_connection_failure_then_heals() {
        let (server, _orb) = serve();
        server.set_fault_plan(1, 1000); // drop every request
        let objref = ObjRef::tcp("doubler", server.local_addr().to_string());
        let e = objref
            .invoke("double", vec![DynValue::Double(1.0)])
            .unwrap_err();
        match e {
            SidlError::UserException { exception_type, .. } => {
                assert_eq!(exception_type, CONNECTION_EXCEPTION_TYPE);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(server.dropped_mid_call(), 1);
        server.set_fault_plan(1, 0); // heal
        let r = objref
            .invoke("double", vec![DynValue::Double(2.0)])
            .unwrap();
        assert!(matches!(r, DynValue::Double(v) if v == 4.0));
        server.shutdown();
    }

    #[test]
    fn stalled_server_times_out_as_deadline_exceeded() {
        struct Wedged;
        impl Dispatcher for Wedged {
            fn dispatch(&self, request: Bytes) -> Result<Bytes, SidlError> {
                std::thread::sleep(Duration::from_millis(200));
                Ok(request)
            }
        }
        let server = TcpServer::bind("127.0.0.1:0", Arc::new(Wedged)).unwrap();
        let t = TcpTransport::new(server.local_addr().to_string())
            .with_io_timeout(Duration::from_millis(20));
        let e = t.call(Bytes::from_static(b"ping")).unwrap_err();
        match e {
            SidlError::UserException { exception_type, .. } => {
                assert_eq!(exception_type, DEADLINE_EXCEPTION_TYPE);
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_threads() {
        let (server, _orb) = serve();
        let objref = ObjRef::tcp("doubler", server.local_addr().to_string());
        objref
            .invoke("double", vec![DynValue::Double(1.0)])
            .unwrap();
        assert_eq!(server.shutdown(), 1);
        assert_eq!(server.shutdown(), 0);
        // Calls after shutdown fail cleanly (dial refused or reset).
        assert!(objref
            .invoke("double", vec![DynValue::Double(1.0)])
            .is_err());
    }

    #[test]
    fn saturated_pool_fails_fast_against_the_deadline_instead_of_hanging() {
        let (server, _orb) = serve();
        let t = Arc::new(
            TcpTransport::new(server.local_addr().to_string())
                .with_pool_size(1)
                .with_io_timeout(Duration::from_millis(50)),
        );
        // Occupy the only pool slot without returning it — the situation a
        // wedged long call creates.
        let held = t.checkout().expect("dial the only slot");
        let started = Instant::now();
        let e = t.call(Bytes::from_static(b"starved")).unwrap_err();
        let waited = started.elapsed();
        match e {
            SidlError::UserException {
                exception_type,
                message,
            } => {
                assert_eq!(exception_type, DEADLINE_EXCEPTION_TYPE);
                assert!(message.contains("exhausted"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        assert!(
            waited >= Duration::from_millis(50),
            "the full budget is spent waiting before giving up: {waited:?}"
        );
        assert!(
            waited < Duration::from_secs(5),
            "exhaustion is a deadline, not a hang: {waited:?}"
        );
        // Returning the connection heals the pool: the next call runs.
        t.checkin(held);
        let objref = ObjRef::new("doubler", Arc::clone(&t) as Arc<dyn Transport>);
        let r = objref
            .invoke("double", vec![DynValue::Double(4.0)])
            .unwrap();
        assert!(matches!(r, DynValue::Double(v) if v == 8.0));
        server.shutdown();
    }
}
