//! Request/response transports.
//!
//! A [`Transport`] carries marshaled request bytes to a server and returns
//! marshaled reply bytes. Two implementations:
//!
//! * [`LoopbackTransport`] — same-address-space dispatch, used by the ORB
//!   baseline to isolate pure marshaling/dispatch overhead (experiment E3).
//! * [`LatencyTransport`] — wraps any transport and charges a configurable
//!   per-message latency plus per-byte cost, our stand-in for a real
//!   network between "possibly remote components that monitor, analyze,
//!   and visualize data" (§6). Simulation, not emulation: the delay is a
//!   deterministic busy-wait so benchmarks are stable.

use bytes::Bytes;
use cca_sidl::SidlError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A synchronous request/response byte transport.
pub trait Transport: Send + Sync {
    /// Sends a marshaled request, returning the marshaled reply.
    fn call(&self, request: Bytes) -> Result<Bytes, SidlError>;
}

/// A server-side dispatcher: consumes a request, produces a reply.
pub trait Dispatcher: Send + Sync {
    /// Handles one marshaled request.
    fn dispatch(&self, request: Bytes) -> Result<Bytes, SidlError>;
}

/// Same-address-space transport: calls the dispatcher directly.
pub struct LoopbackTransport {
    server: Arc<dyn Dispatcher>,
    calls: AtomicU64,
}

impl LoopbackTransport {
    /// Wraps a dispatcher.
    pub fn new(server: Arc<dyn Dispatcher>) -> Arc<Self> {
        Arc::new(LoopbackTransport {
            server,
            calls: AtomicU64::new(0),
        })
    }

    /// Number of calls carried so far.
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl Transport for LoopbackTransport {
    fn call(&self, request: Bytes) -> Result<Bytes, SidlError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.server.dispatch(request)
    }
}

/// Deterministic simulated-network transport: adds
/// `latency + bytes * per_byte` of busy-wait to every call (both request
/// and reply directions are folded into one charge).
pub struct LatencyTransport {
    inner: Arc<dyn Transport>,
    latency: Duration,
    per_byte: Duration,
    bytes_carried: AtomicU64,
}

impl LatencyTransport {
    /// Wraps `inner`, charging `latency` per message and `per_byte` per
    /// payload byte (request + reply).
    pub fn new(inner: Arc<dyn Transport>, latency: Duration, per_byte: Duration) -> Arc<Self> {
        Arc::new(LatencyTransport {
            inner,
            latency,
            per_byte,
            bytes_carried: AtomicU64::new(0),
        })
    }

    /// A profile resembling 1999-era LAN: ~100 µs latency, ~10 ns/byte
    /// (≈100 MB/s).
    pub fn lan(inner: Arc<dyn Transport>) -> Arc<Self> {
        Self::new(inner, Duration::from_micros(100), Duration::from_nanos(10))
    }

    /// Total payload bytes carried (both directions).
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried.load(Ordering::Relaxed)
    }

    fn charge(&self, bytes: usize) {
        let cost = self.latency + self.per_byte * (bytes as u32);
        let start = Instant::now();
        while start.elapsed() < cost {
            std::hint::spin_loop();
        }
    }
}

impl Transport for LatencyTransport {
    fn call(&self, request: Bytes) -> Result<Bytes, SidlError> {
        let req_len = request.len();
        self.charge(req_len);
        let reply = self.inner.call(request)?;
        self.charge(reply.len());
        self.bytes_carried
            .fetch_add((req_len + reply.len()) as u64, Ordering::Relaxed);
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo dispatcher for transport tests.
    struct Echo;
    impl Dispatcher for Echo {
        fn dispatch(&self, request: Bytes) -> Result<Bytes, SidlError> {
            Ok(request)
        }
    }

    #[test]
    fn loopback_round_trips_and_counts() {
        let t = LoopbackTransport::new(Arc::new(Echo));
        let reply = t.call(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(&reply[..], b"ping");
        assert_eq!(t.call_count(), 1);
        t.call(Bytes::from_static(b"again")).unwrap();
        assert_eq!(t.call_count(), 2);
    }

    #[test]
    fn latency_transport_charges_time_and_counts_bytes() {
        let inner = LoopbackTransport::new(Arc::new(Echo));
        let slow =
            LatencyTransport::new(inner, Duration::from_micros(200), Duration::from_nanos(0));
        let start = Instant::now();
        let reply = slow.call(Bytes::from_static(b"payload")).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(&reply[..], b"payload");
        // Two directions, 200 µs each.
        assert!(elapsed >= Duration::from_micros(400), "{elapsed:?}");
        assert_eq!(slow.bytes_carried(), 14);
    }

    #[test]
    fn errors_propagate_through_wrappers() {
        struct Failing;
        impl Dispatcher for Failing {
            fn dispatch(&self, _: Bytes) -> Result<Bytes, SidlError> {
                Err(SidlError::invoke("server down"))
            }
        }
        let t = LatencyTransport::new(
            LoopbackTransport::new(Arc::new(Failing)),
            Duration::ZERO,
            Duration::ZERO,
        );
        assert!(t.call(Bytes::new()).is_err());
    }
}
