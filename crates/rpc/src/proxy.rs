//! Remote port proxies.
//!
//! §6.2: "Optionally, the provided DirectConnectPort can be translated
//! through a proxy by a separate UsesPort provided by the framework,
//! without the components on either end of the connection needing to
//! know." [`RemotePortProxy`] is that proxy: it implements
//! [`cca_sidl::DynObject`] by forwarding every invocation through an ORB
//! [`ObjRef`], so the framework can install it as the *dynamic facade* of a
//! [`cca_core::PortHandle`] and a component using reflective calls cannot
//! tell a remote provider from a local one.

use crate::orb::ObjRef;
use cca_sidl::{DynObject, DynValue, SidlError};
use std::sync::Arc;

/// A `DynObject` that lives here but executes over there.
pub struct RemotePortProxy {
    /// The port's SIDL interface type (reported locally, so type checks
    /// don't need a network round trip).
    port_type: String,
    /// The remote reference.
    objref: Arc<ObjRef>,
}

impl RemotePortProxy {
    /// Creates a proxy reporting `port_type` and forwarding to `objref`.
    pub fn new(port_type: impl Into<String>, objref: Arc<ObjRef>) -> Arc<Self> {
        Arc::new(RemotePortProxy {
            port_type: port_type.into(),
            objref,
        })
    }

    /// The remote object's registration key.
    pub fn remote_key(&self) -> &str {
        self.objref.key()
    }
}

impl DynObject for RemotePortProxy {
    fn sidl_type(&self) -> &str {
        &self.port_type
    }

    fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        self.objref.invoke(method, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orb::Orb;
    use crate::transport::{LatencyTransport, LoopbackTransport};
    use cca_core::PortHandle;
    use std::time::Duration;

    struct Doubler;
    impl DynObject for Doubler {
        fn sidl_type(&self) -> &str {
            "demo.Doubler"
        }
        fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
            match method {
                "double" => Ok(DynValue::Double(args[0].as_double()? * 2.0)),
                other => Err(SidlError::invoke(format!("no method '{other}'"))),
            }
        }
    }

    #[test]
    fn proxy_forwards_invocations() {
        let orb = Orb::new();
        orb.register("dbl", Arc::new(Doubler));
        let proxy = RemotePortProxy::new("demo.Doubler", ObjRef::loopback("dbl", orb));
        assert_eq!(proxy.sidl_type(), "demo.Doubler");
        assert_eq!(proxy.remote_key(), "dbl");
        let r = proxy
            .invoke("double", vec![DynValue::Double(21.0)])
            .unwrap();
        assert!(matches!(r, DynValue::Double(v) if v == 42.0));
    }

    #[test]
    fn proxy_as_port_handle_dynamic_facade() {
        // The framework-side pattern: a PortHandle whose dynamic facade is
        // remote. The consumer sees an ordinary handle.
        let orb = Orb::new();
        orb.register("dbl", Arc::new(Doubler));
        let proxy = RemotePortProxy::new("demo.Doubler", ObjRef::loopback("dbl", orb));
        let dyn_facade: Arc<dyn DynObject> = proxy;
        let handle = PortHandle::new("doubler", "demo.Doubler", Arc::clone(&dyn_facade))
            .with_dynamic(dyn_facade);
        let port = handle.dynamic().unwrap();
        let r = port.invoke("double", vec![DynValue::Double(4.0)]).unwrap();
        assert!(matches!(r, DynValue::Double(v) if v == 8.0));
    }

    #[test]
    fn proxy_surfaces_remote_user_exceptions_verbatim() {
        struct Thrower;
        impl DynObject for Thrower {
            fn sidl_type(&self) -> &str {
                "demo.Thrower"
            }
            fn invoke(&self, _m: &str, _a: Vec<DynValue>) -> Result<DynValue, SidlError> {
                Err(SidlError::user("demo.Boom", "remote detonation"))
            }
        }
        let orb = Orb::new();
        orb.register("boom", Arc::new(Thrower));
        let proxy = RemotePortProxy::new("demo.Thrower", ObjRef::loopback("boom", orb));
        let e = proxy.invoke("go", vec![]).unwrap_err();
        match e {
            SidlError::UserException {
                exception_type,
                message,
            } => {
                assert_eq!(exception_type, "demo.Boom");
                assert_eq!(message, "remote detonation");
            }
            other => panic!("user exception must cross the proxy intact, got {other:?}"),
        }
    }

    #[test]
    fn proxy_to_unregistered_key_reports_object_not_found() {
        // A stale reference (servant unregistered, or key never existed)
        // fails with the ORB's typed error, not a panic or a hang.
        let orb = Orb::new();
        orb.register("dbl", Arc::new(Doubler));
        let proxy = RemotePortProxy::new("demo.Doubler", ObjRef::loopback("gone", orb));
        let e = proxy
            .invoke("double", vec![DynValue::Double(1.0)])
            .unwrap_err();
        assert!(e.to_string().contains("ObjectNotFound"), "{e}");
    }

    #[test]
    fn proxy_over_dead_tcp_endpoint_is_a_typed_connection_error() {
        // Bind-then-drop guarantees a dead port: the proxy's first call
        // dials, fails, and surfaces the tcp transport's typed error.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let proxy = RemotePortProxy::new("demo.Doubler", ObjRef::tcp("dbl", dead.to_string()));
        let e = proxy
            .invoke("double", vec![DynValue::Double(1.0)])
            .unwrap_err();
        match e {
            SidlError::UserException { exception_type, .. } => {
                assert_eq!(exception_type, crate::tcp::CONNECTION_EXCEPTION_TYPE);
            }
            other => panic!("dead endpoint must be a connection error, got {other:?}"),
        }
    }

    #[test]
    fn proxy_argument_type_errors_come_back_as_remote_faults() {
        // Passing a string where the servant demands a double: the failure
        // happens server-side and comes back marshaled, proving the error
        // path round-trips rather than short-circuiting locally.
        let orb = Orb::new();
        orb.register("dbl", Arc::new(Doubler));
        let proxy = RemotePortProxy::new("demo.Doubler", ObjRef::loopback("dbl", orb));
        let e = proxy
            .invoke("double", vec![DynValue::Str("not a number".into())])
            .unwrap_err();
        assert!(e.to_string().contains("SystemException"), "{e}");
    }

    #[test]
    fn proxy_over_simulated_network() {
        let orb = Orb::new();
        orb.register("dbl", Arc::new(Doubler));
        let slow = LatencyTransport::new(
            LoopbackTransport::new(orb),
            Duration::from_micros(50),
            Duration::ZERO,
        );
        let proxy = RemotePortProxy::new("demo.Doubler", ObjRef::new("dbl", slow));
        let start = std::time::Instant::now();
        let r = proxy.invoke("double", vec![DynValue::Double(1.0)]).unwrap();
        assert!(matches!(r, DynValue::Double(v) if v == 2.0));
        assert!(start.elapsed() >= Duration::from_micros(100));
    }
}
