//! Length-prefixed, versioned framing for the TCP transport.
//!
//! The [`wire`](crate::wire) encoding is self-describing but *unbounded*:
//! a byte stream carrying back-to-back requests gives the reader no way to
//! know where one message ends and the next begins, and no way to refuse a
//! hostile peer before buffering its payload. This module adds the
//! boundary layer: every message travels as one frame,
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"CCAR"
//! 4       1     protocol version (currently 2)
//! 5       1     kind: 0 = request, 1 = reply, 2 = bulk slab,
//!               3 = rank join, 4 = rank leave
//! 6       1     extension flags: bit 0 = trace context present; all
//!               other bits must be zero
//! 7       1     extension length: 16 when bit 0 is set, else 0
//! 8       8     correlation id (u64 LE) — duplicated from the wire
//!               payload so a transport can route replies to callers
//!               without demarshaling them (out-of-order completion)
//! 16      4     payload length (u32 LE), capped
//! 20      0|16  trace context: trace id then caller span id, both
//!               u64 LE and both nonzero. Absent when tracing is off —
//!               a tracing-off v2 frame is byte-identical to v1 except
//!               the version byte, which is how E12/E13 stay untouched.
//! 20+ext  …     payload (the `wire` encoding of a Request or Reply)
//! ```
//!
//! Every malformed input — wrong magic, unknown version or kind, bad
//! extension bytes, a length over the cap, a stream that ends mid-frame —
//! is a typed [`FrameError`], never a panic and never an unbounded read.
//! [`FrameDecoder`] is incremental: bytes may arrive split at arbitrary
//! boundaries (as TCP delivers them) and frames pop out exactly when
//! complete.

use bytes::Bytes;
use cca_obs::TraceContext;
use cca_sidl::SidlError;
use std::fmt;

/// The four magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"CCAR";

/// The protocol version this build speaks.
pub const FRAME_VERSION: u8 = 2;

/// Fixed header size in bytes (the trace-context extension follows it).
pub const FRAME_HEADER_LEN: usize = 20;

/// Size of the trace-context extension when present: two `u64` LE ids.
pub const TRACE_CONTEXT_LEN: usize = 16;

/// Header flag bit 0: a trace-context extension follows the header.
const FLAG_TRACE_CONTEXT: u8 = 1;

/// Default payload cap: large enough for any marshaled `wire` array the
/// decoder itself accepts, small enough that a hostile length field cannot
/// make the reader balloon.
pub const DEFAULT_MAX_PAYLOAD: u32 = 64 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A marshaled [`crate::wire::Request`].
    Request,
    /// A marshaled [`crate::wire::Reply`].
    Reply,
    /// A raw data-plane slab (see [`crate::bulk`]): one bounded chunk of
    /// an M×N array redistribution, carried as little-endian bytes with
    /// no per-element encoding. Acknowledged with a `Reply` frame bearing
    /// the same correlation id, so bulk traffic multiplexes over the same
    /// sockets as control-plane calls.
    Bulk,
    /// A fleet rank announcing itself on this connection: rank id,
    /// incarnation, and provider labels (see `cca-framework::fleet`).
    /// Acknowledged with a `Reply` frame; after a successful join the
    /// connection *is* the rank's liveness signal — its death is the
    /// rank's death.
    Join,
    /// A fleet rank departing cleanly, so the subsequent socket close is
    /// not treated as a crash. Acknowledged with a `Reply` frame.
    Leave,
}

impl FrameKind {
    /// The wire encoding of this kind (header byte 5).
    pub fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Reply => 1,
            FrameKind::Bulk => 2,
            FrameKind::Join => 3,
            FrameKind::Leave => 4,
        }
    }

    /// Decodes header byte 5; any value other than the known kinds is a
    /// typed [`FrameError::BadKind`].
    pub fn from_byte(b: u8) -> Result<Self, FrameError> {
        match b {
            0 => Ok(FrameKind::Request),
            1 => Ok(FrameKind::Reply),
            2 => Ok(FrameKind::Bulk),
            3 => Ok(FrameKind::Join),
            4 => Ok(FrameKind::Leave),
            other => Err(FrameError::BadKind(other)),
        }
    }
}

/// One complete frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Request or reply.
    pub kind: FrameKind,
    /// Transport-level correlation id.
    pub request_id: u64,
    /// The caller's trace identity, when the peer sent one.
    pub context: Option<TraceContext>,
    /// The marshaled message.
    pub payload: Bytes,
}

/// Why a byte sequence is not a frame. Every variant is a protocol error a
/// peer produced (or an attacker forged); none of them panic the reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte names a protocol this build does not speak.
    BadVersion(u8),
    /// The kind byte names no known frame kind.
    BadKind(u8),
    /// The extension bytes are inconsistent: unknown flag bits, a length
    /// that disagrees with the flags, or a context with zeroed ids.
    BadContext(&'static str),
    /// The declared payload length exceeds the reader's cap.
    Oversized {
        /// Length the header declared.
        declared: u32,
        /// The reader's cap.
        cap: u32,
    },
    /// The stream ended inside a frame (header, extension, or payload).
    Truncated {
        /// Bytes buffered when the stream ended.
        have: usize,
        /// Bytes the complete frame needed.
        need: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(
                f,
                "unsupported frame version {v} (this build speaks {FRAME_VERSION})"
            ),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadContext(why) => write!(f, "bad trace-context extension: {why}"),
            FrameError::Oversized { declared, cap } => {
                write!(
                    f,
                    "frame payload of {declared} bytes exceeds the {cap}-byte cap"
                )
            }
            FrameError::Truncated { have, need } => {
                write!(f, "stream ended mid-frame ({have} of {need} bytes)")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for SidlError {
    fn from(e: FrameError) -> Self {
        SidlError::user(crate::tcp::CONNECTION_EXCEPTION_TYPE, e.to_string())
    }
}

/// Encodes one frame without a trace context. Fails (typed, no panic) if
/// the payload exceeds `max_payload`.
pub fn encode_frame(
    kind: FrameKind,
    request_id: u64,
    payload: &[u8],
    max_payload: u32,
) -> Result<Vec<u8>, FrameError> {
    encode_frame_with(kind, request_id, payload, max_payload, None)
}

/// Encodes one frame, carrying `context` as the 16-byte extension when
/// given. A context with a zeroed id is treated as absent (zero is the
/// wire's "no trace" sentinel, and the decoder rejects it as garbage).
pub fn encode_frame_with(
    kind: FrameKind,
    request_id: u64,
    payload: &[u8],
    max_payload: u32,
    context: Option<TraceContext>,
) -> Result<Vec<u8>, FrameError> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + TRACE_CONTEXT_LEN + payload.len());
    encode_frame_onto(&mut out, kind, request_id, payload, max_payload, context)?;
    Ok(out)
}

/// Appends one encoded frame to `out` — byte-identical to what
/// [`encode_frame_with`] returns, without the intermediate allocation.
/// The mux client's bulk lane writes slabs straight into a connection's
/// outgoing buffer with this; on error `out` is untouched.
pub fn encode_frame_onto(
    out: &mut Vec<u8>,
    kind: FrameKind,
    request_id: u64,
    payload: &[u8],
    max_payload: u32,
    context: Option<TraceContext>,
) -> Result<(), FrameError> {
    encode_frame_header_onto(out, kind, request_id, payload.len(), max_payload, context)?;
    out.extend_from_slice(payload);
    Ok(())
}

/// Appends just the header (and trace extension) of a frame whose
/// `payload_len` payload bytes the caller will append next. The bulk
/// lane's gather path uses this to build the payload *in place* in the
/// connection's outgoing buffer — the slab never exists anywhere else.
/// On error `out` is untouched.
pub fn encode_frame_header_onto(
    out: &mut Vec<u8>,
    kind: FrameKind,
    request_id: u64,
    payload_len: usize,
    max_payload: u32,
    context: Option<TraceContext>,
) -> Result<(), FrameError> {
    if payload_len > max_payload as usize {
        return Err(FrameError::Oversized {
            declared: payload_len.min(u32::MAX as usize) as u32,
            cap: max_payload,
        });
    }
    let context = context.filter(|c| c.trace_id != 0 && c.span_id != 0);
    let ctx_len = if context.is_some() {
        TRACE_CONTEXT_LEN
    } else {
        0
    };
    out.reserve(FRAME_HEADER_LEN + ctx_len + payload_len);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.push(kind.to_byte());
    out.push(if context.is_some() {
        FLAG_TRACE_CONTEXT
    } else {
        0
    });
    out.push(ctx_len as u8);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    if let Some(ctx) = context {
        out.extend_from_slice(&ctx.trace_id.to_le_bytes());
        out.extend_from_slice(&ctx.span_id.to_le_bytes());
    }
    Ok(())
}

/// Parsed header fields (internal).
struct Header {
    kind: FrameKind,
    request_id: u64,
    ctx_len: usize,
    payload_len: u32,
}

fn parse_header(raw: &[u8; FRAME_HEADER_LEN], max_payload: u32) -> Result<Header, FrameError> {
    if raw[0..4] != FRAME_MAGIC {
        return Err(FrameError::BadMagic([raw[0], raw[1], raw[2], raw[3]]));
    }
    if raw[4] != FRAME_VERSION {
        return Err(FrameError::BadVersion(raw[4]));
    }
    let kind = FrameKind::from_byte(raw[5])?;
    let flags = raw[6];
    if flags & !FLAG_TRACE_CONTEXT != 0 {
        return Err(FrameError::BadContext("unknown flag bits"));
    }
    let ctx_len = raw[7] as usize;
    let want = if flags & FLAG_TRACE_CONTEXT != 0 {
        TRACE_CONTEXT_LEN
    } else {
        0
    };
    if ctx_len != want {
        return Err(FrameError::BadContext("length disagrees with flags"));
    }
    let request_id = u64::from_le_bytes(raw[8..16].try_into().unwrap());
    let payload_len = u32::from_le_bytes(raw[16..20].try_into().unwrap());
    if payload_len > max_payload {
        return Err(FrameError::Oversized {
            declared: payload_len,
            cap: max_payload,
        });
    }
    Ok(Header {
        kind,
        request_id,
        ctx_len,
        payload_len,
    })
}

/// Decodes the extension bytes following the header. Zeroed ids are the
/// in-memory "no trace" sentinel; a peer that puts them on the wire sent
/// garbage, and saying so catches bit-rot a silent `None` would mask.
fn decode_context(ext: &[u8]) -> Result<Option<TraceContext>, FrameError> {
    if ext.is_empty() {
        return Ok(None);
    }
    let trace_id = u64::from_le_bytes(ext[0..8].try_into().unwrap());
    let span_id = u64::from_le_bytes(ext[8..16].try_into().unwrap());
    if trace_id == 0 || span_id == 0 {
        return Err(FrameError::BadContext("zeroed trace ids"));
    }
    Ok(Some(TraceContext { trace_id, span_id }))
}

/// Incremental frame reassembly over a byte stream delivered in arbitrary
/// chunks. Feed bytes as they arrive; complete frames pop out in order.
/// The header is validated as soon as its 20 bytes are buffered, and the
/// trace-context extension as soon as *its* bytes are, so a bad magic, an
/// oversized length, or a garbage context is rejected *before* any
/// payload accumulates.
pub struct FrameDecoder {
    /// Shared storage handed over by an earlier zero-copy pop; logically
    /// *precedes* `buf` in the stream and is consumed first, frame by
    /// frame, without copying.
    view: Bytes,
    buf: Vec<u8>,
    /// Full-range handles on storages given away by zero-copy pops. Once
    /// the consumers of a storage's payload views drop them, the handle
    /// here is the last one and the `Vec` is reclaimed as the next `buf`
    /// — a steady slab stream cycles through the same few megabyte
    /// buffers instead of mapping and faulting fresh pages per chunk.
    retired: Vec<Bytes>,
    max_payload: u32,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder with the default payload cap.
    pub fn new() -> Self {
        Self::with_max_payload(DEFAULT_MAX_PAYLOAD)
    }

    /// A decoder with an explicit payload cap.
    pub fn with_max_payload(max_payload: u32) -> Self {
        FrameDecoder {
            view: Bytes::new(),
            buf: Vec::new(),
            retired: Vec::new(),
            max_payload,
        }
    }

    /// Appends newly arrived bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Reads up to `max` bytes from `reader` directly into the buffer —
    /// [`feed`](Self::feed) without the intermediate scratch copy. Returns
    /// the byte count from the underlying `read` (0 meaning end of
    /// stream); the buffer is unchanged on error.
    pub fn fill_from(
        &mut self,
        reader: &mut impl std::io::Read,
        max: usize,
    ) -> std::io::Result<usize> {
        let old = self.buf.len();
        self.buf.resize(old + max, 0);
        match reader.read(&mut self.buf[old..]) {
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }

    /// Bytes buffered but not yet popped as a frame.
    pub fn buffered(&self) -> usize {
        self.view.len() + self.buf.len()
    }

    /// Parses one frame from the front of `bytes`; `None` means incomplete.
    /// Returns the header, decoded context, payload start, and frame end.
    #[allow(clippy::type_complexity)]
    fn parse_prefix(
        bytes: &[u8],
        max_payload: u32,
    ) -> Result<Option<(Header, Option<TraceContext>, usize, usize)>, FrameError> {
        if bytes.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let raw: [u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN].try_into().unwrap();
        let header = parse_header(&raw, max_payload)?;
        let body_at = FRAME_HEADER_LEN + header.ctx_len;
        if bytes.len() < body_at {
            return Ok(None);
        }
        let context = decode_context(&bytes[FRAME_HEADER_LEN..body_at])?;
        let total = body_at + header.payload_len as usize;
        if bytes.len() < total {
            return Ok(None);
        }
        Ok(Some((header, context, body_at, total)))
    }

    /// Pops the next complete frame, if one is buffered. `Ok(None)` means
    /// "keep feeding"; an error is fatal for the stream (framing has no
    /// resync point, so the caller must drop the connection).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        // Frames wholly inside the shared view pop as pure slices — this
        // is the steady state of a pipelined slab stream, where one
        // buffer-to-`Bytes` conversion serves every frame it contained.
        if !self.view.is_empty() {
            match Self::parse_prefix(self.view.as_slice(), self.max_payload)? {
                Some((header, context, body_at, total)) => {
                    let head = self.view.split_to(total);
                    return Ok(Some(Frame {
                        kind: header.kind,
                        request_id: header.request_id,
                        context,
                        payload: head.slice(body_at..),
                    }));
                }
                None => {
                    // The frame straddles the view/buf seam. Fold the
                    // (partial-frame-sized) remainder back in front of the
                    // accumulation buffer and continue contiguously.
                    let mut merged = self.view.to_vec();
                    merged.extend_from_slice(&self.buf);
                    self.buf = merged;
                    self.view = Bytes::new();
                }
            }
        }
        let Some((header, context, body_at, total)) =
            Self::parse_prefix(&self.buf, self.max_payload)?
        else {
            return Ok(None);
        };
        // Large payloads (data-plane slabs) pop as zero-copy views: the
        // whole buffer becomes shared `Bytes` (a move, not a copy), the
        // payload is a slice of it, and the tail — often the next frames
        // of the same stream — becomes the view consumed above. Small
        // payloads aren't worth the buffer churn and copy out as before.
        const ZERO_COPY_POP_MIN: usize = 32 << 10;
        let payload = if header.payload_len as usize >= ZERO_COPY_POP_MIN {
            let whole = Bytes::from(std::mem::take(&mut self.buf));
            self.view = whole.slice(total..);
            let payload = whole.slice(body_at..total);
            self.retired.push(whole);
            // Reclaim any retired storage whose views are all gone; the
            // first one becomes the next accumulation buffer.
            let mut i = 0;
            while i < self.retired.len() {
                if self.retired[i].is_unique() {
                    if let Ok(mut v) = self.retired.swap_remove(i).try_unwrap() {
                        if self.buf.capacity() < v.capacity() {
                            v.clear();
                            self.buf = v;
                        }
                    }
                } else {
                    i += 1;
                }
            }
            // A stalled consumer must not pin unbounded storage.
            if self.retired.len() > 16 {
                self.retired.remove(0);
            }
            payload
        } else {
            let payload = Bytes::from(self.buf[body_at..total].to_vec());
            self.buf.drain(..total);
            payload
        };
        Ok(Some(Frame {
            kind: header.kind,
            request_id: header.request_id,
            context,
            payload,
        }))
    }

    /// Declares end-of-stream: errors if bytes of an incomplete frame
    /// remain buffered (the peer hung up mid-message).
    pub fn finish(&self) -> Result<(), FrameError> {
        let have = self.buffered();
        if have == 0 {
            return Ok(());
        }
        // The leftover may straddle the view/buf seam; assemble just the
        // header's worth of prefix to name how much was expected.
        let mut prefix = [0u8; FRAME_HEADER_LEN];
        let from_view = self.view.len().min(FRAME_HEADER_LEN);
        prefix[..from_view].copy_from_slice(&self.view.as_slice()[..from_view]);
        let from_buf = self.buf.len().min(FRAME_HEADER_LEN - from_view);
        prefix[from_view..from_view + from_buf].copy_from_slice(&self.buf[..from_buf]);
        let need = if from_view + from_buf < FRAME_HEADER_LEN {
            FRAME_HEADER_LEN
        } else {
            match parse_header(&prefix, self.max_payload) {
                Ok(h) => FRAME_HEADER_LEN + h.ctx_len + h.payload_len as usize,
                Err(e) => return Err(e),
            }
        };
        Err(FrameError::Truncated { have, need })
    }
}

/// Reads one frame from a blocking reader. `Ok(None)` is a clean EOF at a
/// frame boundary; EOF anywhere inside a frame is [`FrameError::Truncated`]
/// surfaced as `InvalidData`. Frame-level violations are `InvalidData`
/// carrying the [`FrameError`]; everything else is the underlying io error.
pub fn read_frame(
    reader: &mut impl std::io::Read,
    max_payload: u32,
) -> std::io::Result<Option<Frame>> {
    use std::io::{Error, ErrorKind};

    let mut raw = [0u8; FRAME_HEADER_LEN];
    // First byte decides clean-EOF vs mid-frame EOF.
    let mut first = [0u8; 1];
    loop {
        match reader.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(1) => break,
            Ok(_) => unreachable!("read into a 1-byte buffer"),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    raw[0] = first[0];
    reader.read_exact(&mut raw[1..]).map_err(truncated)?;
    let header = parse_header(&raw, max_payload)
        .map_err(|e| Error::new(ErrorKind::InvalidData, e.to_string()))?;
    let mut ext = [0u8; TRACE_CONTEXT_LEN];
    let ext = &mut ext[..header.ctx_len];
    reader.read_exact(ext).map_err(truncated)?;
    let context =
        decode_context(ext).map_err(|e| Error::new(ErrorKind::InvalidData, e.to_string()))?;
    let mut payload = vec![0u8; header.payload_len as usize];
    reader.read_exact(&mut payload).map_err(truncated)?;
    Ok(Some(Frame {
        kind: header.kind,
        request_id: header.request_id,
        context,
        payload: Bytes::from(payload),
    }))
}

fn truncated(e: std::io::Error) -> std::io::Error {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "stream ended mid-frame".to_string(),
        )
    } else {
        e
    }
}

/// Writes one frame without a trace context to a blocking writer.
pub fn write_frame(
    writer: &mut impl std::io::Write,
    kind: FrameKind,
    request_id: u64,
    payload: &[u8],
    max_payload: u32,
) -> std::io::Result<()> {
    write_frame_with(writer, kind, request_id, payload, max_payload, None)
}

/// Writes one frame, carrying `context` when given, to a blocking writer.
pub fn write_frame_with(
    writer: &mut impl std::io::Write,
    kind: FrameKind,
    request_id: u64,
    payload: &[u8],
    max_payload: u32,
    context: Option<TraceContext>,
) -> std::io::Result<()> {
    let framed = encode_frame_with(kind, request_id, payload, max_payload, context)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    writer.write_all(&framed)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(trace_id: u64, span_id: u64) -> TraceContext {
        TraceContext { trace_id, span_id }
    }

    #[test]
    fn frame_round_trips_through_the_decoder() {
        let framed = encode_frame(FrameKind::Request, 42, b"payload", DEFAULT_MAX_PAYLOAD).unwrap();
        let mut dec = FrameDecoder::new();
        dec.feed(&framed);
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::Request);
        assert_eq!(frame.request_id, 42);
        assert_eq!(frame.context, None);
        assert_eq!(&frame.payload[..], b"payload");
        assert!(dec.next_frame().unwrap().is_none());
        dec.finish().unwrap();
    }

    #[test]
    fn context_round_trips_through_the_decoder() {
        let framed = encode_frame_with(
            FrameKind::Request,
            42,
            b"payload",
            DEFAULT_MAX_PAYLOAD,
            Some(ctx(0xdead_beef, 0x1234)),
        )
        .unwrap();
        assert_eq!(framed.len(), FRAME_HEADER_LEN + TRACE_CONTEXT_LEN + 7);
        let mut dec = FrameDecoder::new();
        dec.feed(&framed);
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(frame.context, Some(ctx(0xdead_beef, 0x1234)));
        assert_eq!(&frame.payload[..], b"payload");
        dec.finish().unwrap();
    }

    #[test]
    fn contextless_frames_spend_zero_extension_bytes() {
        // The E12/E13 invariant: tracing off ⇒ the frame is exactly the
        // v1 layout except the version byte. No flags, no extension.
        let framed = encode_frame(FrameKind::Reply, 9, b"ok", DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(framed.len(), FRAME_HEADER_LEN + 2);
        assert_eq!(framed[6], 0);
        assert_eq!(framed[7], 0);
        // A zeroed context is normalized to "absent", not sent as garbage.
        let zeroed = encode_frame_with(
            FrameKind::Reply,
            9,
            b"ok",
            DEFAULT_MAX_PAYLOAD,
            Some(ctx(0, 7)),
        )
        .unwrap();
        assert_eq!(zeroed, framed);
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles() {
        let framed = encode_frame_with(
            FrameKind::Reply,
            7,
            b"slow",
            DEFAULT_MAX_PAYLOAD,
            Some(ctx(1, 2)),
        )
        .unwrap();
        let mut dec = FrameDecoder::new();
        let mut got = None;
        for b in &framed {
            dec.feed(std::slice::from_ref(b));
            if let Some(f) = dec.next_frame().unwrap() {
                got = Some(f);
            }
        }
        let frame = got.expect("frame completed with the last byte");
        assert_eq!(frame.request_id, 7);
        assert_eq!(frame.context, Some(ctx(1, 2)));
        assert_eq!(&frame.payload[..], b"slow");
    }

    #[test]
    fn bad_magic_is_rejected_before_any_payload() {
        let mut framed = encode_frame(FrameKind::Request, 1, b"x", DEFAULT_MAX_PAYLOAD).unwrap();
        framed[0] = b'X';
        let mut dec = FrameDecoder::new();
        // Feed only the header: rejection must not wait for the payload.
        dec.feed(&framed[..FRAME_HEADER_LEN]);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadMagic(m)) if m[0] == b'X'
        ));
    }

    #[test]
    fn version_kind_and_extension_bytes_are_validated() {
        let good = encode_frame(FrameKind::Request, 1, b"", DEFAULT_MAX_PAYLOAD).unwrap();
        for (offset, value, want) in [
            (4usize, 9u8, "version"),
            (5, 7, "kind"),
            (6, 0xfe, "flags"),
            (7, 5, "ctx-len"),
        ] {
            let mut bad = good.clone();
            bad[offset] = value;
            let mut dec = FrameDecoder::new();
            dec.feed(&bad);
            let err = dec.next_frame().unwrap_err();
            let matched = matches!(
                (&err, want),
                (FrameError::BadVersion(9), "version")
                    | (FrameError::BadKind(7), "kind")
                    | (FrameError::BadContext("unknown flag bits"), "flags")
                    | (
                        FrameError::BadContext("length disagrees with flags"),
                        "ctx-len"
                    )
            );
            assert!(matched, "{want}: {err:?}");
        }
    }

    #[test]
    fn zeroed_wire_context_is_typed_garbage() {
        let mut framed = encode_frame_with(
            FrameKind::Request,
            1,
            b"x",
            DEFAULT_MAX_PAYLOAD,
            Some(ctx(3, 4)),
        )
        .unwrap();
        framed[FRAME_HEADER_LEN..FRAME_HEADER_LEN + 8].fill(0);
        let mut dec = FrameDecoder::new();
        // Header + extension alone must reject: no payload needed.
        dec.feed(&framed[..FRAME_HEADER_LEN + TRACE_CONTEXT_LEN]);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadContext("zeroed trace ids"))
        ));
    }

    #[test]
    fn flags_and_length_must_agree_both_ways() {
        // flags=1 but length 0.
        let mut framed = encode_frame_with(
            FrameKind::Request,
            1,
            b"",
            DEFAULT_MAX_PAYLOAD,
            Some(ctx(3, 4)),
        )
        .unwrap();
        framed[7] = 0;
        let mut dec = FrameDecoder::new();
        dec.feed(&framed);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadContext("length disagrees with flags"))
        ));
        // flags=0 but length 16.
        let mut framed = encode_frame(FrameKind::Request, 1, b"", DEFAULT_MAX_PAYLOAD).unwrap();
        framed[7] = TRACE_CONTEXT_LEN as u8;
        let mut dec = FrameDecoder::new();
        dec.feed(&framed);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadContext("length disagrees with flags"))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_from_the_header_alone() {
        let mut framed = encode_frame(FrameKind::Request, 1, b"abc", 1024).unwrap();
        framed[16..20].copy_from_slice(&(2048u32).to_le_bytes());
        let mut dec = FrameDecoder::with_max_payload(1024);
        dec.feed(&framed[..FRAME_HEADER_LEN]);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::Oversized {
                declared: 2048,
                cap: 1024
            })
        ));
        // Encoding over the cap is refused symmetrically.
        assert!(matches!(
            encode_frame(FrameKind::Request, 1, &[0u8; 2048], 1024),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn truncation_is_reported_at_end_of_stream() {
        let framed = encode_frame_with(
            FrameKind::Request,
            1,
            b"hello",
            DEFAULT_MAX_PAYLOAD,
            Some(ctx(1, 2)),
        )
        .unwrap();
        // Cut inside the payload, and separately inside the extension.
        for cut in [framed.len() - 1, FRAME_HEADER_LEN + 3] {
            let mut dec = FrameDecoder::new();
            dec.feed(&framed[..cut]);
            assert!(dec.next_frame().unwrap().is_none(), "frame is incomplete");
            let err = dec.finish().unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { have, need }
                    if have == cut && need == framed.len()),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn read_frame_distinguishes_clean_eof_from_mid_frame_eof() {
        let framed = encode_frame_with(
            FrameKind::Reply,
            3,
            b"ok",
            DEFAULT_MAX_PAYLOAD,
            Some(ctx(5, 6)),
        )
        .unwrap();
        let mut cursor = std::io::Cursor::new(framed.clone());
        let frame = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(frame.request_id, 3);
        assert_eq!(frame.context, Some(ctx(5, 6)));
        assert!(read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .is_none());
        // EOF inside the extension bytes is mid-frame, not clean.
        let mut cut = std::io::Cursor::new(framed[..FRAME_HEADER_LEN + 5].to_vec());
        assert!(read_frame(&mut cut, DEFAULT_MAX_PAYLOAD).is_err());
    }

    #[test]
    fn back_to_back_frames_pop_in_order() {
        let mut stream = Vec::new();
        for id in 0..5u64 {
            // Alternate context/no-context to prove the boundary logic
            // accounts for the variable extension.
            let context = (id % 2 == 0).then(|| ctx(id + 1, id + 100));
            stream.extend(
                encode_frame_with(
                    FrameKind::Request,
                    id,
                    format!("m{id}").as_bytes(),
                    DEFAULT_MAX_PAYLOAD,
                    context,
                )
                .unwrap(),
            );
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        for id in 0..5u64 {
            let f = dec.next_frame().unwrap().unwrap();
            assert_eq!(f.request_id, id);
            assert_eq!(f.context, (id % 2 == 0).then(|| ctx(id + 1, id + 100)));
            assert_eq!(f.payload.as_slice(), format!("m{id}").as_bytes());
        }
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn duplicate_request_ids_are_framing_legal_and_decode_intact() {
        // The framing layer is deliberately id-agnostic: two well-formed
        // frames bearing the same request id both decode, each with its
        // own payload. Detecting the duplicate — and killing the
        // connection that produced it — is the mux routing table's job
        // (`mux::MuxTransport`), not the codec's; a codec that dropped or
        // merged duplicates would mask the protocol violation the mux
        // layer must report.
        let mut stream = Vec::new();
        stream.extend(encode_frame(FrameKind::Reply, 9, b"first", DEFAULT_MAX_PAYLOAD).unwrap());
        stream.extend(encode_frame(FrameKind::Reply, 9, b"second", DEFAULT_MAX_PAYLOAD).unwrap());
        let mut dec = FrameDecoder::new();
        dec.feed(&stream);
        let a = dec.next_frame().unwrap().unwrap();
        let b = dec.next_frame().unwrap().unwrap();
        assert_eq!(
            (a.request_id, a.payload.as_slice()),
            (9, b"first".as_slice())
        );
        assert_eq!(
            (b.request_id, b.payload.as_slice()),
            (9, b"second".as_slice())
        );
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn kind_bytes_round_trip_and_reject_unknown_values() {
        assert_eq!(
            FrameKind::from_byte(FrameKind::Request.to_byte()).unwrap(),
            FrameKind::Request
        );
        assert_eq!(
            FrameKind::from_byte(FrameKind::Reply.to_byte()).unwrap(),
            FrameKind::Reply
        );
        assert_eq!(
            FrameKind::from_byte(FrameKind::Bulk.to_byte()).unwrap(),
            FrameKind::Bulk
        );
        assert_eq!(
            FrameKind::from_byte(FrameKind::Join.to_byte()).unwrap(),
            FrameKind::Join
        );
        assert_eq!(
            FrameKind::from_byte(FrameKind::Leave.to_byte()).unwrap(),
            FrameKind::Leave
        );
        for bad in [5u8, 6, 0x7f, 0xff] {
            assert!(matches!(FrameKind::from_byte(bad), Err(FrameError::BadKind(b)) if b == bad));
        }
    }

    #[test]
    fn join_and_leave_frames_round_trip() {
        for kind in [FrameKind::Join, FrameKind::Leave] {
            let framed = encode_frame(kind, 77, b"rank-hello", DEFAULT_MAX_PAYLOAD).unwrap();
            let mut dec = FrameDecoder::new();
            dec.feed(&framed);
            let frame = dec.next_frame().unwrap().unwrap();
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.request_id, 77);
            assert_eq!(&frame.payload[..], b"rank-hello");
        }
    }
}
