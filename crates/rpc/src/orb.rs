//! A deliberately CORBA-shaped Object Request Broker.
//!
//! §3 of the paper: "Although CORBA enables robust and efficient
//! implementations for distributed applications, it is far too inefficient
//! when a method call is made within the same address space." This module
//! reproduces that cost structure faithfully so experiment E3 can measure
//! it: every invocation through an [`ObjRef`], even to an object in the
//! same process, pays
//!
//! 1. argument marshaling into a fresh buffer,
//! 2. transport traversal (loopback at minimum),
//! 3. object lookup by string key and dispatch by operation *name*,
//! 4. reply marshaling and demarshaling.
//!
//! This is also the genuinely useful half of the paper's story: the same
//! `ObjRef` behind a [`LatencyTransport`] is how the reference framework
//! implements *distributed* port connections ("CCA over CORBA ...
//! targeting distributed environments").

use crate::transport::{Dispatcher, LoopbackTransport, Transport};
use crate::wire::{decode_reply, decode_request, encode_reply, encode_request, Reply, Request};
use bytes::Bytes;
use cca_obs::TransportMetrics;
use cca_sidl::{DynObject, DynValue, SidlError};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The broker: a table of servant objects keyed by string.
#[derive(Default)]
pub struct Orb {
    objects: Mutex<BTreeMap<String, Arc<dyn DynObject>>>,
    metrics: TransportMetrics,
}

impl Orb {
    /// Creates an empty broker.
    pub fn new() -> Arc<Self> {
        Arc::new(Orb::default())
    }

    /// Registers a servant under `key`, replacing any previous registration.
    pub fn register(&self, key: impl Into<String>, object: Arc<dyn DynObject>) {
        self.objects.lock().insert(key.into(), object);
    }

    /// Removes a servant.
    pub fn unregister(&self, key: &str) -> Option<Arc<dyn DynObject>> {
        self.objects.lock().remove(key)
    }

    /// Number of registered servants.
    pub fn len(&self) -> usize {
        self.objects.lock().len()
    }

    /// True if no servants are registered.
    pub fn is_empty(&self) -> bool {
        self.objects.lock().is_empty()
    }

    /// Registered keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.objects.lock().keys().cloned().collect()
    }

    /// Server-side transport metrics: one round trip recorded per
    /// dispatched request (when counters are enabled), with request/reply
    /// payload sizes and dispatch latency.
    pub fn metrics(&self) -> &TransportMetrics {
        &self.metrics
    }
}

impl Dispatcher for Orb {
    fn dispatch(&self, request: Bytes) -> Result<Bytes, SidlError> {
        let _span = cca_obs::span("rpc.dispatch");
        let counters = cca_obs::counters_enabled();
        let started = if counters { Some(Instant::now()) } else { None };
        let request_len = request.len() as u64;
        let req = decode_request(request)?;
        let servant = self.objects.lock().get(&req.object_key).cloned();
        let result = match servant {
            Some(obj) => match obj.invoke(&req.operation, req.args) {
                Ok(v) => Ok(v),
                Err(SidlError::UserException {
                    exception_type,
                    message,
                }) => Err((exception_type, message)),
                Err(other) => Err(("cca.rpc.SystemException".to_string(), other.to_string())),
            },
            None => Err((
                "cca.rpc.ObjectNotFound".to_string(),
                format!("no servant registered under '{}'", req.object_key),
            )),
        };
        let reply = encode_reply(&Reply {
            request_id: req.request_id,
            result,
        })?;
        if let Some(started) = started {
            // bytes_in = what arrived at the servant, bytes_out = the reply.
            self.metrics.record_round_trip(
                &req.operation,
                reply.len() as u64,
                request_len,
                started.elapsed().as_nanos() as u64,
            );
        }
        Ok(reply)
    }
}

/// A client-side object reference (CORBA's `Object`): invokes operations on
/// a remote (or loopback-local) servant through a transport.
pub struct ObjRef {
    key: String,
    transport: Arc<dyn Transport>,
    next_id: AtomicU64,
    metrics: TransportMetrics,
}

impl ObjRef {
    /// Creates a reference to the servant registered under `key`, reachable
    /// through `transport`.
    pub fn new(key: impl Into<String>, transport: Arc<dyn Transport>) -> Arc<Self> {
        Arc::new(ObjRef {
            key: key.into(),
            transport,
            next_id: AtomicU64::new(1),
            metrics: TransportMetrics::default(),
        })
    }

    /// Convenience: a loopback reference into a local ORB — the "CORBA in
    /// the same address space" configuration of §3.
    pub fn loopback(key: impl Into<String>, orb: Arc<Orb>) -> Arc<Self> {
        Self::new(key, LoopbackTransport::new(orb))
    }

    /// Convenience: a reference to a servant hosted by a
    /// [`TcpServer`](crate::tcp::TcpServer) at `addr` — the genuinely
    /// distributed configuration of §4, with default pool and no socket
    /// timeout (build a [`crate::tcp::TcpTransport`] directly for those).
    pub fn tcp(key: impl Into<String>, addr: impl Into<String>) -> Arc<Self> {
        Self::new(key, Arc::new(crate::tcp::TcpTransport::new(addr)))
    }

    /// The servant key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Client-side transport metrics: marshaled bytes each way, round
    /// trips per operation, and full round-trip latency (marshal →
    /// transport → demarshal), recorded when counters are enabled.
    pub fn metrics(&self) -> &TransportMetrics {
        &self.metrics
    }

    /// Invokes `operation` with `args`: marshal → transport → demarshal.
    pub fn invoke(&self, operation: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
        let _span = cca_obs::span("rpc.invoke");
        let counters = cca_obs::counters_enabled();
        let started = if counters { Some(Instant::now()) } else { None };
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let bytes = encode_request(&Request {
            request_id,
            object_key: self.key.clone(),
            operation: operation.to_string(),
            args,
        })?;
        let bytes_out = bytes.len() as u64;
        let reply_bytes = self.transport.call(bytes)?;
        let bytes_in = reply_bytes.len() as u64;
        if let Some(started) = started {
            self.metrics.record_round_trip(
                operation,
                bytes_out,
                bytes_in,
                started.elapsed().as_nanos() as u64,
            );
        }
        let reply = decode_reply(reply_bytes)?;
        if reply.request_id != request_id {
            return Err(SidlError::invoke(format!(
                "reply correlation mismatch: sent {request_id}, got {}",
                reply.request_id
            )));
        }
        match reply.result {
            Ok(v) => Ok(v),
            Err((exception_type, message)) => Err(SidlError::UserException {
                exception_type,
                message,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A servant with a bit of state.
    struct Accumulator {
        total: Mutex<f64>,
    }

    impl DynObject for Accumulator {
        fn sidl_type(&self) -> &str {
            "demo.Accumulator"
        }

        fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
            match method {
                "add" => {
                    let x = args[0].as_double()?;
                    let mut t = self.total.lock();
                    *t += x;
                    Ok(DynValue::Double(*t))
                }
                "total" => Ok(DynValue::Double(*self.total.lock())),
                "explode" => Err(SidlError::user("demo.Boom", "as requested")),
                other => Err(SidlError::invoke(format!("no method '{other}'"))),
            }
        }
    }

    fn setup() -> (Arc<Orb>, Arc<ObjRef>) {
        let orb = Orb::new();
        orb.register(
            "acc",
            Arc::new(Accumulator {
                total: Mutex::new(0.0),
            }),
        );
        let objref = ObjRef::loopback("acc", Arc::clone(&orb));
        (orb, objref)
    }

    #[test]
    fn invocation_through_the_orb() {
        let (_orb, acc) = setup();
        let r = acc.invoke("add", vec![DynValue::Double(2.5)]).unwrap();
        assert!(matches!(r, DynValue::Double(v) if v == 2.5));
        let r = acc.invoke("add", vec![DynValue::Double(1.5)]).unwrap();
        assert!(matches!(r, DynValue::Double(v) if v == 4.0));
        let r = acc.invoke("total", vec![]).unwrap();
        assert!(matches!(r, DynValue::Double(v) if v == 4.0));
    }

    #[test]
    fn user_exceptions_cross_the_wire() {
        let (_orb, acc) = setup();
        let e = acc.invoke("explode", vec![]).unwrap_err();
        match e {
            SidlError::UserException {
                exception_type,
                message,
            } => {
                assert_eq!(exception_type, "demo.Boom");
                assert_eq!(message, "as requested");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn system_errors_become_system_exceptions() {
        let (_orb, acc) = setup();
        let e = acc.invoke("missing", vec![]).unwrap_err();
        match e {
            SidlError::UserException { exception_type, .. } => {
                assert_eq!(exception_type, "cca.rpc.SystemException");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_object_key() {
        let (orb, _) = setup();
        let bogus = ObjRef::loopback("nope", orb);
        let e = bogus.invoke("total", vec![]).unwrap_err();
        assert!(e.to_string().contains("ObjectNotFound"));
    }

    #[test]
    fn registration_lifecycle() {
        let (orb, acc) = setup();
        assert_eq!(orb.len(), 1);
        assert_eq!(orb.keys(), vec!["acc".to_string()]);
        assert!(orb.unregister("acc").is_some());
        assert!(orb.is_empty());
        // Existing references now fail cleanly.
        assert!(acc.invoke("total", vec![]).is_err());
    }

    #[test]
    fn transport_metrics_count_round_trips_and_bytes() {
        let (orb, acc) = setup();
        assert_eq!(acc.metrics().round_trips(), 0);
        cca_obs::set_counters(true);
        acc.invoke("add", vec![DynValue::Double(1.0)]).unwrap();
        acc.invoke("add", vec![DynValue::Double(2.0)]).unwrap();
        acc.invoke("total", vec![]).unwrap();
        cca_obs::set_counters(false);
        // Counters off: the exchange happens but is not recorded.
        acc.invoke("total", vec![]).unwrap();
        let client = acc.metrics().snapshot();
        assert_eq!(client.round_trips, 3);
        assert!(client.bytes_out > 0 && client.bytes_in > 0);
        assert_eq!(
            client.per_method,
            vec![("add".to_string(), 2), ("total".to_string(), 1)]
        );
        // The loopback server saw the same payloads from the other side.
        let server = orb.metrics().snapshot();
        assert_eq!(server.round_trips, 3);
        assert_eq!(server.bytes_in, client.bytes_out);
        assert_eq!(server.bytes_out, client.bytes_in);
        assert!(server.latency.count >= 3);
    }

    #[test]
    fn arrays_cross_the_orb() {
        use cca_data::NdArray;
        struct Summer;
        impl DynObject for Summer {
            fn sidl_type(&self) -> &str {
                "demo.Summer"
            }
            fn invoke(&self, method: &str, args: Vec<DynValue>) -> Result<DynValue, SidlError> {
                match method {
                    "sum" => {
                        let a = args[0].as_double_array()?;
                        Ok(DynValue::Double(a.as_slice().iter().sum()))
                    }
                    other => Err(SidlError::invoke(format!("no method '{other}'"))),
                }
            }
        }
        let orb = Orb::new();
        orb.register("summer", Arc::new(Summer));
        let objref = ObjRef::loopback("summer", orb);
        let arr = NdArray::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let r = objref
            .invoke("sum", vec![DynValue::DoubleArray(arr)])
            .unwrap();
        assert!(matches!(r, DynValue::Double(v) if v == 10.0));
    }
}
