#![warn(missing_docs)]
//! # cca-rpc — distributed substrate and the CORBA-like baseline
//!
//! The paper distinguishes two ways a connected port can behave: the
//! direct-connect fast path (§6.2 — a virtual call, provided by
//! `cca-core`), and *distributed* connections where "the provided
//! DirectConnectPort can be translated through a proxy ... without the
//! components on either end of the connection needing to know". This crate
//! supplies the proxy machinery:
//!
//! * [`wire`] — a CDR-flavoured binary marshaling of [`cca_sidl::DynValue`]
//!   request/reply messages (what a CORBA GIOP implementation does).
//! * [`transport`] — synchronous request/response transports: an in-process
//!   loopback and a latency/bandwidth-simulating wrapper standing in for a
//!   real network (see DESIGN.md substitutions).
//! * [`orb`] — a deliberately CORBA-shaped object request broker: objects
//!   registered under string keys, every invocation marshaled, dispatched
//!   by operation *name*, and demarshaled — even between objects in the
//!   same address space. This is the baseline for the paper's §3 claim
//!   that CORBA "is far too inefficient when a method call is made within
//!   the same address space" (experiment E3).
//! * [`proxy`] — a [`cca_sidl::DynObject`] that forwards through an ORB
//!   reference, so a framework can hand a component a remote port through
//!   the very same `PortHandle` mechanism as a local one.
//! * [`resilient`] — deadline enforcement ([`DeadlineTransport`]: a wedged
//!   round trip returns `cca.rpc.DeadlineExceeded` instead of hanging) and
//!   seed-deterministic fault injection ([`FaultTransport`], driving the
//!   CI fault matrix).
//! * [`frame`] — the boundary layer for real networks: length-prefixed,
//!   versioned frames over the [`wire`] encoding, with a payload cap and
//!   typed rejection of malformed input (proptested in
//!   `tests/frame_proptest.rs`).
//! * [`tcp`] — the actual wire: a threaded `std::net` server dispatching
//!   into the same [`transport::Dispatcher`] as the loopback, and a
//!   pooled, timeout-aware client [`TcpTransport`] whose failures feed
//!   the circuit-breaker machinery unchanged.
//! * [`mux`] — the same wire, multiplexed: [`mux::MuxTransport`] pipelines
//!   thousands of concurrent calls over a handful of sockets by routing
//!   replies to waiters by frame request id, and [`mux::MuxServer`] serves
//!   them from an event-driven readiness loop with per-connection
//!   backpressure instead of a thread per peer (experiment E13).
//! * [`bulk`] — the data plane: `FrameKind::Bulk` slabs carrying M×N
//!   array-redistribution chunks as raw little-endian bytes (no
//!   per-element encoding), acknowledged with resume watermarks so a
//!   dropped connection costs one chunk, not the array (experiment E15).

pub mod bulk;
pub mod frame;
pub mod mux;
pub mod orb;
pub mod proxy;
pub mod resilient;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use bulk::{
    BulkAck, BulkElem, BulkError, BulkSink, ElemTag, SlabHeader, BULK_ACK_LEN, BULK_EXCEPTION_TYPE,
    BULK_SLAB_HEADER_LEN,
};
pub use frame::{
    encode_frame, encode_frame_with, write_frame, write_frame_with, Frame, FrameDecoder,
    FrameError, FrameKind, FRAME_VERSION, TRACE_CONTEXT_LEN,
};
pub use mux::{
    BulkChannel, MuxServer, MuxServerConfig, MuxTransport, PendingReply, SessionSink,
    DEFAULT_MUX_CONNECTIONS,
};
pub use orb::{ObjRef, Orb};
pub use proxy::RemotePortProxy;
pub use resilient::{DeadlineTransport, FaultAction, FaultTransport, INJECTED_FAULT_TYPE};
pub use tcp::{TcpServer, TcpTransport, CONNECTION_EXCEPTION_TYPE};
pub use transport::{LatencyTransport, LoopbackTransport, Transport};
pub use wire::{decode_reply, decode_request, encode_reply, encode_request, Reply, Request};
