//! Resilience wrappers for ORB transports: deadlines and deterministic
//! fault injection.
//!
//! * [`DeadlineTransport`] — bounds each round trip through the wrapped
//!   transport by a per-call budget on a [`Clock`]. A wedged transport
//!   (one that charges unbounded simulated time) surfaces as a
//!   `cca.rpc.DeadlineExceeded` user exception, which
//!   `cca_core::CcaError::from` turns into `CcaError::DeadlineExceeded`
//!   on the port side — the caller gets an error instead of hanging.
//! * [`FaultTransport`] — injects failures (errors and simulated stalls)
//!   on a schedule that is a pure function of its seed, so the CI fault
//!   matrix (`CCA_FAULT_SEED` ∈ {1, 7, 42, 1999}) replays the exact same
//!   fault sequence on every run.
//!
//! Like `LatencyTransport`, both are simulation, not emulation: time is
//! charged to the injected clock (a `MockClock` in tests), never slept on
//! the wall clock.

use crate::transport::Transport;
use bytes::Bytes;
use cca_core::resilience::{Clock, SplitMix64, DEADLINE_EXCEPTION_TYPE};
use cca_sidl::SidlError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The SIDL exception type an injected fault raises. Distinct from real
/// dispatch errors so tests can assert a failure was the scheduled one.
pub const INJECTED_FAULT_TYPE: &str = "cca.rpc.InjectedFault";

/// Bounds every round trip through `inner` by `deadline_ns` of clock time.
///
/// The elapsed check happens *after* `inner.call` returns — this is a
/// simulated-time facility: a "wedged" inner transport models its stall by
/// charging the shared clock (see [`FaultTransport`] stalls, or any
/// clock-charging wrapper), and the deadline converts that charge into an
/// error instead of letting the caller absorb it silently. Replies that
/// arrive over budget are discarded (the round trip *did not* meet its
/// deadline, even though bytes eventually came back).
pub struct DeadlineTransport {
    inner: Arc<dyn Transport>,
    deadline_ns: u64,
    clock: Arc<dyn Clock>,
    deadline_hits: AtomicU64,
}

impl DeadlineTransport {
    /// Wraps `inner` with a `deadline_ns` per-call budget measured on
    /// `clock`.
    pub fn new(inner: Arc<dyn Transport>, deadline_ns: u64, clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(DeadlineTransport {
            inner,
            deadline_ns,
            clock,
            deadline_hits: AtomicU64::new(0),
        })
    }

    /// The per-call budget in nanoseconds.
    pub fn deadline_ns(&self) -> u64 {
        self.deadline_ns
    }

    /// How many calls have been failed for exceeding the deadline.
    pub fn deadline_hits(&self) -> u64 {
        self.deadline_hits.load(Ordering::Relaxed)
    }
}

impl Transport for DeadlineTransport {
    fn call(&self, request: Bytes) -> Result<Bytes, SidlError> {
        let started = self.clock.now_ns();
        let result = self.inner.call(request);
        let elapsed = self.clock.now_ns().saturating_sub(started);
        if elapsed > self.deadline_ns {
            self.deadline_hits.fetch_add(1, Ordering::Relaxed);
            cca_obs::resilience().record_deadline_hit();
            cca_obs::trace_instant("rpc.deadline_exceeded");
            let message = format!(
                "round trip took {elapsed} ns, budget was {} ns",
                self.deadline_ns
            );
            if cca_obs::flight::enabled() {
                cca_obs::flight::record_incident("DeadlineExceeded", &message);
            }
            return Err(SidlError::user(DEADLINE_EXCEPTION_TYPE, message));
        }
        result
    }
}

/// One entry of a [`FaultTransport`] schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the call untouched.
    Pass,
    /// Fail the call with an [`INJECTED_FAULT_TYPE`] user exception.
    Fail,
    /// Charge `ns` of simulated time to the clock, then deliver the call
    /// — models a wedged/slow link. Under a [`DeadlineTransport`] whose
    /// budget is smaller, this becomes a deadline hit.
    Stall(u64),
}

/// Deterministic fault injector: each call's fate is drawn from a
/// seeded [`SplitMix64`], so a given `(seed, fail_permille,
/// stall_permille, stall_ns)` quadruple produces the identical fault
/// sequence on every run — the contract the CI fault matrix relies on.
pub struct FaultTransport {
    inner: Arc<dyn Transport>,
    clock: Arc<dyn Clock>,
    schedule: parking_lot::Mutex<SplitMix64>,
    fail_permille: u64,
    stall_permille: u64,
    stall_ns: u64,
    injected_failures: AtomicU64,
    injected_stalls: AtomicU64,
    calls: AtomicU64,
}

impl FaultTransport {
    /// Wraps `inner`. Out of every 1000 calls (statistically),
    /// `fail_permille` fail outright and `stall_permille` stall for
    /// `stall_ns` of simulated clock time before delivering.
    pub fn new(
        inner: Arc<dyn Transport>,
        clock: Arc<dyn Clock>,
        seed: u64,
        fail_permille: u64,
        stall_permille: u64,
        stall_ns: u64,
    ) -> Arc<Self> {
        Arc::new(FaultTransport {
            inner,
            clock,
            schedule: parking_lot::Mutex::new(SplitMix64::new(seed)),
            fail_permille,
            stall_permille,
            stall_ns,
            injected_failures: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
            calls: AtomicU64::new(0),
        })
    }

    /// The next scheduled action (draws from the schedule PRNG).
    fn next_action(&self) -> FaultAction {
        let draw = self.schedule.lock().next_below(1000);
        if draw < self.fail_permille {
            FaultAction::Fail
        } else if draw < self.fail_permille + self.stall_permille {
            FaultAction::Stall(self.stall_ns)
        } else {
            FaultAction::Pass
        }
    }

    /// Calls carried (including failed/stalled ones).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected_failures.load(Ordering::Relaxed)
    }

    /// Stalls injected so far.
    pub fn injected_stalls(&self) -> u64 {
        self.injected_stalls.load(Ordering::Relaxed)
    }
}

impl Transport for FaultTransport {
    fn call(&self, request: Bytes) -> Result<Bytes, SidlError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        match self.next_action() {
            FaultAction::Pass => self.inner.call(request),
            FaultAction::Fail => {
                self.injected_failures.fetch_add(1, Ordering::Relaxed);
                cca_obs::trace_instant("rpc.injected_fault");
                Err(SidlError::user(
                    INJECTED_FAULT_TYPE,
                    format!("scheduled failure at call {n}"),
                ))
            }
            FaultAction::Stall(ns) => {
                self.injected_stalls.fetch_add(1, Ordering::Relaxed);
                cca_obs::trace_instant("rpc.injected_stall");
                self.clock.sleep_ns(ns);
                self.inner.call(request)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Dispatcher, LoopbackTransport};
    use cca_core::resilience::MockClock;
    use cca_core::CcaError;

    struct Echo;
    impl Dispatcher for Echo {
        fn dispatch(&self, request: Bytes) -> Result<Bytes, SidlError> {
            Ok(request)
        }
    }

    fn loopback() -> Arc<LoopbackTransport> {
        LoopbackTransport::new(Arc::new(Echo))
    }

    /// A transport that models a wedge by charging the clock.
    struct Wedged {
        clock: Arc<MockClock>,
        charge_ns: u64,
        inner: Arc<dyn Transport>,
    }
    impl Transport for Wedged {
        fn call(&self, request: Bytes) -> Result<Bytes, SidlError> {
            self.clock.advance_ns(self.charge_ns);
            self.inner.call(request)
        }
    }

    #[test]
    fn deadline_passes_fast_calls_through() {
        let clock = MockClock::new();
        let t = DeadlineTransport::new(loopback(), 1_000, clock);
        let reply = t.call(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(&reply[..], b"ping");
        assert_eq!(t.deadline_hits(), 0);
        assert_eq!(t.deadline_ns(), 1_000);
    }

    #[test]
    fn wedged_transport_returns_deadline_exceeded_not_a_hang() {
        let clock = MockClock::new();
        let wedged = Arc::new(Wedged {
            clock: clock.clone(),
            charge_ns: 50_000,
            inner: loopback(),
        });
        let t = DeadlineTransport::new(wedged, 1_000, clock);
        let err = t.call(Bytes::from_static(b"ping")).unwrap_err();
        match &err {
            SidlError::UserException { exception_type, .. } => {
                assert_eq!(exception_type, DEADLINE_EXCEPTION_TYPE);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(t.deadline_hits(), 1);
        // Crossing into the port layer, the exception keeps its meaning.
        let cca: CcaError = err.into();
        assert!(matches!(cca, CcaError::DeadlineExceeded(_)));
    }

    #[test]
    fn fault_schedule_is_a_pure_function_of_the_seed() {
        let run = |seed: u64| {
            let clock = MockClock::new();
            let t = FaultTransport::new(loopback(), clock, seed, 300, 200, 10);
            (0..100)
                .map(|_| t.call(Bytes::from_static(b"x")).is_ok())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(42), run(42), "same seed, same fault sequence");
        assert_ne!(run(42), run(43), "different seed, different sequence");
    }

    #[test]
    fn fault_counters_and_stall_time_add_up() {
        let clock = MockClock::new();
        let t = FaultTransport::new(loopback(), clock.clone(), 7, 250, 250, 1_000);
        let mut failures = 0u64;
        for _ in 0..200 {
            if t.call(Bytes::from_static(b"x")).is_err() {
                failures += 1;
            }
        }
        assert_eq!(t.calls(), 200);
        assert_eq!(t.injected_failures(), failures);
        assert!(failures > 0, "a 25% failure rate over 200 calls fired");
        assert!(t.injected_stalls() > 0);
        assert_eq!(
            clock.now_ns(),
            t.injected_stalls() * 1_000,
            "all simulated time came from stalls"
        );
    }

    #[test]
    fn stalls_under_a_deadline_become_deadline_hits() {
        let clock = MockClock::new();
        // Every call stalls 10_000 ns; budget is 1_000 ns.
        let faulty = FaultTransport::new(loopback(), clock.clone(), 1, 0, 1000, 10_000);
        let t = DeadlineTransport::new(faulty, 1_000, clock);
        for _ in 0..5 {
            let err = t.call(Bytes::from_static(b"x")).unwrap_err();
            assert!(err.to_string().contains("budget"), "{err}");
        }
        assert_eq!(t.deadline_hits(), 5);
    }

    #[test]
    fn injected_failures_cross_the_orb_as_user_exceptions() {
        use crate::orb::{ObjRef, Orb};
        use cca_sidl::{DynObject, DynValue};

        struct Answer;
        impl DynObject for Answer {
            fn sidl_type(&self) -> &str {
                "demo.Answer"
            }
            fn invoke(&self, _: &str, _: Vec<DynValue>) -> Result<DynValue, SidlError> {
                Ok(DynValue::Int(42))
            }
        }
        let orb = Orb::new();
        orb.register("answer", Arc::new(Answer));
        let clock = MockClock::new();
        // Fail every call.
        let faulty = FaultTransport::new(
            crate::transport::LoopbackTransport::new(orb),
            clock,
            9,
            1000,
            0,
            0,
        );
        let objref = ObjRef::new("answer", faulty);
        let err = objref.invoke("value", vec![]).unwrap_err();
        match err {
            SidlError::UserException { exception_type, .. } => {
                assert_eq!(exception_type, INJECTED_FAULT_TYPE);
            }
            other => panic!("{other:?}"),
        }
    }
}
