//! The bulk data plane: raw little-endian slabs for M×N redistribution.
//!
//! The generic [`wire`](crate::wire) encoding marshals a `DoubleArray` one
//! element at a time — tag byte, shape header, then a `put_f64_le` per
//! element on the way out and a matching decode plus an `NdArray`
//! allocation on the way in. That is the right trade for control-plane
//! calls (self-describing, reflective), and exactly the wrong one for
//! streaming a gigabyte of already-typed array data whose layout both
//! sides precomputed from the same `RedistPlan`. This module is the other
//! half of the bargain: a [`FrameKind::Bulk`](crate::frame::FrameKind)
//! frame whose payload is a *slab* —
//!
//! ```text
//! offset  size  field
//! 0       8     plan generation (u64 LE) — both sides must agree which
//!               compiled plan the offsets refer to
//! 8       4     transfer index (u32 LE) into CompiledPlan::transfers()
//! 12      1     element type tag (ElemTag)
//! 13      3     reserved, must be zero
//! 16      8     chunk offset in bytes (u64 LE) from the start of the
//!               transfer's packed representation
//! 24      8     transfer total bytes (u64 LE) — redundant, so a single
//!               slab is self-delimiting and a mismatch is detectable
//! 32      …     raw little-endian element bytes, no per-element framing
//! ```
//!
//! The receiver acknowledges each slab with an ordinary `Reply` frame
//! carrying a [`BulkAck`]: the generation, the transfer, and the highest
//! byte offset through which the transfer is now *contiguously* landed.
//! The watermark is what makes mid-stream failure cheap — a retry after a
//! dropped connection resumes from the last acked chunk instead of
//! resending the array (see `cca_framework::bulk`).
//!
//! Every malformed slab is a typed [`BulkError`], surfaced to transports
//! as a `SidlError` of type [`BULK_EXCEPTION_TYPE`]; like frame-level
//! garbage, it is fatal only for the connection that produced it.

use bytes::Bytes;
use cca_sidl::SidlError;
use std::fmt;

/// Fixed slab header size in bytes (element bytes follow it).
pub const BULK_SLAB_HEADER_LEN: usize = 32;

/// Size of an encoded [`BulkAck`] payload.
pub const BULK_ACK_LEN: usize = 24;

/// The SIDL exception type raised for bulk-protocol violations: a slab
/// that is truncated, misaligned, mistagged, or aimed at a transfer /
/// generation the receiver does not recognize.
pub const BULK_EXCEPTION_TYPE: &str = "cca.rpc.BulkProtocol";

/// Element type carried by a slab, one byte on the wire. The tag exists
/// so a receiver scattering raw bytes into a typed slice can prove the
/// sender agrees about the type *before* touching any memory — a size
/// match alone would let an `i64` slab land in an `f64` array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ElemTag {
    /// 64-bit IEEE float.
    F64 = 1,
    /// 32-bit IEEE float.
    F32 = 2,
    /// 64-bit signed integer.
    I64 = 3,
    /// 32-bit signed integer.
    I32 = 4,
    /// 64-bit unsigned integer.
    U64 = 5,
    /// Raw byte.
    U8 = 6,
}

impl ElemTag {
    /// Size in bytes of one element of this type.
    pub fn elem_size(self) -> usize {
        match self {
            ElemTag::F64 | ElemTag::I64 | ElemTag::U64 => 8,
            ElemTag::F32 | ElemTag::I32 => 4,
            ElemTag::U8 => 1,
        }
    }

    /// Decodes the tag byte; unknown values are typed errors.
    pub fn from_byte(b: u8) -> Result<Self, BulkError> {
        match b {
            1 => Ok(ElemTag::F64),
            2 => Ok(ElemTag::F32),
            3 => Ok(ElemTag::I64),
            4 => Ok(ElemTag::I32),
            5 => Ok(ElemTag::U64),
            6 => Ok(ElemTag::U8),
            other => Err(BulkError::BadTag(other)),
        }
    }
}

/// A fixed-width element type that can ride a bulk slab. The gather side
/// writes elements with [`write_le`](BulkElem::write_le) straight from the
/// source array's local storage; the scatter side reads them with
/// [`read_le`](BulkElem::read_le) straight into the destination slice —
/// no intermediate typed buffer on either side.
pub trait BulkElem: Copy + Default + Send + Sync + 'static {
    /// The wire tag for this type.
    const TAG: ElemTag;
    /// Bytes per element on the wire (and in memory).
    const SIZE: usize;
    /// Writes `self` as `SIZE` little-endian bytes into `out`.
    fn write_le(self, out: &mut [u8]);
    /// Reads one element from the first `SIZE` bytes of `raw`.
    fn read_le(raw: &[u8]) -> Self;
}

macro_rules! bulk_elem {
    ($($ty:ty => $tag:expr),+ $(,)?) => {
        $(
            impl BulkElem for $ty {
                const TAG: ElemTag = $tag;
                const SIZE: usize = std::mem::size_of::<$ty>();
                #[inline]
                fn write_le(self, out: &mut [u8]) {
                    out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
                }
                #[inline]
                fn read_le(raw: &[u8]) -> Self {
                    <$ty>::from_le_bytes(raw[..Self::SIZE].try_into().unwrap())
                }
            }
        )+
    };
}

bulk_elem! {
    f64 => ElemTag::F64,
    f32 => ElemTag::F32,
    i64 => ElemTag::I64,
    i32 => ElemTag::I32,
    u64 => ElemTag::U64,
    u8  => ElemTag::U8,
}

/// Why a byte sequence is not a valid slab (or ack). Typed, never a
/// panic; the connection that produced one is killed, nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BulkError {
    /// The payload ended inside the slab (or ack) header.
    Truncated {
        /// Bytes present.
        have: usize,
        /// Bytes the header needs.
        need: usize,
    },
    /// The element-type tag byte names no known type.
    BadTag(u8),
    /// The sender's element tag disagrees with the receiver's array type.
    TagMismatch {
        /// Tag the slab carried.
        got: ElemTag,
        /// Tag the receiving array requires.
        want: ElemTag,
    },
    /// Reserved header bytes were nonzero.
    BadReserved,
    /// Chunk offset or body length is not a multiple of the element size.
    Misaligned {
        /// The offending byte count.
        value: u64,
        /// The element size it must divide by.
        elem_size: usize,
    },
    /// The chunk reaches past the transfer's declared total.
    OutOfRange {
        /// Chunk offset in bytes.
        offset: u64,
        /// Chunk body length in bytes.
        len: u64,
        /// Declared transfer total in bytes.
        total: u64,
    },
    /// The slab's plan generation is not the one the receiver serves.
    GenerationMismatch {
        /// Generation the slab named.
        got: u64,
        /// Generation the receiver is landing.
        want: u64,
    },
    /// The transfer index is outside the compiled plan.
    BadTransfer {
        /// Index the slab named.
        got: u32,
        /// Number of transfers in the plan.
        count: usize,
    },
    /// The slab's declared transfer total disagrees with the plan's.
    TotalMismatch {
        /// Total the slab declared.
        got: u64,
        /// Total the plan computes.
        want: u64,
    },
}

impl fmt::Display for BulkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BulkError::Truncated { have, need } => {
                write!(f, "bulk payload truncated ({have} of {need} header bytes)")
            }
            BulkError::BadTag(b) => write!(f, "unknown bulk element tag {b}"),
            BulkError::TagMismatch { got, want } => {
                write!(
                    f,
                    "bulk element tag {got:?} does not match array type {want:?}"
                )
            }
            BulkError::BadReserved => write!(f, "nonzero reserved bytes in bulk header"),
            BulkError::Misaligned { value, elem_size } => {
                write!(
                    f,
                    "bulk byte count {value} not a multiple of element size {elem_size}"
                )
            }
            BulkError::OutOfRange { offset, len, total } => {
                write!(
                    f,
                    "bulk chunk [{offset}, {}) exceeds transfer total {total}",
                    offset + len
                )
            }
            BulkError::GenerationMismatch { got, want } => {
                write!(
                    f,
                    "bulk slab for plan generation {got}, receiver serves {want}"
                )
            }
            BulkError::BadTransfer { got, count } => {
                write!(
                    f,
                    "bulk transfer index {got} outside plan of {count} transfers"
                )
            }
            BulkError::TotalMismatch { got, want } => {
                write!(
                    f,
                    "bulk transfer total {got} disagrees with plan total {want}"
                )
            }
        }
    }
}

impl std::error::Error for BulkError {}

impl From<BulkError> for SidlError {
    fn from(e: BulkError) -> Self {
        SidlError::user(BULK_EXCEPTION_TYPE, e.to_string())
    }
}

/// The parsed header of one slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabHeader {
    /// Plan generation both sides agreed on out of band.
    pub generation: u64,
    /// Index into `CompiledPlan::transfers()`.
    pub transfer: u32,
    /// Element type of the body bytes.
    pub tag: ElemTag,
    /// Byte offset of this chunk within the transfer's packed bytes.
    pub chunk_offset: u64,
    /// Total packed bytes of the whole transfer.
    pub total_bytes: u64,
}

impl SlabHeader {
    /// Encodes the header into the first [`BULK_SLAB_HEADER_LEN`] bytes of
    /// `out` (which must be at least that long).
    pub fn encode_into(&self, out: &mut [u8]) {
        out[0..8].copy_from_slice(&self.generation.to_le_bytes());
        out[8..12].copy_from_slice(&self.transfer.to_le_bytes());
        out[12] = self.tag as u8;
        out[13..16].fill(0);
        out[16..24].copy_from_slice(&self.chunk_offset.to_le_bytes());
        out[24..32].copy_from_slice(&self.total_bytes.to_le_bytes());
    }

    /// Parses and validates a slab payload, returning the header and the
    /// body (element bytes) as a zero-copy sub-view. Checks everything
    /// that does not require the plan: length, tag, reserved bytes,
    /// element alignment of both offset and body, and range against the
    /// declared total. Plan-dependent checks (generation, transfer index,
    /// total agreement) are the landing zone's job.
    pub fn decode(payload: &Bytes) -> Result<(SlabHeader, Bytes), BulkError> {
        let raw = payload.as_slice();
        if raw.len() < BULK_SLAB_HEADER_LEN {
            return Err(BulkError::Truncated {
                have: raw.len(),
                need: BULK_SLAB_HEADER_LEN,
            });
        }
        let tag = ElemTag::from_byte(raw[12])?;
        if raw[13..16] != [0, 0, 0] {
            return Err(BulkError::BadReserved);
        }
        let header = SlabHeader {
            generation: u64::from_le_bytes(raw[0..8].try_into().unwrap()),
            transfer: u32::from_le_bytes(raw[8..12].try_into().unwrap()),
            tag,
            chunk_offset: u64::from_le_bytes(raw[16..24].try_into().unwrap()),
            total_bytes: u64::from_le_bytes(raw[24..32].try_into().unwrap()),
        };
        let elem_size = tag.elem_size() as u64;
        let body_len = (raw.len() - BULK_SLAB_HEADER_LEN) as u64;
        if !header.chunk_offset.is_multiple_of(elem_size) {
            return Err(BulkError::Misaligned {
                value: header.chunk_offset,
                elem_size: tag.elem_size(),
            });
        }
        if !body_len.is_multiple_of(elem_size) {
            return Err(BulkError::Misaligned {
                value: body_len,
                elem_size: tag.elem_size(),
            });
        }
        if header.chunk_offset + body_len > header.total_bytes {
            return Err(BulkError::OutOfRange {
                offset: header.chunk_offset,
                len: body_len,
                total: header.total_bytes,
            });
        }
        Ok((header, payload.slice(BULK_SLAB_HEADER_LEN..)))
    }
}

/// A receiver's acknowledgment of one slab, returned as the payload of
/// the `Reply` frame that answers a `Bulk` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkAck {
    /// Echo of the slab's plan generation.
    pub generation: u64,
    /// Echo of the slab's transfer index.
    pub transfer: u32,
    /// Bytes of the transfer now contiguously landed from offset 0 — the
    /// resume watermark: after a failure, the sender restarts at this
    /// offset, not at zero.
    pub acked_through: u64,
}

impl BulkAck {
    /// Encodes the ack as a [`BULK_ACK_LEN`]-byte payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; BULK_ACK_LEN];
        out[0..8].copy_from_slice(&self.generation.to_le_bytes());
        out[8..12].copy_from_slice(&self.transfer.to_le_bytes());
        // bytes 12..16 reserved, zero
        out[16..24].copy_from_slice(&self.acked_through.to_le_bytes());
        out
    }

    /// Decodes an ack payload; short or garbage bytes are typed errors.
    pub fn decode(raw: &[u8]) -> Result<Self, BulkError> {
        if raw.len() < BULK_ACK_LEN {
            return Err(BulkError::Truncated {
                have: raw.len(),
                need: BULK_ACK_LEN,
            });
        }
        if raw[12..16] != [0, 0, 0, 0] {
            return Err(BulkError::BadReserved);
        }
        Ok(BulkAck {
            generation: u64::from_le_bytes(raw[0..8].try_into().unwrap()),
            transfer: u32::from_le_bytes(raw[8..12].try_into().unwrap()),
            acked_through: u64::from_le_bytes(raw[16..24].try_into().unwrap()),
        })
    }
}

/// Where a server lands bulk slabs. `MuxServer::set_bulk_sink` installs
/// one; every decoded `Bulk` frame is handed to it on a dispatch worker,
/// and the returned bytes travel back as the `Reply` payload (normally an
/// encoded [`BulkAck`]). An `Err` kills the producing connection — same
/// blast radius as a framing error — and nothing else.
pub trait BulkSink: Send + Sync {
    /// Lands one slab; returns the ack payload to send back.
    fn receive(&self, payload: Bytes) -> Result<Vec<u8>, SidlError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slab(header: SlabHeader, body: &[u8]) -> Bytes {
        let mut raw = vec![0u8; BULK_SLAB_HEADER_LEN + body.len()];
        header.encode_into(&mut raw);
        raw[BULK_SLAB_HEADER_LEN..].copy_from_slice(body);
        Bytes::from(raw)
    }

    #[test]
    fn slab_header_round_trips() {
        let h = SlabHeader {
            generation: 7,
            transfer: 3,
            tag: ElemTag::F64,
            chunk_offset: 64,
            total_bytes: 128,
        };
        let body: Vec<u8> = (0..64).collect();
        let (got, view) = SlabHeader::decode(&slab(h, &body)).unwrap();
        assert_eq!(got, h);
        assert_eq!(view.as_slice(), &body[..]);
    }

    #[test]
    fn truncated_and_reserved_and_tag_bytes_are_typed() {
        assert!(matches!(
            SlabHeader::decode(&Bytes::from(vec![0u8; 31])),
            Err(BulkError::Truncated { have: 31, need: 32 })
        ));
        let h = SlabHeader {
            generation: 1,
            transfer: 0,
            tag: ElemTag::U8,
            chunk_offset: 0,
            total_bytes: 4,
        };
        let mut raw = slab(h, &[1, 2, 3, 4]).to_vec();
        raw[14] = 9;
        assert!(matches!(
            SlabHeader::decode(&Bytes::from(raw.clone())),
            Err(BulkError::BadReserved)
        ));
        raw[14] = 0;
        raw[12] = 0xee;
        assert!(matches!(
            SlabHeader::decode(&Bytes::from(raw)),
            Err(BulkError::BadTag(0xee))
        ));
    }

    #[test]
    fn misaligned_and_out_of_range_chunks_are_typed() {
        let h = SlabHeader {
            generation: 1,
            transfer: 0,
            tag: ElemTag::F64,
            chunk_offset: 8,
            total_bytes: 16,
        };
        // Body of 9 bytes: not a multiple of 8.
        assert!(matches!(
            SlabHeader::decode(&slab(h, &[0u8; 9])),
            Err(BulkError::Misaligned {
                value: 9,
                elem_size: 8
            })
        ));
        // Offset 4 with f64 elements.
        let h2 = SlabHeader {
            chunk_offset: 4,
            ..h
        };
        assert!(matches!(
            SlabHeader::decode(&slab(h2, &[0u8; 8])),
            Err(BulkError::Misaligned {
                value: 4,
                elem_size: 8
            })
        ));
        // Chunk reaching past the declared total.
        let h3 = SlabHeader {
            chunk_offset: 8,
            ..h
        };
        assert!(matches!(
            SlabHeader::decode(&slab(h3, &[0u8; 16])),
            Err(BulkError::OutOfRange {
                offset: 8,
                len: 16,
                total: 16
            })
        ));
    }

    #[test]
    fn ack_round_trips_and_rejects_garbage() {
        let ack = BulkAck {
            generation: 42,
            transfer: 5,
            acked_through: 1 << 30,
        };
        assert_eq!(BulkAck::decode(&ack.encode()).unwrap(), ack);
        assert!(matches!(
            BulkAck::decode(&[0u8; 12]),
            Err(BulkError::Truncated { have: 12, need: 24 })
        ));
        let mut raw = ack.encode();
        raw[13] = 1;
        assert!(matches!(BulkAck::decode(&raw), Err(BulkError::BadReserved)));
    }

    #[test]
    fn elem_round_trips_for_every_tag() {
        fn rt<T: BulkElem + PartialEq + std::fmt::Debug>(v: T) {
            let mut raw = [0u8; 8];
            v.write_le(&mut raw);
            assert_eq!(T::read_le(&raw), v);
            assert_eq!(T::TAG.elem_size(), T::SIZE);
            assert_eq!(ElemTag::from_byte(T::TAG as u8).unwrap(), T::TAG);
        }
        rt(1.5f64);
        rt(-2.25f32);
        rt(-7i64);
        rt(9i32);
        rt(u64::MAX - 3);
        rt(0xabu8);
    }

    #[test]
    fn bulk_errors_convert_to_typed_sidl_errors() {
        let e: SidlError = BulkError::BadTag(99).into();
        assert!(matches!(
            e,
            SidlError::UserException { ref exception_type, .. }
                if exception_type == BULK_EXCEPTION_TYPE
        ));
    }
}
