//! Property tests for the frame codec: the hostile-network boundary layer
//! must reassemble anything a well-behaved peer sends, split at any TCP
//! segment boundary, and must reject everything else with a typed
//! [`FrameError`] — never a panic and never an unbounded buffer.

use bytes::Bytes;
use cca_obs::TraceContext;
use cca_rpc::bulk::{BulkAck, BulkError, ElemTag, SlabHeader, BULK_ACK_LEN, BULK_SLAB_HEADER_LEN};
use cca_rpc::frame::{
    encode_frame, encode_frame_with, read_frame, Frame, FrameDecoder, FrameError, FrameKind,
    DEFAULT_MAX_PAYLOAD, FRAME_HEADER_LEN, TRACE_CONTEXT_LEN,
};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::Request),
        Just(FrameKind::Reply),
        Just(FrameKind::Bulk),
    ]
}

fn arb_tag() -> impl Strategy<Value = ElemTag> {
    prop_oneof![
        Just(ElemTag::F64),
        Just(ElemTag::F32),
        Just(ElemTag::I64),
        Just(ElemTag::I32),
        Just(ElemTag::U64),
        Just(ElemTag::U8),
    ]
}

/// An optional trace context with the nonzero ids a real tracer produces
/// (zero is the wire's "no trace" sentinel and is typed-invalid).
fn arb_ctx() -> impl Strategy<Value = Option<TraceContext>> {
    (any::<bool>(), any::<u64>(), any::<u64>()).prop_map(|(present, t, s)| {
        present.then(|| TraceContext {
            trace_id: t.max(1),
            span_id: s.max(1),
        })
    })
}

/// Feeds `stream` to a decoder in chunks cut at `cuts` (cycled), draining
/// every complete frame after each feed — the access pattern of a socket
/// read loop over arbitrary segmentation.
fn decode_in_chunks(stream: &[u8], cuts: &[usize]) -> Result<Vec<Frame>, FrameError> {
    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut offset = 0;
    let mut cut_index = 0;
    while offset < stream.len() {
        let step = if cuts.is_empty() {
            stream.len()
        } else {
            cuts[cut_index % cuts.len()].max(1)
        };
        cut_index += 1;
        let end = (offset + step).min(stream.len());
        dec.feed(&stream[offset..end]);
        while let Some(f) = dec.next_frame()? {
            frames.push(f);
        }
        offset = end;
    }
    dec.finish()?;
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any sequence of frames — trace context present or absent, mixed
    /// freely — survives encode → split-at-arbitrary-boundaries → decode,
    /// bit-for-bit and in order.
    #[test]
    fn frames_survive_arbitrary_segmentation(
        messages in proptest::collection::vec(
            (arb_kind(), any::<u64>(), proptest::collection::vec(any::<u8>(), 0..256), arb_ctx()),
            1..6,
        ),
        cuts in proptest::collection::vec(1usize..64, 0..10),
    ) {
        let mut stream = Vec::new();
        for (kind, id, payload, ctx) in &messages {
            stream.extend(
                encode_frame_with(*kind, *id, payload, DEFAULT_MAX_PAYLOAD, *ctx).unwrap(),
            );
        }
        let frames = decode_in_chunks(&stream, &cuts).unwrap();
        prop_assert_eq!(frames.len(), messages.len());
        for (frame, (kind, id, payload, ctx)) in frames.iter().zip(&messages) {
            prop_assert_eq!(frame.kind, *kind);
            prop_assert_eq!(frame.request_id, *id);
            prop_assert_eq!(frame.context, *ctx);
            prop_assert_eq!(frame.payload.as_slice(), payload.as_slice());
        }
    }

    /// Cutting a valid frame anywhere strictly inside it yields no frame
    /// and a typed `Truncated` at end-of-stream — not a hang, not a panic.
    #[test]
    fn truncated_frames_are_rejected(
        id in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        ctx in arb_ctx(),
        cut_fraction in 0.0f64..1.0,
    ) {
        // With a context present the cut can land inside the extension
        // bytes too; truncation must be typed wherever it falls.
        let framed =
            encode_frame_with(FrameKind::Request, id, &payload, DEFAULT_MAX_PAYLOAD, ctx).unwrap();
        let cut = 1 + ((framed.len() - 2) as f64 * cut_fraction) as usize; // 1..len-1
        let mut dec = FrameDecoder::new();
        dec.feed(&framed[..cut]);
        prop_assert!(dec.next_frame().unwrap().is_none());
        prop_assert!(matches!(dec.finish(), Err(FrameError::Truncated { .. })));
        // The blocking reader agrees: EOF inside a frame is an error.
        let mut cursor = std::io::Cursor::new(framed[..cut].to_vec());
        prop_assert!(read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).is_err());
    }

    /// Corrupting any header byte yields a typed error or (only for bytes
    /// of the id/length fields) a different-but-bounded frame — never a
    /// panic, and never a read past the declared cap.
    #[test]
    fn corrupted_headers_never_panic(
        id in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        ctx in arb_ctx(),
        corrupt_at in 0usize..FRAME_HEADER_LEN,
        xor in 1u8..=255,
    ) {
        let mut framed =
            encode_frame_with(FrameKind::Reply, id, &payload, DEFAULT_MAX_PAYLOAD, ctx).unwrap();
        framed[corrupt_at] ^= xor;
        let mut dec = FrameDecoder::with_max_payload(4096);
        dec.feed(&framed);
        match dec.next_frame() {
            Err(
                FrameError::BadMagic(_)
                | FrameError::BadVersion(_)
                | FrameError::BadKind(_)
                | FrameError::BadContext(_)
                | FrameError::Oversized { .. },
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            // A corrupted id still decodes (ids are opaque); a corrupted
            // length either truncates (no frame yet) or shortens the
            // payload (frame pops, possibly with trailing garbage burned
            // by finish()). All bounded, all panic-free.
            Ok(_) => {}
        }
    }

    /// Corrupting the trace-context extension bytes themselves yields
    /// either a frame with different (still nonzero) ids or a typed
    /// `BadContext` when the corruption zeroes an id — never a panic, and
    /// the payload is never misframed (the extension length is fixed by
    /// the header, so flipping context bits cannot shift the boundary).
    #[test]
    fn corrupted_context_bytes_never_panic_or_misframe(
        id in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        corrupt_at in 0usize..TRACE_CONTEXT_LEN,
        xor in 1u8..=255,
    ) {
        let ctx = TraceContext { trace_id: 0x1111, span_id: 0x2222 };
        let mut framed =
            encode_frame_with(FrameKind::Request, id, &payload, DEFAULT_MAX_PAYLOAD, Some(ctx))
                .unwrap();
        framed[FRAME_HEADER_LEN + corrupt_at] ^= xor;
        let mut dec = FrameDecoder::new();
        dec.feed(&framed);
        match dec.next_frame() {
            Ok(Some(frame)) => {
                let got = frame.context.expect("flags still demand a context");
                prop_assert!(got.trace_id != 0 && got.span_id != 0);
                prop_assert_eq!(frame.payload.as_slice(), payload.as_slice());
            }
            Err(FrameError::BadContext(_)) => {}
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    /// Any declared extension length other than exactly {0 without flags,
    /// 16 with flags} is a typed `BadContext` from the header alone — an
    /// attacker cannot use the length byte to smuggle or swallow bytes.
    #[test]
    fn mismatched_context_length_is_rejected(
        id in any::<u64>(),
        with_ctx in any::<bool>(),
        bad_len in any::<u8>(),
    ) {
        let ctx = with_ctx.then_some(TraceContext { trace_id: 7, span_id: 9 });
        let mut framed =
            encode_frame_with(FrameKind::Request, id, b"p", DEFAULT_MAX_PAYLOAD, ctx).unwrap();
        let good_len = framed[7];
        if bad_len != good_len {
            framed[7] = bad_len;
            let mut dec = FrameDecoder::new();
            dec.feed(&framed);
            prop_assert!(matches!(
                dec.next_frame(),
                Err(FrameError::BadContext(_))
            ));
        }
    }

    /// A declared length over the cap is rejected from the header alone —
    /// the decoder never buffers toward an oversized payload.
    #[test]
    fn oversized_frames_are_rejected_from_the_header(
        id in any::<u64>(),
        declared in 1025u32..1_000_000,
    ) {
        let mut header = encode_frame(FrameKind::Request, id, b"", DEFAULT_MAX_PAYLOAD).unwrap();
        header[16..20].copy_from_slice(&declared.to_le_bytes());
        let mut dec = FrameDecoder::with_max_payload(1024);
        dec.feed(&header);
        prop_assert!(matches!(
            dec.next_frame(),
            Err(FrameError::Oversized { declared: d, cap: 1024 }) if d == declared
        ));
        prop_assert_eq!(dec.buffered(), FRAME_HEADER_LEN);
    }

    /// Arbitrary garbage fed to the decoder either errors (typed) or waits
    /// for more bytes; it never panics. Wire payloads from the orb layer
    /// are opaque here, so this is the full input space.
    #[test]
    fn random_bytes_never_panic_the_decoder(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        cuts in proptest::collection::vec(1usize..32, 0..6),
    ) {
        let _ = decode_in_chunks(&data, &cuts);
        let mut cursor = std::io::Cursor::new(data);
        while let Ok(Some(_)) = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD) {}
    }

    /// The incremental decoder and the blocking reader agree on every
    /// valid stream.
    #[test]
    fn decoder_and_reader_agree(
        messages in proptest::collection::vec(
            (arb_kind(), any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64), arb_ctx()),
            0..5,
        ),
    ) {
        let mut stream = Vec::new();
        for (kind, id, payload, ctx) in &messages {
            stream.extend(
                encode_frame_with(*kind, *id, payload, DEFAULT_MAX_PAYLOAD, *ctx).unwrap(),
            );
        }
        let incremental = decode_in_chunks(&stream, &[7]).unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        let mut blocking = Vec::new();
        while let Some(f) = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).unwrap() {
            blocking.push(f);
        }
        prop_assert_eq!(incremental.len(), blocking.len());
        for (a, b) in incremental.iter().zip(&blocking) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.request_id, b.request_id);
            prop_assert_eq!(a.context, b.context);
            prop_assert_eq!(a.payload.as_slice(), b.payload.as_slice());
        }
    }

    // -- bulk data-plane battery ------------------------------------------

    /// A bulk slab framed as `FrameKind::Bulk` survives encode →
    /// split-at-arbitrary-boundaries → decode → slab parse, bit-for-bit:
    /// header fields and body bytes all round trip.
    #[test]
    fn bulk_slabs_survive_framing_and_segmentation(
        id in any::<u64>(),
        generation in any::<u64>(),
        transfer in any::<u32>(),
        tag in arb_tag(),
        body_elems in 0usize..48,
        lead_elems in 0usize..16,
        trail_elems in 0usize..16,
        fill in any::<u8>(),
        cuts in proptest::collection::vec(1usize..48, 0..8),
    ) {
        let elem = tag.elem_size();
        let header = SlabHeader {
            generation,
            transfer,
            tag,
            chunk_offset: (lead_elems * elem) as u64,
            total_bytes: ((lead_elems + body_elems + trail_elems) * elem) as u64,
        };
        let body: Vec<u8> = (0..body_elems * elem).map(|i| fill.wrapping_add(i as u8)).collect();
        let mut payload = vec![0u8; BULK_SLAB_HEADER_LEN + body.len()];
        header.encode_into(&mut payload);
        payload[BULK_SLAB_HEADER_LEN..].copy_from_slice(&body);
        let stream = encode_frame(FrameKind::Bulk, id, &payload, DEFAULT_MAX_PAYLOAD).unwrap();
        let frames = decode_in_chunks(&stream, &cuts).unwrap();
        prop_assert_eq!(frames.len(), 1);
        prop_assert_eq!(frames[0].kind, FrameKind::Bulk);
        prop_assert_eq!(frames[0].request_id, id);
        let (got, view) = SlabHeader::decode(&frames[0].payload).unwrap();
        prop_assert_eq!(got, header);
        prop_assert_eq!(view.as_slice(), &body[..]);
    }

    /// Any payload shorter than the slab header is a typed `Truncated`,
    /// carrying the exact byte counts — never a panic, never a partial
    /// parse.
    #[test]
    fn truncated_slabs_are_typed(
        len in 0usize..BULK_SLAB_HEADER_LEN,
        fill in any::<u8>(),
    ) {
        let raw = vec![fill; len];
        prop_assert!(matches!(
            SlabHeader::decode(&Bytes::from(raw)),
            Err(BulkError::Truncated { have, need })
                if have == len && need == BULK_SLAB_HEADER_LEN
        ));
    }

    /// Every element-tag byte outside the known set is a typed `BadTag`;
    /// every known byte round trips through its `ElemTag`.
    #[test]
    fn element_tag_bytes_are_exhaustively_typed(b in any::<u8>()) {
        match ElemTag::from_byte(b) {
            Ok(tag) => prop_assert_eq!(tag as u8, b),
            Err(BulkError::BadTag(got)) => {
                prop_assert_eq!(got, b);
                prop_assert!(!(1..=6).contains(&b));
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// Corrupting any byte of a valid slab header yields either a clean
    /// parse (fields are opaque integers) or a typed `BulkError` — never a
    /// panic, and a parsed chunk never escapes its declared total.
    #[test]
    fn corrupted_slab_headers_never_panic(
        corrupt_at in 0usize..BULK_SLAB_HEADER_LEN,
        xor in 1u8..=255,
        body_elems in 0usize..8,
    ) {
        let header = SlabHeader {
            generation: 3,
            transfer: 1,
            tag: ElemTag::F64,
            chunk_offset: 16,
            total_bytes: (16 + body_elems * 8 + 8) as u64,
        };
        let mut raw = vec![0u8; BULK_SLAB_HEADER_LEN + body_elems * 8];
        header.encode_into(&mut raw);
        raw[corrupt_at] ^= xor;
        match SlabHeader::decode(&Bytes::from(raw)) {
            Ok((h, view)) => {
                prop_assert!(h.chunk_offset + view.len() as u64 <= h.total_bytes);
            }
            Err(
                BulkError::BadTag(_)
                | BulkError::BadReserved
                | BulkError::Misaligned { .. }
                | BulkError::OutOfRange { .. },
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// Acks round trip; short ack payloads are typed `Truncated`.
    #[test]
    fn bulk_acks_round_trip_and_reject_short_payloads(
        generation in any::<u64>(),
        transfer in any::<u32>(),
        acked_through in any::<u64>(),
        short in 0usize..BULK_ACK_LEN,
    ) {
        let ack = BulkAck { generation, transfer, acked_through };
        prop_assert_eq!(BulkAck::decode(&ack.encode()).unwrap(), ack);
        prop_assert!(matches!(
            BulkAck::decode(&ack.encode()[..short]),
            Err(BulkError::Truncated { .. })
        ));
    }

    /// Every kind byte outside the known set {request, reply, bulk} is a
    /// typed `BadKind` from the header alone — the mux kills exactly the
    /// connection that sent it (see `tests/bulk_redist.rs` for the
    /// blast-radius half of that contract).
    #[test]
    fn unknown_kind_bytes_are_typed(
        id in any::<u64>(),
        kind_byte in 5u8..=255,
    ) {
        let mut framed = encode_frame(FrameKind::Bulk, id, b"x", DEFAULT_MAX_PAYLOAD).unwrap();
        framed[5] = kind_byte;
        let mut dec = FrameDecoder::new();
        dec.feed(&framed);
        prop_assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadKind(b)) if b == kind_byte
        ));
    }
}
